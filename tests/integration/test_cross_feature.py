"""Integration: feature combinations a real deployment would run together.

Profiling + stragglers + model-aware checkpoints + audit, all at once —
the configuration closest to the paper's physical prototype — must stay
internally consistent.
"""

import pytest

from repro.core import HadarConfig, HadarScheduler, ProfilingScheduler
from repro.metrics.export import result_to_dict
from repro.metrics.jct import jct_stats
from repro.metrics.timeline import job_intervals
from repro.sim.checkpoint import ModelAwareCheckpoint
from repro.sim.engine import simulate
from repro.sim.stragglers import StragglerModel
from repro.theory.audit import summarize_audit, verify_increments
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace


@pytest.fixture(scope="module")
def kitchen_sink():
    from repro.cluster.cluster import prototype_cluster

    cluster = prototype_cluster()
    trace = generate_philly_trace(
        PhillyTraceConfig(num_jobs=8, seed=3, max_workers=2)
    )
    inner = HadarScheduler(HadarConfig(record_audit=True))
    scheduler = ProfilingScheduler(inner)
    result = simulate(
        cluster,
        trace,
        scheduler,
        checkpoint=ModelAwareCheckpoint(),
        stragglers=StragglerModel(incidence_per_hour=1.0, seed=7),
    )
    return result, inner, scheduler


class TestKitchenSink:
    def test_everything_completes(self, kitchen_sink):
        result, _, _ = kitchen_sink
        assert result.all_completed
        assert result.scheduler_name == "hadar+profiling"

    def test_work_conserved(self, kitchen_sink):
        result, _, _ = kitchen_sink
        for rt in result.runtimes.values():
            assert rt.iterations_done == pytest.approx(
                rt.job.total_iterations, rel=1e-6
            )

    def test_audit_still_sound(self, kitchen_sink):
        """Lemmas 1-2 hold even when scheduling on *estimated* rates."""
        _, inner, _ = kitchen_sink
        assert inner.audit
        assert verify_increments(inner.audit)
        assert summarize_audit(inner.audit).worst_ratio >= 1.0 - 1e-6

    def test_estimator_learned_something(self, kitchen_sink):
        _, _, scheduler = kitchen_sink
        observed = sum(scheduler.estimator._counts.values())  # noqa: SLF001
        assert observed >= 1

    def test_timeline_and_export_consistent(self, kitchen_sink):
        result, _, _ = kitchen_sink
        exported = result_to_dict(result)
        assert exported["summary"]["jobs_completed"] == len(result.runtimes)
        for rt in result.runtimes.values():
            intervals = job_intervals(rt)
            assert intervals
            # Intervals end no later than the recorded finish.
            assert intervals[-1][1] <= (rt.finish_time or 0) + 1e-6

    def test_metrics_finite(self, kitchen_sink):
        result, _, _ = kitchen_sink
        stats = jct_stats(result)
        assert 0 < stats.mean < float("inf")
        assert result.makespan() > 0
