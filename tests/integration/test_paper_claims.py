"""Integration: the paper's qualitative claims at reduced scale.

These tests pin the *shape* of the evaluation — who wins on which metric —
on a small (fast) workload.  The magnitudes at the paper's scale live in
EXPERIMENTS.md and the benchmark harness.
"""

import pytest

from repro.baselines import GavelScheduler, TiresiasScheduler, YarnCapacityScheduler
from repro.cluster.cluster import simulated_cluster
from repro.core import HadarScheduler, hadar_for_objective
from repro.metrics.fairness import finish_time_fairness
from repro.metrics.jct import jct_stats
from repro.metrics.utilization import utilization_summary
from repro.sim.engine import simulate
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.throughput import default_throughput_matrix


@pytest.fixture(scope="module")
def cluster():
    return simulated_cluster()


@pytest.fixture(scope="module")
def trace():
    # Enough jobs to contend for the 60 GPUs without taking minutes.
    return generate_philly_trace(
        PhillyTraceConfig(num_jobs=48, arrival_pattern="static", seed=1)
    )


@pytest.fixture(scope="module")
def results(cluster, trace):
    return {
        name: simulate(cluster, trace, factory())
        for name, factory in {
            "hadar": HadarScheduler,
            "gavel": GavelScheduler,
            "tiresias": TiresiasScheduler,
            "yarn-cs": YarnCapacityScheduler,
        }.items()
    }


class TestFig3JCT:
    def test_hadar_beats_every_baseline_on_mean_jct(self, results):
        hadar = jct_stats(results["hadar"]).mean
        for name in ("gavel", "tiresias", "yarn-cs"):
            assert hadar < jct_stats(results[name]).mean, name

    def test_hadar_beats_every_baseline_on_median_jct(self, results):
        hadar = jct_stats(results["hadar"]).median
        for name in ("gavel", "tiresias", "yarn-cs"):
            assert hadar < jct_stats(results[name]).median, name

    def test_baseline_ordering(self, results):
        """Gavel < Tiresias < YARN-CS on mean JCT (Fig. 3's ordering)."""
        gavel = jct_stats(results["gavel"]).mean
        tiresias = jct_stats(results["tiresias"]).mean
        yarn = jct_stats(results["yarn-cs"]).mean
        assert gavel < tiresias < yarn


class TestQueuingDelay:
    def test_hadar_shortens_waiting_vs_gavel(self, results):
        """Sec. I: Hadar shortens the queuing delay vs. Gavel."""
        hadar = jct_stats(results["hadar"]).mean_total_waiting
        gavel = jct_stats(results["gavel"]).mean_total_waiting
        assert hadar < gavel


class TestFig4Utilization:
    def test_hadar_utilization_near_top(self, results):
        """Hadar's contended-window utilization ≈ YARN-CS's (within 5 pts)
        and at least Gavel's."""
        util = {
            name: utilization_summary(r, contended=True).overall
            for name, r in results.items()
        }
        assert util["hadar"] >= util["gavel"] - 0.02
        assert util["hadar"] >= util["yarn-cs"] - 0.05


class TestFig5FTF:
    def test_hadar_fairest(self, results):
        matrix = default_throughput_matrix()
        ftf = {
            name: finish_time_fairness(r, matrix).mean for name, r in results.items()
        }
        assert ftf["hadar"] < ftf["gavel"]
        assert ftf["hadar"] < ftf["tiresias"]


class TestFig6Makespan:
    def test_makespan_objective_beats_baselines(self, cluster, trace, results):
        hadar_mk = simulate(cluster, trace, hadar_for_objective("makespan"))
        assert hadar_mk.all_completed
        assert hadar_mk.makespan() < results["gavel"].makespan()
        assert hadar_mk.makespan() < results["tiresias"].makespan()

    def test_makespan_objective_trades_jct(self, cluster, trace, results):
        """Steering to makespan sacrifices (or at least does not improve)
        the default objective's mean JCT ordering against itself."""
        hadar_mk = simulate(cluster, trace, hadar_for_objective("makespan"))
        assert hadar_mk.makespan() <= results["hadar"].makespan()


class TestRoundChangeRate:
    def test_most_rounds_change_free(self, results):
        """Sec. IV-A-5: only a minority of rounds change allocations."""
        r = results["hadar"]
        # Boundaries where something moved / total scheduling invocations.
        assert r.rounds_with_change <= 0.6 * r.scheduling_invocations
