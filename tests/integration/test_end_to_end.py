"""Integration: every scheduler over shared workloads, cross-checked."""

import pytest

from repro.baselines import (
    GavelScheduler,
    RandomScheduler,
    TiresiasScheduler,
    YarnCapacityScheduler,
)
from repro.cluster.cluster import simulated_cluster
from repro.core import HadarScheduler
from repro.sim.engine import simulate
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

ALL_SCHEDULERS = [
    HadarScheduler,
    GavelScheduler,
    TiresiasScheduler,
    YarnCapacityScheduler,
    RandomScheduler,
]


@pytest.fixture(scope="module")
def cluster():
    return simulated_cluster()


@pytest.fixture(scope="module")
def static_trace():
    return generate_philly_trace(
        PhillyTraceConfig(num_jobs=16, arrival_pattern="static", seed=11)
    )


@pytest.fixture(scope="module")
def continuous_trace():
    return generate_philly_trace(
        PhillyTraceConfig(
            num_jobs=16, arrival_pattern="continuous", jobs_per_hour=40, seed=11
        )
    )


@pytest.mark.parametrize("factory", ALL_SCHEDULERS, ids=lambda f: f.__name__)
class TestAllSchedulers:
    def test_static_trace_completes_with_conserved_work(
        self, factory, cluster, static_trace
    ):
        result = simulate(cluster, static_trace, factory())
        assert result.all_completed
        for rt in result.runtimes.values():
            assert rt.iterations_done == pytest.approx(
                rt.job.total_iterations, rel=1e-6
            )

    def test_continuous_trace_completes(self, factory, cluster, continuous_trace):
        result = simulate(cluster, continuous_trace, factory())
        assert result.all_completed
        for rt in result.runtimes.values():
            assert rt.first_start_time is not None
            assert rt.first_start_time >= rt.job.arrival_time

    def test_jct_bounded_below_by_ideal(self, factory, cluster, static_trace):
        from repro.workload.throughput import default_throughput_matrix

        matrix = default_throughput_matrix()
        result = simulate(cluster, static_trace, factory())
        for rt in result.completed:
            ideal = rt.job.total_iterations / (
                rt.job.num_workers * matrix.max_rate(rt.job.model.name)
            )
            assert rt.completion_time >= ideal * (1 - 1e-9)


class TestDeterminismAcrossRuns:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS, ids=lambda f: f.__name__)
    def test_same_seed_same_results(self, factory, cluster, static_trace):
        a = simulate(cluster, static_trace, factory())
        b = simulate(cluster, static_trace, factory())
        assert a.jcts() == b.jcts()
        assert a.makespan() == b.makespan()
