"""Unit tests for the competitive-ratio toolkit (Theorem 2)."""

import math

import pytest

from repro.core.pricing import PriceBook
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState
from repro.theory.competitive import (
    alpha_for_pricebook,
    alpha_for_workload,
    competitive_bound,
)
from repro.theory.validation import (
    check_allocation_cost_relationship,
    check_price_boundaries,
    check_price_monotonicity,
)

from tests.conftest import make_job


def queued(job):
    rt = JobRuntime(job=job)
    rt.state = JobState.QUEUED
    return rt


@pytest.fixture
def book():
    return PriceBook(
        u_min={"V100": 1.0, "K80": 0.5},
        u_max={"V100": math.e**2, "K80": 0.5 * math.e},
        eta=1.0,
    )


class TestAlpha:
    def test_alpha_is_max_log_ratio(self, book):
        # V100 ratio e² → ln = 2; K80 ratio e → ln = 1; α = 2.
        assert alpha_for_pricebook(book) == pytest.approx(2.0)

    def test_alpha_floor_of_one(self):
        flat = PriceBook(u_min={"V100": 1.0}, u_max={"V100": 1.0}, eta=1.0)
        assert alpha_for_pricebook(flat) == 1.0

    def test_alpha_for_workload(self, small_cluster, matrix):
        jobs = [queued(make_job(i, "resnet18", workers=1)) for i in range(3)]
        alpha = alpha_for_workload(
            jobs, small_cluster, matrix, NormalizedThroughputUtility()
        )
        assert alpha >= 1.0
        assert math.isfinite(alpha)

    def test_bound_is_2alpha(self):
        assert competitive_bound(1.0) == 2.0
        assert competitive_bound(3.5) == 7.0
        with pytest.raises(ValueError):
            competitive_bound(0.5)
        with pytest.raises(ValueError):
            competitive_bound(float("inf"))


class TestPriceValidation:
    def test_boundaries(self, book):
        assert check_price_boundaries(book, "V100", capacity=8)
        assert check_price_boundaries(book, "K80", capacity=4)

    def test_monotonicity(self, book):
        assert check_price_monotonicity(book, "V100", capacity=8)

    def test_allocation_cost_relationship(self, book):
        """Lemma 3: the exponential price satisfies Definition 2."""
        assert check_allocation_cost_relationship(book, "V100", capacity=8)
        assert check_allocation_cost_relationship(book, "K80", capacity=4)

    def test_degenerate_type_trivially_holds(self):
        zero = PriceBook(u_min={"X": 0.0}, u_max={"X": 0.0}, eta=1.0)
        assert check_price_boundaries(zero, "X", capacity=4)
        assert check_allocation_cost_relationship(zero, "X", capacity=4)

    def test_calibrated_book_passes_everything(self, small_cluster, matrix):
        jobs = [
            queued(make_job(0, "resnet18", workers=2, epochs=2)),
            queued(make_job(1, "resnet50", workers=4, epochs=1)),
        ]
        book = PriceBook.calibrate(
            jobs, matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0,
        )
        for r in ("V100", "P100", "K80"):
            assert check_price_boundaries(book, r, 4)
            assert check_price_monotonicity(book, r, 4)
            assert check_allocation_cost_relationship(book, r, 4)
