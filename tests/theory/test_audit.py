"""Tests for the empirical primal-dual audit (Lemmas 1-2)."""

import pytest

from repro.core import HadarConfig, HadarScheduler
from repro.core.scheduler import RoundAudit
from repro.sim.engine import simulate
from repro.theory.audit import summarize_audit, verify_increments

from tests.conftest import make_job
from repro.workload.trace import Trace


class TestVerify:
    def test_good_record_passes(self):
        good = [RoundAudit(0.0, 10.0, 15.0, 2.0, 3, 5.0, 5.0)]
        assert verify_increments(good)  # 10 ≥ 15/2

    def test_bad_record_fails(self):
        bad = [RoundAudit(0.0, 5.0, 15.0, 2.0, 3, 5.0, 5.0)]
        assert not verify_increments(bad)  # 5 < 7.5

    def test_empty_passes(self):
        assert verify_increments([])


class TestSummary:
    def test_empty(self):
        s = summarize_audit([])
        assert s.rounds == 0
        assert s.empirical_competitive_slack == float("inf")

    def test_aggregation(self):
        audit = [
            RoundAudit(0.0, 10.0, 12.0, 2.0, 2, 4.0, 6.0),
            RoundAudit(360.0, 0.0, 0.0, 2.0, 0, 0.0, 0.0),
        ]
        s = summarize_audit(audit)
        assert s.rounds == 2
        assert s.rounds_with_admissions == 1
        assert s.total_primal == 10.0
        assert s.worst_ratio == pytest.approx(10.0 / 6.0)


class TestLiveRuns:
    @pytest.mark.parametrize("workers", [(1, 1, 1), (4, 4, 2)])
    def test_increment_condition_holds_live(
        self, no_comm_cluster, matrix, workers
    ):
        """Lemma 2's inequality holds on every round of real runs."""
        trace = Trace(
            [
                make_job(i, model, workers=w, epochs=3)
                for i, (model, w) in enumerate(
                    zip(("resnet18", "cyclegan", "transformer"), workers)
                )
            ]
        )
        scheduler = HadarScheduler(HadarConfig(record_audit=True))
        result = simulate(no_comm_cluster, trace, scheduler, matrix=matrix)
        assert result.all_completed
        assert scheduler.audit, "audit must be recorded"
        assert verify_increments(scheduler.audit)
        summary = summarize_audit(scheduler.audit)
        assert summary.worst_ratio >= 1.0 - 1e-6
        assert summary.max_alpha >= 1.0

    def test_audit_off_by_default(self, no_comm_cluster, matrix, tiny_trace):
        scheduler = HadarScheduler()
        simulate(no_comm_cluster, tiny_trace, scheduler, matrix=matrix)
        assert scheduler.audit == []

    def test_reset_clears_audit(self):
        scheduler = HadarScheduler(HadarConfig(record_audit=True))
        scheduler.audit.append(RoundAudit(0.0, 1.0, 1.0, 1.0, 1, 1.0, 0.0))
        scheduler.reset()
        assert scheduler.audit == []
