"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_cluster, make_scheduler


class TestFactories:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("hadar", "hadar"),
            ("hadar-makespan", "hadar"),
            ("hadar-ftf", "hadar"),
            ("gavel", "gavel"),
            ("tiresias", "tiresias"),
            ("yarn-cs", "yarn-cs"),
            ("random", "random"),
        ],
    )
    def test_make_scheduler(self, name, expected):
        assert make_scheduler(name).name == expected

    def test_profiling_wrapper(self):
        assert make_scheduler("hadar", profiling=True).name == "hadar+profiling"

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            make_scheduler("slurm")

    def test_make_cluster(self):
        assert make_cluster("simulated").total_gpus == 60
        assert make_cluster("prototype").total_gpus == 8
        with pytest.raises(ValueError):
            make_cluster("moon-base")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheduler == "hadar"
        assert args.round_min == 6.0


class TestCommands:
    def test_generate_trace_roundtrip(self, tmp_path):
        out = tmp_path / "trace.csv"
        rc = main(["generate-trace", "--num-jobs", "5", "--out", str(out)])
        assert rc == 0
        from repro.workload.trace import Trace

        assert len(Trace.from_csv(out)) == 5

    def test_generate_trace_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["generate-trace", "--num-jobs", "3", "--out", str(out)]) == 0
        from repro.workload.trace import Trace

        assert len(Trace.from_jsonl(out)) == 3

    def test_simulate_from_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate-trace", "--num-jobs", "4", "--out", str(out)])
        rc = main(
            ["simulate", "--trace", str(out), "--scheduler", "yarn-cs"]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "mean JCT" in captured
        assert "yarn-cs" in captured

    def test_simulate_with_stragglers_and_profiling(self, capsys):
        rc = main(
            [
                "simulate", "--num-jobs", "4", "--seed", "2",
                "--scheduler", "hadar", "--profiling",
                "--straggler-rate", "2.0",
            ]
        )
        assert rc == 0
        assert "hadar+profiling" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(
            [
                "compare", "--num-jobs", "6", "--seed", "3",
                "--schedulers", "yarn-cs,random",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "yarn-cs" in out and "random" in out

    def test_gantt(self, capsys):
        rc = main(["gantt", "--num-jobs", "4", "--seed", "5", "--width", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "|" in out and "min/char" in out

    def test_analyze(self, capsys):
        rc = main(["analyze", "--num-jobs", "8", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered load" in out and "by category" in out

    def test_simulate_json_export(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main(
            ["simulate", "--num-jobs", "3", "--seed", "1",
             "--scheduler", "random", "--json", str(out)]
        )
        assert rc == 0
        import json

        assert json.loads(out.read_text())["scheduler"] == "random"

    def test_motivation(self, capsys):
        assert main(["motivation"]) == 0
        out = capsys.readouterr().out
        assert "hadar" in out and "improvement" in out
