"""Unit tests for the YARN-CS baseline."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler, YarnConfig
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestBehaviour:
    def test_event_driven_admission(self, no_comm_cluster, matrix):
        """Jobs start the moment they arrive when capacity is free."""
        trace = Trace([make_job(0, "resnet18", arrival=100.0, workers=1, epochs=1)])
        result = simulate(no_comm_cluster, trace, YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].first_start_time == pytest.approx(100.0)

    def test_non_preemptive(self, no_comm_cluster, matrix, philly_trace_small):
        trace = Trace([j for j in philly_trace_small if j.num_workers <= 4])
        result = simulate(no_comm_cluster, trace, YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        assert result.all_completed
        assert all(rt.preemptions == 0 for rt in result.runtimes.values())
        assert all(rt.allocation_changes <= 1 for rt in result.runtimes.values())

    def test_backfill_lets_small_jobs_pass(self, no_comm_cluster, matrix):
        """Default (concurrent) mode: a huge head job does not block a
        1-GPU job behind it."""
        big = make_job(0, "resnet18", workers=8, epochs=10)
        blocker = make_job(1, "resnet18", arrival=1.0, workers=8, epochs=10)
        small = make_job(2, "resnet18", arrival=2.0, workers=1, epochs=1)
        result = simulate(
            no_comm_cluster, Trace([big, blocker, small]),
            YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[2]
        assert rt.first_start_time == pytest.approx(2.0)

    def test_strict_fifo_blocks_behind_head(self, no_comm_cluster, matrix):
        big = make_job(0, "resnet18", workers=8, epochs=10)
        blocker = make_job(1, "resnet18", arrival=1.0, workers=8, epochs=10)
        small = make_job(2, "resnet18", arrival=2.0, workers=1, epochs=1)
        result = simulate(
            no_comm_cluster, Trace([big, blocker, small]),
            YarnCapacityScheduler(YarnConfig(strict_fifo=True)), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        rt_small = result.runtimes[2]
        rt_blocker = result.runtimes[1]
        # The small job cannot start before the blocked head starts.
        assert rt_small.first_start_time >= rt_blocker.first_start_time

    def test_completes_trace(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(no_comm_cluster, tiny_trace, YarnCapacityScheduler(),
                          matrix=matrix)
        assert result.all_completed
        assert result.scheduler_name == "yarn-cs"
