"""Unit tests for Gavel's policy layer and round-based scheduler."""

import pytest

from repro.baselines.gavel import GavelConfig, GavelScheduler
from repro.baselines.gavel.policy import max_min_allocation_matrix
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.progress import JobRuntime, JobState
from repro.workload.trace import Trace

from tests.conftest import make_job


def queued(job):
    rt = JobRuntime(job=job)
    rt.state = JobState.QUEUED
    return rt


class TestPolicy:
    def test_matrix_shape_and_lookup(self, small_cluster, matrix):
        jobs = [queued(make_job(i, "resnet18", workers=1)) for i in range(3)]
        am = max_min_allocation_matrix(
            jobs, small_cluster.gpu_types, small_cluster.capacity_by_type(), matrix
        )
        assert am.values.shape == (3, 3)
        assert 0.0 <= am.fraction(0, "V100") <= 1.0
        assert am.fraction(99, "V100") == 0.0  # unknown id

    def test_row(self, small_cluster, matrix):
        jobs = [queued(make_job(0, "resnet18", workers=1))]
        am = max_min_allocation_matrix(
            jobs, small_cluster.gpu_types, small_cluster.capacity_by_type(), matrix
        )
        row = am.row(0)
        assert set(row) == {"K80", "P100", "V100"}

    def test_gang_infeasible_type_zeroed(self, small_cluster, matrix):
        """A type with fewer devices than W_j must get zero share."""
        jobs = [queued(make_job(0, "resnet18", workers=3))]  # K80 has only 2
        am = max_min_allocation_matrix(
            jobs, small_cluster.gpu_types, small_cluster.capacity_by_type(), matrix
        )
        assert am.fraction(0, "K80") == 0.0

    def test_fully_infeasible_job_raises(self, small_cluster, matrix):
        jobs = [queued(make_job(0, "resnet18", workers=5))]  # max type cap 4
        with pytest.raises(ValueError, match="single GPU type"):
            max_min_allocation_matrix(
                jobs, small_cluster.gpu_types, small_cluster.capacity_by_type(), matrix
            )

    def test_empty_jobs(self, small_cluster, matrix):
        am = max_min_allocation_matrix(
            [], small_cluster.gpu_types, small_cluster.capacity_by_type(), matrix
        )
        assert am.values.shape == (0, 3)

    def test_water_filling_solver_variant(self, small_cluster, matrix):
        jobs = [queued(make_job(i, "resnet18", workers=1)) for i in range(2)]
        am = max_min_allocation_matrix(
            jobs, small_cluster.gpu_types, small_cluster.capacity_by_type(),
            matrix, solver="water-filling",
        )
        assert am.values.shape == (2, 3)

    def test_bad_solver(self, small_cluster, matrix):
        with pytest.raises(ValueError):
            max_min_allocation_matrix(
                [], small_cluster.gpu_types, {}, matrix, solver="magic"
            )


class TestScheduler:
    def test_homogeneous_gangs_always(self, no_comm_cluster, matrix, philly_trace_small):
        """Gavel's defining constraint: one GPU type per job per round."""
        seen_types: list[frozenset] = []

        class Spy(GavelScheduler):
            def schedule(self, ctx):
                target = super().schedule(ctx)
                seen_types.extend(a.gpu_types for a in target.values() if a)
                return target

        trace = Trace([j for j in philly_trace_small if j.num_workers <= 3])
        result = simulate(no_comm_cluster, trace, Spy(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        assert result.all_completed
        assert seen_types and all(len(types) == 1 for types in seen_types)

    def test_completes_tiny_trace(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(no_comm_cluster, tiny_trace, GavelScheduler(), matrix=matrix)
        assert result.all_completed

    def test_matrix_cache_invalidated_on_job_change(self, no_comm_cluster, matrix):
        scheduler = GavelScheduler()
        trace = Trace(
            [
                make_job(0, "resnet18", workers=1, epochs=1),
                make_job(1, "resnet50", arrival=3600.0, workers=1, epochs=1),
            ]
        )
        result = simulate(no_comm_cluster, trace, scheduler, matrix=matrix)
        assert result.all_completed

    def test_reset_clears_cache(self):
        scheduler = GavelScheduler()
        scheduler._cached_key = (1, 2)
        scheduler.reset()
        assert scheduler._cached_key is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GavelConfig(solver="magic")
        with pytest.raises(ValueError):
            GavelConfig(min_fraction=-0.1)

    def test_shares_time_across_jobs(self, no_comm_cluster, matrix):
        """Max-min: two contending identical jobs both make progress early."""
        jobs = [
            make_job(0, "resnet18", workers=4, epochs=30),
            make_job(1, "resnet18", workers=4, epochs=30),
        ]
        # Only 4 V100s: the jobs must alternate on them (or split types).
        result = simulate(
            no_comm_cluster, Trace(jobs), GavelScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        assert result.all_completed
        starts = [result.runtimes[i].first_start_time for i in (0, 1)]
        assert max(starts) < 3600.0  # neither starved at the start
