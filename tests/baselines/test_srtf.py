"""Unit tests for the SRTF extension baseline."""

import pytest

from repro.baselines.srtf import SRTFScheduler
from repro.baselines.yarn import YarnCapacityScheduler
from repro.metrics.jct import jct_stats
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestSRTF:
    def test_completes_trace(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(no_comm_cluster, tiny_trace, SRTFScheduler(), matrix=matrix)
        assert result.all_completed
        assert result.scheduler_name == "srtf"

    def test_shortest_first_under_contention(self, no_comm_cluster, matrix):
        """Both jobs want the whole cluster; the short one must finish first
        even though the long one arrived first."""
        long_job = make_job(0, "resnet18", workers=9, epochs=100)
        short_job = make_job(1, "resnet18", arrival=1.0, workers=9, epochs=2)
        result = simulate(
            no_comm_cluster, Trace([long_job, short_job]), SRTFScheduler(),
            matrix=matrix, checkpoint=NoOverheadCheckpoint(),
        )
        assert result.runtimes[1].finish_time < result.runtimes[0].finish_time

    def test_heterogeneity_aware_placement(self, no_comm_cluster, matrix):
        """A lone resnet50 lands on V100s (its 10×-faster type)."""
        trace = Trace([make_job(0, "resnet50", workers=2, epochs=1)])
        result = simulate(no_comm_cluster, trace, SRTFScheduler(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        ideal = trace[0].total_iterations / (2 * matrix.rate("resnet50", "V100"))
        assert result.runtimes[0].finish_time == pytest.approx(ideal, rel=1e-6)

    def test_beats_fifo_on_mean_jct(self, no_comm_cluster, matrix, philly_trace_small):
        trace = Trace([j for j in philly_trace_small if j.num_workers <= 4])
        srtf = simulate(no_comm_cluster, trace, SRTFScheduler(), matrix=matrix)
        yarn = simulate(no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix)
        assert jct_stats(srtf).mean < jct_stats(yarn).mean

    def test_mixes_types_when_needed(self, no_comm_cluster, matrix):
        """Like Hadar, SRTF packs across types when no type has W devices."""
        trace = Trace([make_job(0, "resnet18", workers=6, epochs=1)])
        result = simulate(no_comm_cluster, trace, SRTFScheduler(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        assert result.all_completed


class TestGavelMaxSum:
    def test_policy_runs_and_differs_from_max_min(
        self, no_comm_cluster, matrix, philly_trace_small
    ):
        from repro.baselines.gavel import GavelConfig, GavelScheduler

        trace = Trace([j for j in philly_trace_small if j.num_workers <= 3])
        max_min = simulate(no_comm_cluster, trace, GavelScheduler(), matrix=matrix)
        max_sum = simulate(
            no_comm_cluster, trace,
            GavelScheduler(GavelConfig(policy="max-sum")), matrix=matrix,
        )
        assert max_min.all_completed and max_sum.all_completed

    def test_max_sum_lp_shape(self):
        import numpy as np

        from repro.baselines.gavel.solver import solve_max_sum_lp

        # One fast-affine job, one indifferent: utilitarian optimum gives
        # the fast type to the job that exploits it.
        speeds = np.array([[1.0, 0.1], [1.0, 1.0]])
        y = solve_max_sum_lp(speeds, np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        total = float((y * speeds).sum())
        assert total == pytest.approx(2.0, abs=1e-6)

    def test_policy_validation(self):
        from repro.baselines.gavel import GavelConfig

        with pytest.raises(ValueError):
            GavelConfig(policy="max-entropy")

    def test_max_sum_requires_lp(self, no_comm_cluster, matrix):
        from repro.baselines.gavel.policy import max_min_allocation_matrix

        with pytest.raises(ValueError, match="requires the LP"):
            max_min_allocation_matrix(
                [], no_comm_cluster.gpu_types, {}, matrix,
                solver="water-filling", policy="max-sum",
            )
