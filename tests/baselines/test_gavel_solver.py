"""Unit tests for the Gavel max-min solvers (LP + water-filling)."""

import numpy as np
import pytest

from repro.baselines.gavel.solver import (
    min_scaled_throughput,
    solve_max_min_lp,
    water_filling_allocation,
)


def check_feasible(y, workers, capacity):
    assert np.all(y >= -1e-9)
    assert np.all(y.sum(axis=1) <= 1.0 + 1e-6)
    assert np.all((y * workers[:, None]).sum(axis=0) <= capacity + 1e-6)


class TestLP:
    def test_single_job_gets_best_type(self):
        speeds = np.array([[1.0, 0.3]])
        y = solve_max_min_lp(speeds, np.array([1.0]), np.array([4.0, 4.0]))
        check_feasible(y, np.array([1.0]), np.array([4.0, 4.0]))
        assert min_scaled_throughput(y, speeds) == pytest.approx(1.0)

    def test_two_jobs_ample_capacity(self):
        speeds = np.array([[1.0, 0.5], [0.5, 1.0]])
        workers = np.array([1.0, 1.0])
        capacity = np.array([2.0, 2.0])
        y = solve_max_min_lp(speeds, workers, capacity)
        check_feasible(y, workers, capacity)
        assert min_scaled_throughput(y, speeds) == pytest.approx(1.0)

    def test_contended_capacity_shares_fairly(self):
        # Two identical jobs, one device of the only useful type.
        speeds = np.array([[1.0], [1.0]])
        workers = np.array([1.0, 1.0])
        capacity = np.array([1.0])
        y = solve_max_min_lp(speeds, workers, capacity)
        check_feasible(y, workers, capacity)
        assert min_scaled_throughput(y, speeds) == pytest.approx(0.5)

    def test_heterogeneous_example(self):
        """The classic Gavel intuition: the low-speedup job should take the
        slow type, freeing the fast type for the high-speedup job."""
        # Job 0: 10× faster on type 0.  Job 1: indifferent.
        speeds = np.array([[1.0, 0.1], [1.0, 1.0]])
        workers = np.array([1.0, 1.0])
        capacity = np.array([1.0, 1.0])
        y = solve_max_min_lp(speeds, workers, capacity)
        m = min_scaled_throughput(y, speeds)
        # Assigning job 0 → type 0, job 1 → type 1 achieves 1.0.
        assert m == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_max_min_lp(np.array([[0.0]]), np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            solve_max_min_lp(np.array([[1.0]]), np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            solve_max_min_lp(np.array([[1.0]]), np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            solve_max_min_lp(np.array([1.0]), np.array([1.0]), np.array([1.0]))


class TestWaterFilling:
    @pytest.mark.parametrize(
        "speeds,workers,capacity",
        [
            (np.array([[1.0, 0.3]]), np.array([1.0]), np.array([4.0, 4.0])),
            (np.array([[1.0], [1.0]]), np.array([1.0, 1.0]), np.array([1.0])),
            (
                np.array([[1.0, 0.1], [1.0, 1.0]]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            ),
            (
                np.array([[1.0, 0.5, 0.2], [0.3, 1.0, 0.6], [0.9, 0.8, 1.0]]),
                np.array([2.0, 1.0, 4.0]),
                np.array([4.0, 2.0, 6.0]),
            ),
        ],
    )
    def test_tracks_lp_objective(self, speeds, workers, capacity):
        """The in-repo approximation stays within 10% + step of the LP."""
        y_lp = solve_max_min_lp(speeds, workers, capacity)
        y_wf = water_filling_allocation(speeds, workers, capacity, step=0.01)
        check_feasible(y_wf, workers, capacity)
        m_lp = min_scaled_throughput(y_lp, speeds)
        m_wf = min_scaled_throughput(y_wf, speeds)
        assert m_wf >= 0.9 * m_lp - 0.02

    def test_never_exceeds_lp(self):
        speeds = np.array([[1.0], [1.0]])
        workers = np.array([1.0, 1.0])
        capacity = np.array([1.0])
        m_lp = min_scaled_throughput(
            solve_max_min_lp(speeds, workers, capacity), speeds
        )
        m_wf = min_scaled_throughput(
            water_filling_allocation(speeds, workers, capacity), speeds
        )
        assert m_wf <= m_lp + 1e-6

    def test_step_validation(self):
        with pytest.raises(ValueError):
            water_filling_allocation(
                np.array([[1.0]]), np.array([1.0]), np.array([1.0]), step=0.0
            )

    def test_deterministic(self):
        speeds = np.array([[1.0, 0.4], [0.7, 1.0]])
        workers = np.array([1.0, 2.0])
        capacity = np.array([2.0, 2.0])
        a = water_filling_allocation(speeds, workers, capacity)
        b = water_filling_allocation(speeds, workers, capacity)
        np.testing.assert_array_equal(a, b)
