"""Unit tests for the shared gang-packing helpers."""

import pytest

from repro.baselines.packing import pack_gang, pack_gang_single_type
from repro.cluster.allocation import Allocation


class TestPackGang:
    def test_fills_fullest_node_first(self, small_cluster):
        state = small_cluster.fresh_state()
        gang = pack_gang(state, 3)
        assert gang is not None
        assert gang.total_workers == 3
        # Nodes all have 3 free; the tie-break picks node 0 alone.
        assert gang.is_consolidated

    def test_spans_nodes_when_needed(self, small_cluster):
        state = small_cluster.fresh_state()
        gang = pack_gang(state, 7)
        assert gang is not None
        assert gang.total_workers == 7
        assert len(gang.node_ids) >= 3

    def test_none_when_capacity_short(self, small_cluster):
        state = small_cluster.fresh_state()
        assert pack_gang(state, 10) is None  # only 9 GPUs exist

    def test_allowed_types_respected(self, small_cluster):
        state = small_cluster.fresh_state()
        gang = pack_gang(state, 3, allowed_types=["P100"])
        assert gang is not None
        assert gang.gpu_types == {"P100"}

    def test_preferred_types_order(self, small_cluster):
        state = small_cluster.fresh_state()
        gang = pack_gang(state, 1, preferred_types=["K80", "V100", "P100"])
        assert gang is not None
        assert gang.gpu_types == {"K80"}

    def test_respects_existing_occupancy(self, small_cluster):
        state = small_cluster.fresh_state()
        state.allocate(Allocation({(0, "V100"): 2, (1, "V100"): 2}))
        gang = pack_gang(state, 4, allowed_types=["V100"])
        assert gang is None

    def test_workers_validation(self, small_cluster):
        with pytest.raises(ValueError):
            pack_gang(small_cluster.fresh_state(), 0)


class TestPackSingleType:
    def test_single_type_gang(self, small_cluster):
        state = small_cluster.fresh_state()
        gang = pack_gang_single_type(state, 4, "V100")
        assert gang is not None
        assert gang.gpu_types == {"V100"}
        assert gang.total_workers == 4
        assert gang.node_ids == {0, 1}

    def test_none_when_type_short(self, small_cluster):
        state = small_cluster.fresh_state()
        assert pack_gang_single_type(state, 5, "V100") is None
        assert pack_gang_single_type(state, 3, "K80") is None

    def test_unknown_type(self, small_cluster):
        assert pack_gang_single_type(small_cluster.fresh_state(), 1, "A100") is None
