"""Unit tests for the Tiresias baseline."""

import pytest

from repro.baselines.tiresias import TiresiasConfig, TiresiasScheduler
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestConfig:
    def test_default_threshold(self):
        assert TiresiasConfig().queue_threshold_gpu_s == 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TiresiasConfig(queue_threshold_gpu_s=0.0)


class TestScheduling:
    def test_completes_trace(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(
            no_comm_cluster, tiny_trace, TiresiasScheduler(), matrix=matrix
        )
        assert result.all_completed

    def test_single_type_gangs(self, no_comm_cluster, matrix, philly_trace_small):
        """Tiresias shares Gavel's single-type limitation (Sec. IV-A-2)."""
        seen: list[frozenset] = []

        class Spy(TiresiasScheduler):
            def schedule(self, ctx):
                target = super().schedule(ctx)
                seen.extend(a.gpu_types for a in target.values() if a)
                return target

        trace = Trace([j for j in philly_trace_small if j.num_workers <= 3])
        simulate(no_comm_cluster, trace, Spy(), matrix=matrix,
                 checkpoint=NoOverheadCheckpoint())
        assert seen and all(len(t) == 1 for t in seen)

    def test_availability_not_speed_driven(self, no_comm_cluster, matrix):
        """Heterogeneity-blind: picks the most-available type, not the
        fastest.  On the small cluster V100 has 4 free, so a lone job gets
        V100 only by the availability count — shrink V100 to verify."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import Node
        from repro.cluster.topology import CommunicationModel

        cluster = Cluster(
            [Node(0, {"V100": 1}), Node(1, {"K80": 3})],
            comm=CommunicationModel.disabled(),
        )
        trace = Trace([make_job(0, "resnet50", workers=1, epochs=1)])
        result = simulate(cluster, trace, TiresiasScheduler(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        rt = result.runtimes[0]
        # K80 has more free devices → chosen, despite being 10× slower.
        expected = trace[0].total_iterations / matrix.rate("resnet50", "K80")
        assert rt.finish_time == pytest.approx(expected, rel=1e-6)

    def test_demotion_is_one_way(self, no_comm_cluster, matrix):
        """A job that crossed the threshold stays demoted (PromoteKnob off)."""
        scheduler = TiresiasScheduler(TiresiasConfig(queue_threshold_gpu_s=60.0))
        # Long enough to span several rounds so demotion checks fire.
        trace = Trace(
            [
                make_job(0, "resnet18", workers=4, epochs=200),
                make_job(1, "resnet18", workers=4, epochs=200),
            ]
        )
        result = simulate(no_comm_cluster, trace, scheduler, matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        assert result.all_completed
        assert scheduler._demoted  # both ran long enough to demote

    def test_short_jobs_jump_demoted_long_jobs(self, no_comm_cluster, matrix):
        """LAS: a newcomer with zero attained service preempts a demoted
        long-runner."""
        scheduler = TiresiasScheduler(TiresiasConfig(queue_threshold_gpu_s=600.0))
        long_job = make_job(0, "resnet18", workers=4, epochs=60)
        short_job = make_job(1, "resnet18", arrival=3600.0, workers=4, epochs=1)
        result = simulate(
            no_comm_cluster, Trace([long_job, short_job]), scheduler,
            matrix=matrix, checkpoint=NoOverheadCheckpoint(),
        )
        rt_short = result.runtimes[1]
        # The short job started at the first boundary after its arrival,
        # not after the long job finished.
        assert rt_short.queuing_delay is not None
        assert rt_short.queuing_delay < 2 * 360.0

    def test_reset(self):
        scheduler = TiresiasScheduler()
        scheduler._demoted.add(1)
        scheduler.reset()
        assert not scheduler._demoted
