"""Focused tests of Gavel's priority realization mechanics."""

import numpy as np
import pytest

from repro.baselines.gavel import GavelScheduler
from repro.baselines.gavel.policy import AllocationMatrix
from repro.sim.interface import SchedulerContext
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


def ctx_for(cluster, matrix, runtimes):
    for rt in runtimes:
        if rt.state is JobState.PENDING:
            rt.state = JobState.QUEUED
    return SchedulerContext(
        now=0.0,
        cluster=cluster,
        matrix=matrix,
        round_length=360.0,
        waiting=tuple(rt for rt in runtimes if rt.state is JobState.QUEUED),
        running=tuple(rt for rt in runtimes if rt.state is JobState.RUNNING),
    )


class TestPriorityRealization:
    def test_unserved_job_beats_served_one(self, no_comm_cluster, matrix):
        """rounds_received = 0 acts as infinite priority: with one V100
        pool slot, the never-served job must win it."""
        served = JobRuntime(job=make_job(0, "resnet18", workers=4))
        served.rounds_by_type = {"V100": 50}
        fresh = JobRuntime(job=make_job(1, "resnet18", workers=4))

        scheduler = GavelScheduler()
        target = scheduler.schedule(ctx_for(no_comm_cluster, matrix, [served, fresh]))
        # Only 4 V100s exist; exactly one of the two 4-gangs fits on V100.
        if 1 in target and target[1].gpu_types == {"V100"}:
            assert target.get(0, None) is None or target[0].gpu_types != {"V100"}
        else:
            pytest.fail(f"fresh job did not get the V100 pool: {target}")

    def test_priority_decays_with_rounds_received(self, no_comm_cluster, matrix):
        """Between two served jobs, the one with fewer rounds on the type
        has the higher claim."""
        lightly = JobRuntime(job=make_job(0, "resnet18", workers=4))
        lightly.rounds_by_type = {"V100": 1}
        heavily = JobRuntime(job=make_job(1, "resnet18", workers=4))
        heavily.rounds_by_type = {"V100": 40}

        scheduler = GavelScheduler()
        target = scheduler.schedule(
            ctx_for(no_comm_cluster, matrix, [lightly, heavily])
        )
        assert 0 in target and target[0].gpu_types == {"V100"}

    def test_cache_hit_on_same_job_set(self, no_comm_cluster, matrix):
        rt = JobRuntime(job=make_job(0, "resnet18", workers=1))
        scheduler = GavelScheduler()
        scheduler.schedule(ctx_for(no_comm_cluster, matrix, [rt]))
        first = scheduler._cached_matrix
        scheduler.schedule(ctx_for(no_comm_cluster, matrix, [rt]))
        assert scheduler._cached_matrix is first  # same object: cache hit

    def test_allocation_matrix_row_fractions_sum_le_one(
        self, no_comm_cluster, matrix
    ):
        runtimes = [
            JobRuntime(job=make_job(i, m, workers=1))
            for i, m in enumerate(("resnet18", "resnet50", "cyclegan"))
        ]
        scheduler = GavelScheduler()
        scheduler.schedule(ctx_for(no_comm_cluster, matrix, runtimes))
        am: AllocationMatrix = scheduler._cached_matrix
        assert am is not None
        sums = am.values.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-6)
