"""Unit tests for the random sanity-floor scheduler."""

from repro.baselines.random_sched import RandomScheduler
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate


class TestRandomScheduler:
    def test_completes_trace(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(no_comm_cluster, tiny_trace, RandomScheduler(seed=3),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        assert result.all_completed

    def test_deterministic_per_seed(self, no_comm_cluster, matrix, tiny_trace):
        a = simulate(no_comm_cluster, tiny_trace, RandomScheduler(seed=5), matrix=matrix)
        b = simulate(no_comm_cluster, tiny_trace, RandomScheduler(seed=5), matrix=matrix)
        assert a.jcts() == b.jcts()

    def test_seed_changes_behaviour(self, no_comm_cluster, matrix, philly_trace_small):
        a = simulate(no_comm_cluster, philly_trace_small, RandomScheduler(seed=1), matrix=matrix)
        b = simulate(no_comm_cluster, philly_trace_small, RandomScheduler(seed=2), matrix=matrix)
        assert a.jcts() != b.jcts()

    def test_reset_restores_stream(self, no_comm_cluster, matrix, tiny_trace):
        sched = RandomScheduler(seed=9)
        a = simulate(no_comm_cluster, tiny_trace, sched, matrix=matrix)
        b = simulate(no_comm_cluster, tiny_trace, sched, matrix=matrix)  # reset() inside
        assert a.jcts() == b.jcts()
