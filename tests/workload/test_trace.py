"""Unit tests for Trace containers and I/O."""

import pytest

from repro.workload.trace import Trace

from tests.conftest import make_job


@pytest.fixture
def trace():
    return Trace(
        [
            make_job(0, "resnet18", arrival=10.0),
            make_job(1, "cyclegan", arrival=0.0, workers=2),
            make_job(2, "lstm", arrival=5.0),
        ]
    )


class TestContainer:
    def test_sorted_by_arrival(self, trace):
        assert [j.job_id for j in trace] == [1, 2, 0]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Trace([make_job(0), make_job(0, "lstm")])

    def test_lookup(self, trace):
        assert trace.job(2).model.name == "lstm"
        with pytest.raises(KeyError):
            trace.job(99)

    def test_horizon(self, trace):
        assert trace.horizon == 10.0
        assert Trace([]).horizon == 0.0

    def test_total_workers(self, trace):
        assert trace.total_workers_requested == 4

    def test_head(self, trace):
        assert [j.job_id for j in trace.head(2)] == [1, 2]

    def test_filtered(self, trace):
        small = trace.filtered(lambda j: j.num_workers == 1)
        assert len(small) == 2

    def test_static_detection(self, trace):
        assert not trace.is_static()
        assert trace.as_static().is_static()

    def test_shifted_to_zero(self):
        t = Trace([make_job(0, arrival=100.0), make_job(1, arrival=150.0)])
        shifted = t.shifted_to_zero()
        assert [j.arrival_time for j in shifted] == [0.0, 50.0]

    def test_concat(self, trace):
        other = Trace([make_job(10, arrival=1.0)])
        merged = Trace.concat([trace, other])
        assert len(merged) == 4


class TestIO:
    def test_csv_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        restored = Trace.from_csv(path)
        assert list(restored) == list(trace)

    def test_jsonl_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        restored = Trace.from_jsonl(path)
        assert list(restored) == list(trace)

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("job_id,model\n0,resnet18\n")
        with pytest.raises(ValueError, match="missing columns"):
            Trace.from_csv(path)

    def test_jsonl_skips_blank_lines(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Trace.from_jsonl(path)) == len(trace)
