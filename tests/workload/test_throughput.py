"""Unit tests for the throughput matrix."""

import numpy as np
import pytest

from repro.workload.throughput import (
    DEFAULT_THROUGHPUTS,
    ThroughputMatrix,
    default_throughput_matrix,
)


@pytest.fixture
def tiny():
    return ThroughputMatrix(
        {
            "fast-model": {"V100": 10.0, "K80": 1.0},
            "flat-model": {"V100": 4.0, "K80": 2.0},
        }
    )


class TestLookups:
    def test_rate(self, tiny):
        assert tiny.rate("fast-model", "V100") == 10.0
        assert tiny.rate("fast-model", "P100") == 0.0  # unknown pair
        assert tiny.rate("nope", "V100") == 0.0

    def test_supports(self, tiny):
        assert tiny.supports("fast-model", "K80")
        assert not tiny.supports("fast-model", "P100")

    def test_best_and_worst(self, tiny):
        assert tiny.best_type("fast-model") == "V100"
        assert tiny.worst_type("fast-model") == "K80"
        assert tiny.max_rate("flat-model") == 4.0
        assert tiny.min_rate("flat-model") == 2.0

    def test_best_with_candidates(self, tiny):
        assert tiny.best_type("fast-model", candidates=["K80"]) == "K80"
        with pytest.raises(ValueError):
            tiny.best_type("fast-model", candidates=["P100"])

    def test_speedup(self, tiny):
        assert tiny.speedup("fast-model", "V100", "K80") == 10.0
        with pytest.raises(ValueError):
            tiny.speedup("fast-model", "V100", "P100")

    def test_models_and_types_sorted(self, tiny):
        assert tiny.models() == ("fast-model", "flat-model")
        assert tiny.gpu_types() == ("K80", "V100")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMatrix({"m": {"V100": -1.0}})


class TestDerivations:
    def test_scaled(self, tiny):
        doubled = tiny.scaled(2.0)
        assert doubled.rate("fast-model", "V100") == 20.0
        assert tiny.rate("fast-model", "V100") == 10.0  # original intact

    def test_scaled_validates(self, tiny):
        with pytest.raises(ValueError):
            tiny.scaled(0.0)

    def test_restricted(self, tiny):
        only_k80 = tiny.restricted(["K80"])
        assert not only_k80.supports("fast-model", "V100")
        assert only_k80.rate("fast-model", "K80") == 1.0

    def test_with_model(self, tiny):
        extended = tiny.with_model("new", {"V100": 7.0})
        assert extended.rate("new", "V100") == 7.0
        assert "new" not in tiny.rates

    def test_as_array(self, tiny):
        arr = tiny.as_array(["fast-model", "flat-model"], ["V100", "K80", "P100"])
        assert arr.shape == (2, 3)
        np.testing.assert_allclose(arr[0], [10.0, 1.0, 0.0])


class TestDefaults:
    def test_paper_speedup_shapes(self):
        """The Gavel observations the paper quotes (Sec. I)."""
        m = default_throughput_matrix()
        # ResNet-50: ~10× V100 over K80.
        assert m.speedup("resnet50", "V100", "K80") == pytest.approx(10.0, rel=0.05)
        # A3C-style RL: only ~2×.
        assert m.speedup("a3c", "V100", "K80") == pytest.approx(2.0, rel=0.05)

    def test_all_zoo_models_on_paper_types(self):
        m = default_throughput_matrix()
        for model in DEFAULT_THROUGHPUTS:
            for t in ("V100", "P100", "K80"):
                assert m.supports(model, t), (model, t)

    def test_v100_dominates_k80_everywhere(self):
        m = default_throughput_matrix()
        for model in DEFAULT_THROUGHPUTS:
            assert m.rate(model, "V100") > m.rate(model, "K80")
