"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import poisson_arrivals, static_arrivals


class TestStatic:
    def test_all_zero(self):
        arr = static_arrivals(5)
        assert arr.shape == (5,)
        assert np.all(arr == 0.0)

    def test_empty(self):
        assert static_arrivals(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            static_arrivals(-1)


class TestPoisson:
    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(0)
        arr = poisson_arrivals(100, 60.0, rng)
        assert np.all(np.diff(arr) >= 0)
        assert np.all(arr > 0)

    def test_rate_matches_mean_gap(self):
        rng = np.random.default_rng(1)
        arr = poisson_arrivals(20000, 120.0, rng)
        gaps = np.diff(np.concatenate([[0.0], arr]))
        # λ = 120/h → mean gap 30 s.
        assert gaps.mean() == pytest.approx(30.0, rel=0.05)

    def test_deterministic_given_seed(self):
        a = poisson_arrivals(10, 60.0, np.random.default_rng(42))
        b = poisson_arrivals(10, 60.0, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 60.0, rng)
