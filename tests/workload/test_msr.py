"""Unit tests for the MSR/Philly-format trace loader."""

import pytest

from repro.workload.msr import load_msr_trace, rows_to_trace


def _row(jobid, submitted, gpus, runtime):
    return {
        "jobid": jobid,
        "submitted_time": submitted,
        "num_gpus": gpus,
        "runtime_s": runtime,
    }


class TestRowsToTrace:
    def test_basic_conversion(self):
        rows = [
            _row("a", 1000.0, 1, 1800.0),  # 0.5 GPU-h → S
            _row("b", 1360.0, 4, 36000.0),  # 40 GPU-h → L
        ]
        trace = rows_to_trace(rows, seed=1)
        assert len(trace) == 2
        assert trace[0].arrival_time == 0.0  # re-based to the first arrival
        assert trace[1].arrival_time == pytest.approx(360.0)
        assert trace[0].model.size_category == "S"
        assert trace[1].model.size_category == "L"

    def test_gpu_hours_preserved(self, matrix):
        rows = [_row("a", 0.0, 2, 7200.0)]  # 4 GPU-hours → M bucket
        trace = rows_to_trace(rows, seed=0, matrix=matrix)
        job = trace[0]
        measured = job.total_iterations / (
            3600.0 * matrix.rate(job.model.name, "V100")
        )
        assert measured == pytest.approx(4.0, rel=0.05)  # epoch rounding

    def test_invalid_records_skipped(self):
        rows = [
            _row("dead", 0.0, 0, 100.0),
            _row("instant", 0.0, 2, 0.0),
            _row("ok", 50.0, 1, 3600.0),
        ]
        trace = rows_to_trace(rows)
        assert len(trace) == 1

    def test_workers_capped(self):
        rows = [_row("big", 0.0, 128, 3600.0)]
        trace = rows_to_trace(rows, max_workers=16)
        assert trace[0].num_workers == 16

    def test_deterministic_model_sampling(self):
        rows = [_row(str(i), i * 10.0, 1, 50000.0) for i in range(10)]
        a = rows_to_trace(rows, seed=4)
        b = rows_to_trace(rows, seed=4)
        assert list(a) == list(b)

    def test_empty(self):
        assert len(rows_to_trace([])) == 0


class TestLoadCSV:
    def test_load_roundtrip(self, tmp_path):
        path = tmp_path / "philly.csv"
        path.write_text(
            "jobid,submitted_time,num_gpus,runtime_s,extra\n"
            "j1,100,1,1800,ignored\n"
            "j2,200,2,7200,ignored\n"
            "j3,300,0,100,ignored\n"  # invalid: 0 GPUs
        )
        trace = load_msr_trace(path, seed=2)
        assert len(trace) == 2

    def test_max_jobs(self, tmp_path):
        path = tmp_path / "philly.csv"
        lines = ["jobid,submitted_time,num_gpus,runtime_s"]
        lines += [f"j{i},{i * 100},1,3600" for i in range(10)]
        path.write_text("\n".join(lines) + "\n")
        trace = load_msr_trace(path, max_jobs=3)
        assert len(trace) == 3

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("jobid,num_gpus\nj1,1\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_msr_trace(path)
