"""Unit tests for the S/M/L/XL buckets."""

import pytest

from repro.workload.categories import CATEGORIES, SizeCategory, category_for_gpu_hours


class TestBuckets:
    def test_paper_ranges(self):
        assert CATEGORIES["S"].gpu_hours_hi == 1.0
        assert CATEGORIES["M"].gpu_hours_hi == 10.0
        assert CATEGORIES["L"].gpu_hours_hi == 50.0
        assert CATEGORIES["XL"].gpu_hours_hi == 100.0

    @pytest.mark.parametrize(
        "hours,label",
        [(0.5, "S"), (1.0, "S"), (1.1, "M"), (10.0, "M"), (25.0, "L"),
         (50.0, "L"), (55.0, "XL"), (75.0, "XL"), (100.0, "XL")],
    )
    def test_bucketing(self, hours, label):
        assert category_for_gpu_hours(hours).label == label

    def test_above_range_clamps_to_xl(self):
        assert category_for_gpu_hours(500.0).label == "XL"

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            category_for_gpu_hours(0.0)

    def test_table2_model_assignment(self):
        assert CATEGORIES["S"].models == ("resnet18",)
        assert CATEGORIES["M"].models == ("cyclegan",)
        assert set(CATEGORIES["L"].models) == {"lstm", "transformer"}
        assert CATEGORIES["XL"].models == ("resnet50",)

    def test_contains_boundaries(self):
        cat = CATEGORIES["M"]
        assert not cat.contains(1.0)  # lo is exclusive
        assert cat.contains(10.0)  # hi is inclusive


class TestValidation:
    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            SizeCategory("X", 0.0, 1.0, ())

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            SizeCategory("X", 2.0, 1.0, ("resnet18",))
