"""Unit tests for Job."""

import pytest

from repro.workload.job import Job
from repro.workload.models import model_spec
from repro.workload.throughput import default_throughput_matrix

from tests.conftest import make_job


class TestAccounting:
    def test_total_iterations(self):
        job = make_job(epochs=3, iters_per_epoch=100)
        assert job.total_iterations == 300

    def test_min_max_duration(self, matrix):
        job = make_job(model="resnet50", workers=2, epochs=1, iters_per_epoch=100)
        # A100 is resnet50's best (3.6 it/s), K520 its worst (0.08 it/s).
        assert job.min_duration(matrix) == pytest.approx(100 / (2 * 3.6))
        assert job.max_duration(matrix) == pytest.approx(100 / (2 * 0.08))
        assert job.min_duration(matrix) < job.max_duration(matrix)

    def test_duration_on_type(self, matrix):
        job = make_job(model="resnet50", workers=4, epochs=1, iters_per_epoch=80)
        assert job.duration_on_type(matrix, "K80") == pytest.approx(80 / (4 * 0.2))
        with pytest.raises(ValueError):
            # resnet50 row has no "nonexistent" entry.
            job.duration_on_type(matrix, "nonexistent")

    def test_reference_gpu_hours(self, matrix):
        job = make_job(model="resnet18", workers=2, epochs=1, iters_per_epoch=16 * 3600)
        # 16·3600 iterations at 16 it/s × 2 workers → 1800 s → 1 GPU-hour.
        assert job.reference_gpu_hours(matrix) == pytest.approx(1.0)


class TestValidation:
    def test_bad_fields(self):
        spec = model_spec("resnet18")
        with pytest.raises(ValueError):
            Job(-1, spec, 0.0, 1, 1, 1)
        with pytest.raises(ValueError):
            Job(0, spec, -1.0, 1, 1, 1)
        with pytest.raises(ValueError):
            Job(0, spec, 0.0, 0, 1, 1)
        with pytest.raises(ValueError):
            Job(0, spec, 0.0, 1, 0, 1)


class TestSerialization:
    def test_roundtrip(self):
        job = make_job(3, "transformer", arrival=120.5, workers=4, epochs=7)
        restored = Job.from_record(job.to_record())
        assert restored == job

    def test_with_arrival(self):
        job = make_job(arrival=100.0)
        moved = job.with_arrival(0.0)
        assert moved.arrival_time == 0.0
        assert moved.job_id == job.job_id
        assert job.arrival_time == 100.0
