"""Unit tests for the workload analysis utilities."""

import pytest

from repro.workload.analysis import offered_load, summarize_trace
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestSummarize:
    def test_empty_trace(self):
        s = summarize_trace(Trace([]))
        assert s.num_jobs == 0
        assert s.total_gpu_hours == 0.0

    def test_counts_by_category(self):
        trace = Trace(
            [
                make_job(0, "resnet18"),  # S
                make_job(1, "resnet50"),  # XL
                make_job(2, "resnet50"),  # XL
            ]
        )
        s = summarize_trace(trace)
        assert s.jobs_by_category["S"] == 1
        assert s.jobs_by_category["XL"] == 2
        assert s.num_jobs == 3

    def test_gpu_hours_from_reference_rate(self, matrix):
        # resnet18 at 16 it/s on V100: 16×3600 iters = 1 GPU-hour.
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=16 * 3600)
        s = summarize_trace(Trace([job]), matrix)
        assert s.total_gpu_hours == pytest.approx(1.0)

    def test_demand_histogram(self):
        trace = Trace(
            [
                make_job(0, workers=1),
                make_job(1, workers=1),
                make_job(2, workers=4),
            ]
        )
        s = summarize_trace(trace)
        assert s.demand_histogram == {1: 2, 4: 1}
        assert s.max_concurrent_demand == 6

    def test_arrival_rate(self):
        trace = Trace(
            [make_job(i, arrival=i * 360.0) for i in range(11)]
        )
        s = summarize_trace(trace)
        # 10 gaps of 360 s → 10 jobs/hour.
        assert s.mean_arrival_rate_per_hour == pytest.approx(10.0)

    def test_static_trace_rate_zero(self):
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=5, seed=0))
        assert summarize_trace(trace).mean_arrival_rate_per_hour == 0.0


class TestOfferedLoad:
    def test_static_trace_gives_drain_time(self, paper_cluster, matrix):
        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=16 * 3600)
        # 1 GPU-hour over 60 GPUs → 1/60 h ideal drain.
        assert offered_load(Trace([job]), paper_cluster, matrix) == pytest.approx(1 / 60)

    def test_continuous_trace_is_dimensionless(self, paper_cluster):
        trace = generate_philly_trace(
            PhillyTraceConfig(
                num_jobs=40, arrival_pattern="continuous", jobs_per_hour=60, seed=1
            )
        )
        load = offered_load(trace, paper_cluster)
        assert load > 0.0

    def test_empty_cluster_rejected(self, matrix):
        from repro.cluster.cluster import Cluster

        with pytest.raises(ValueError):
            offered_load(Trace([make_job(0)]), Cluster([]), matrix)
