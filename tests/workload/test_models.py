"""Unit tests for the model zoo."""

import pytest

from repro.workload.models import MODEL_ZOO, ModelSpec, model_spec


class TestZoo:
    def test_table2_models_present(self):
        for name in ("resnet50", "resnet18", "lstm", "cyclegan", "transformer"):
            assert name in MODEL_ZOO

    def test_table2_size_categories(self):
        assert model_spec("resnet50").size_category == "XL"
        assert model_spec("resnet18").size_category == "S"
        assert model_spec("lstm").size_category == "L"
        assert model_spec("cyclegan").size_category == "M"
        assert model_spec("transformer").size_category == "L"

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="resnet50"):
            model_spec("alexnet")

    def test_model_bytes_from_params(self):
        m = model_spec("resnet50")
        assert m.model_bytes == pytest.approx(25.6e6 * 4.0)

    def test_checkpoint_bytes_from_mib(self):
        m = model_spec("lstm")
        assert m.checkpoint_bytes == pytest.approx(3060.0 * 1024**2)

    def test_lstm_checkpoint_largest(self):
        # Table IV: LSTM has the largest save-only overhead → biggest ckpt.
        lstm = model_spec("lstm").checkpoint_mib
        assert all(
            lstm >= m.checkpoint_mib for m in MODEL_ZOO.values()
        )


class TestValidation:
    def _spec(self, **overrides):
        base = dict(
            name="x",
            task="t",
            dataset="d",
            params_millions=1.0,
            size_category="S",
            iters_per_epoch=10,
            checkpoint_mib=10.0,
            restart_warmup_s=1.0,
        )
        base.update(overrides)
        return ModelSpec(**base)

    def test_valid(self):
        assert self._spec().name == "x"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("params_millions", 0.0),
            ("iters_per_epoch", 0),
            ("size_category", "XXL"),
            ("checkpoint_mib", 0.0),
            ("restart_warmup_s", -1.0),
        ],
    )
    def test_invalid(self, field, value):
        with pytest.raises(ValueError):
            self._spec(**{field: value})
