"""Unit tests for the synthetic Philly-style trace generator."""

import numpy as np
import pytest

from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.throughput import default_throughput_matrix


class TestConfigValidation:
    def test_defaults_ok(self):
        cfg = PhillyTraceConfig()
        assert cfg.num_jobs == 480  # the paper's job count

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_jobs": -1},
            {"arrival_pattern": "bursty"},
            {"jobs_per_hour": 0.0},
            {"max_workers": 0},
            {"demand_pmf": {}},
            {"demand_pmf": {1: -0.5}},
            {"demand_pmf": {1: 0.0}},
            {"category_weights": {"HUGE": 1.0}},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PhillyTraceConfig(**kwargs)


class TestGeneration:
    def test_deterministic(self):
        cfg = PhillyTraceConfig(num_jobs=40, seed=5)
        a = generate_philly_trace(cfg)
        b = generate_philly_trace(cfg)
        assert list(a) == list(b)

    def test_seed_changes_trace(self):
        a = generate_philly_trace(PhillyTraceConfig(num_jobs=40, seed=1))
        b = generate_philly_trace(PhillyTraceConfig(num_jobs=40, seed=2))
        assert list(a) != list(b)

    def test_static_pattern(self):
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=10, seed=0))
        assert trace.is_static()

    def test_continuous_pattern_monotone(self):
        trace = generate_philly_trace(
            PhillyTraceConfig(
                num_jobs=30, arrival_pattern="continuous", jobs_per_hour=60, seed=0
            )
        )
        arrivals = [j.arrival_time for j in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_max_workers_respected(self):
        trace = generate_philly_trace(
            PhillyTraceConfig(num_jobs=100, seed=0, max_workers=2)
        )
        assert max(j.num_workers for j in trace) <= 2

    def test_gpu_hours_match_categories(self):
        """Generated work lands in the sampled category's GPU-hour range."""
        from repro.workload.categories import CATEGORIES

        matrix = default_throughput_matrix()
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=60, seed=3))
        for job in trace:
            gpu_hours = job.total_iterations / (
                3600.0 * matrix.rate(job.model.name, "V100")
            )
            cat = CATEGORIES[job.model.size_category]
            # Epoch rounding can nudge a job slightly past a bucket edge.
            assert 0.4 * cat.gpu_hours_lo <= gpu_hours <= 1.2 * cat.gpu_hours_hi, (
                f"job {job.job_id} ({cat.label}) has {gpu_hours:.2f} GPU-h, "
                f"outside ({cat.gpu_hours_lo}, {cat.gpu_hours_hi}]"
            )

    def test_demand_distribution_shape(self):
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=2000, seed=0))
        workers = np.array([j.num_workers for j in trace])
        # Heavy single-GPU dominance, like the Philly analysis.
        assert np.mean(workers == 1) > 0.5
        assert set(np.unique(workers)) <= {1, 2, 4, 8, 16}

    def test_category_weights(self):
        trace = generate_philly_trace(
            PhillyTraceConfig(
                num_jobs=200,
                seed=0,
                category_weights={"S": 1.0, "M": 0.0, "L": 0.0, "XL": 0.0},
            )
        )
        assert all(j.model.size_category == "S" for j in trace)

    def test_zero_category_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            generate_philly_trace(
                PhillyTraceConfig(
                    num_jobs=5,
                    seed=0,
                    category_weights={"S": 0.0},
                )
            )

    def test_empty_trace(self):
        assert len(generate_philly_trace(PhillyTraceConfig(num_jobs=0))) == 0
