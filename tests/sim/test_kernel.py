"""Unit tests for the event kernel (layer 1 of the engine pipeline).

The kernel owns deterministic same-timestamp ordering and the
lazy-deletion validity rules for revocable events; these tests pin both
directly against :class:`~repro.sim.kernel.EventKernel`, independent of
the engine that drives it.
"""

import pytest

from repro.sim.events import EventKind
from repro.sim.kernel import EventKernel
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


def running(job_id: int = 0, *, rate: float = 1.0, iters_left: float = 100.0):
    job = make_job(job_id, "resnet18", workers=1)
    rt = JobRuntime(job=job)
    rt.state = JobState.RUNNING
    rt.rate = rate
    rt.iterations_done = job.total_iterations - iters_left
    return rt


class TestSameTimestampOrdering:
    def test_completion_before_arrival_before_round_boundary(self):
        """The tentpole ordering contract: at one instant, a finishing job
        frees its devices before the arriving job is seen, and both land
        before the scheduler runs at the round boundary."""
        kernel = EventKernel()
        rt = running(8, rate=10.0, iters_left=20.0)  # completes at t=2.0
        kernel.push_round_boundary(2.0)
        kernel.push_arrival(2.0, job_id=7)
        kernel.push_completion(rt, now=0.0)
        kinds = [kernel.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.COMPLETION,
            EventKind.ARRIVAL,
            EventKind.ROUND_BOUNDARY,
        ]

    def test_stragglers_order_after_round_boundary(self):
        kernel = EventKernel()
        rt = running(1)
        kernel.push_straggler_recovery(3.0, rt)
        kernel.push_straggler_onset(3.0, rt)
        kernel.push_round_boundary(3.0)
        kinds = [kernel.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.ROUND_BOUNDARY,
            EventKind.STRAGGLER_ONSET,
            EventKind.STRAGGLER_RECOVERY,
        ]

    def test_push_order_breaks_full_ties(self):
        """Same time, same kind: FIFO by push sequence (determinism)."""
        kernel = EventKernel()
        for job_id in (4, 5, 6):
            kernel.push_arrival(1.0, job_id=job_id)
        assert [kernel.pop().payload for _ in range(3)] == [4, 5, 6]

    def test_len_and_bool(self):
        kernel = EventKernel()
        assert not kernel and len(kernel) == 0
        kernel.push_arrival(0.0, job_id=1)
        assert kernel and len(kernel) == 1


class TestCompletionPredictions:
    def test_push_stamps_current_generation(self):
        kernel = EventKernel()
        rt = running(3)
        rt.generation = 5
        ev = kernel.push_completion(rt, now=0.0)
        assert ev is not None
        assert ev.kind is EventKind.COMPLETION
        assert ev.generation == 5
        assert ev.time == pytest.approx(100.0)

    def test_stalled_job_yields_no_prediction(self):
        kernel = EventKernel()
        rt = running(3, rate=0.0)
        assert kernel.push_completion(rt, now=0.0) is None
        assert len(kernel) == 0

    def test_pause_window_delays_prediction(self):
        kernel = EventKernel()
        rt = running(3, rate=1.0, iters_left=10.0)
        rt.resume_time = 50.0
        ev = kernel.push_completion(rt, now=0.0)
        assert ev is not None and ev.time == pytest.approx(60.0)


class TestStaleness:
    def test_stale_generation_completion_discarded(self):
        """A rate change after prediction bumps the generation; the popped
        event no longer matches and must be reported stale."""
        kernel = EventKernel()
        rt = running(2)
        runtimes = {2: rt}
        kernel.push_completion(rt, now=0.0)
        rt.generation += 1  # re-placement / pause changed the trajectory
        event = kernel.pop()
        assert kernel.is_stale(event, runtimes)

    def test_current_generation_completion_is_live(self):
        kernel = EventKernel()
        rt = running(2)
        runtimes = {2: rt}
        kernel.push_completion(rt, now=0.0)
        assert not kernel.is_stale(kernel.pop(), runtimes)

    def test_completed_job_completion_discarded(self):
        """Even at a matching generation, a COMPLETE job's leftover
        prediction is moot (completion was finalized by integration)."""
        kernel = EventKernel()
        rt = running(2)
        runtimes = {2: rt}
        kernel.push_completion(rt, now=0.0)
        rt.state = JobState.COMPLETE
        assert kernel.is_stale(kernel.pop(), runtimes)

    def test_straggler_events_validate_against_alloc_epoch(self):
        kernel = EventKernel()
        rt = running(2)
        rt.alloc_epoch = 3
        runtimes = {2: rt}
        kernel.push_straggler_onset(10.0, rt)
        kernel.push_straggler_recovery(20.0, rt)
        onset = kernel.pop()
        assert not kernel.is_stale(onset, runtimes)
        rt.alloc_epoch += 1  # the gang moved: old fault clock is moot
        assert kernel.is_stale(kernel.pop(), runtimes)

    def test_straggler_events_stale_for_non_running_jobs(self):
        kernel = EventKernel()
        rt = running(2)
        runtimes = {2: rt}
        kernel.push_straggler_onset(10.0, rt)
        rt.state = JobState.QUEUED  # preempted before the fault fired
        assert kernel.is_stale(kernel.pop(), runtimes)

    def test_arrivals_and_boundaries_never_stale(self):
        kernel = EventKernel()
        kernel.push_arrival(1.0, job_id=9)
        kernel.push_round_boundary(2.0)
        assert not kernel.is_stale(kernel.pop(), {})
        assert not kernel.is_stale(kernel.pop(), {})
