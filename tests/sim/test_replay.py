"""Unit tests for decision recording and replay."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.core import HadarScheduler
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.replay import (
    RecordingScheduler,
    ReplayScheduler,
    load_decisions,
    save_decisions,
)


class TestRecordReplay:
    def test_replay_is_decision_identical(self, no_comm_cluster, matrix, philly_trace_small):
        rec = RecordingScheduler(HadarScheduler())
        original = simulate(no_comm_cluster, philly_trace_small, rec, matrix=matrix)
        replay = simulate(
            no_comm_cluster, philly_trace_small,
            ReplayScheduler(rec.decisions), matrix=matrix,
        )
        assert replay.jcts() == original.jcts()
        assert replay.makespan() == original.makespan()

    def test_recording_preserves_contract(self):
        rec = RecordingScheduler(YarnCapacityScheduler())
        assert rec.round_based is False
        assert rec.reacts_to_events is True
        assert rec.name == "yarn-cs+recording"

    def test_event_driven_replay(self, no_comm_cluster, matrix, tiny_trace):
        rec = RecordingScheduler(YarnCapacityScheduler())
        original = simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix,
                            checkpoint=NoOverheadCheckpoint())
        replay = simulate(
            no_comm_cluster, tiny_trace,
            ReplayScheduler(rec.decisions, round_based=False, reacts_to_events=True),
            matrix=matrix, checkpoint=NoOverheadCheckpoint(),
        )
        assert replay.jcts() == original.jcts()

    def test_exhausted_replay_keeps_world(self, no_comm_cluster, matrix, tiny_trace):
        """Running out of recorded decisions freezes placements instead of
        crashing; the run is truncated but consistent."""
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        # Replay only the first decision; everything after keeps state.
        replay_sched = ReplayScheduler(rec.decisions[:1])
        result = simulate(no_comm_cluster, tiny_trace, replay_sched, matrix=matrix)
        assert replay_sched.exhausted
        assert len(result.completed) >= 1  # the initially placed jobs finish

    def test_reset_rewinds_cursor(self, no_comm_cluster, matrix, tiny_trace):
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        replayer = ReplayScheduler(rec.decisions)
        a = simulate(no_comm_cluster, tiny_trace, replayer, matrix=matrix)
        b = simulate(no_comm_cluster, tiny_trace, replayer, matrix=matrix)
        assert a.jcts() == b.jcts()

    def test_recording_reset_clears(self):
        rec = RecordingScheduler(HadarScheduler())
        rec.decisions.append({})
        rec.reset()
        assert rec.decisions == []


class TestPersistence:
    def test_save_load_roundtrip(self, no_comm_cluster, matrix, tiny_trace, tmp_path):
        rec = RecordingScheduler(HadarScheduler())
        original = simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        path = tmp_path / "decisions.jsonl"
        save_decisions(rec.decisions, path)
        loaded = load_decisions(path)
        assert loaded == rec.decisions
        replay = simulate(no_comm_cluster, tiny_trace, ReplayScheduler(loaded),
                          matrix=matrix)
        assert replay.jcts() == original.jcts()
