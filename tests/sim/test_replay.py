"""Unit tests for decision recording and replay."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.cluster.allocation import Allocation
from repro.core import HadarScheduler
from repro.faults import FaultModel
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.replay import (
    RecordingScheduler,
    ReplayDiverged,
    ReplayScheduler,
    load_decisions,
    save_decisions,
)


class TestRecordReplay:
    def test_replay_is_decision_identical(self, no_comm_cluster, matrix, philly_trace_small):
        rec = RecordingScheduler(HadarScheduler())
        original = simulate(no_comm_cluster, philly_trace_small, rec, matrix=matrix)
        replay = simulate(
            no_comm_cluster, philly_trace_small,
            ReplayScheduler(rec.decisions), matrix=matrix,
        )
        assert replay.jcts() == original.jcts()
        assert replay.makespan() == original.makespan()

    def test_recording_preserves_contract(self):
        rec = RecordingScheduler(YarnCapacityScheduler())
        assert rec.round_based is False
        assert rec.reacts_to_events is True
        assert rec.name == "yarn-cs+recording"

    def test_event_driven_replay(self, no_comm_cluster, matrix, tiny_trace):
        rec = RecordingScheduler(YarnCapacityScheduler())
        original = simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix,
                            checkpoint=NoOverheadCheckpoint())
        replay = simulate(
            no_comm_cluster, tiny_trace,
            ReplayScheduler(rec.decisions, round_based=False, reacts_to_events=True),
            matrix=matrix, checkpoint=NoOverheadCheckpoint(),
        )
        assert replay.jcts() == original.jcts()

    def test_exhausted_replay_keeps_world(self, no_comm_cluster, matrix, tiny_trace):
        """Running out of recorded decisions freezes placements instead of
        crashing; the run is truncated but consistent."""
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        # Replay only the first decision; everything after keeps state.
        replay_sched = ReplayScheduler(rec.decisions[:1])
        result = simulate(no_comm_cluster, tiny_trace, replay_sched, matrix=matrix)
        assert replay_sched.exhausted
        assert len(result.completed) >= 1  # the initially placed jobs finish

    def test_reset_rewinds_cursor(self, no_comm_cluster, matrix, tiny_trace):
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        replayer = ReplayScheduler(rec.decisions)
        a = simulate(no_comm_cluster, tiny_trace, replayer, matrix=matrix)
        b = simulate(no_comm_cluster, tiny_trace, replayer, matrix=matrix)
        assert a.jcts() == b.jcts()

    def test_recording_reset_clears(self):
        rec = RecordingScheduler(HadarScheduler())
        rec.decisions.append({})
        rec.reset()
        assert rec.decisions == []


class TestDivergence:
    """Replaying into a world the recording no longer matches."""

    def test_unknown_job_raises_typed_error(self, no_comm_cluster, matrix,
                                            tiny_trace):
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        doctored = [dict(d) for d in rec.decisions]
        doctored[0][99] = Allocation.single(0, "V100", 1)
        with pytest.raises(ReplayDiverged, match="job 99") as exc_info:
            simulate(no_comm_cluster, tiny_trace, ReplayScheduler(doctored),
                     matrix=matrix)
        assert exc_info.value.reason == "unknown_job"
        assert exc_info.value.job_id == 99
        assert exc_info.value.invocation == 0

    def test_unknown_slot_raises(self, no_comm_cluster, matrix, tiny_trace):
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        doctored = [dict(d) for d in rec.decisions]
        victim = next(iter(doctored[0]))
        doctored[0][victim] = Allocation.single(42, "V100", 1)
        with pytest.raises(ReplayDiverged) as exc_info:
            simulate(no_comm_cluster, tiny_trace, ReplayScheduler(doctored),
                     matrix=matrix)
        assert exc_info.value.reason == "unknown_slot"

    def test_non_strict_skips_and_reports(self, no_comm_cluster, matrix,
                                          tiny_trace):
        rec = RecordingScheduler(HadarScheduler())
        original = simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        doctored = [dict(d) for d in rec.decisions]
        doctored[0][99] = Allocation.single(0, "V100", 1)
        replayer = ReplayScheduler(doctored, strict=False)
        result = simulate(no_comm_cluster, tiny_trace, replayer, matrix=matrix)
        assert [d["reason"] for d in replayer.divergences] == ["unknown_job"]
        assert replayer.divergences[0]["job_id"] == 99
        # The surviving entries still replay: the run matches the original.
        assert result.jcts() == original.jcts()

    def test_capacity_divergence_under_faults(self, no_comm_cluster, matrix,
                                              philly_trace_small):
        """A fault-free recording replayed into a fault-injected world skips
        the gangs that no longer fit instead of corrupting state."""
        rec = RecordingScheduler(HadarScheduler())
        simulate(no_comm_cluster, philly_trace_small, rec, matrix=matrix)
        replayer = ReplayScheduler(rec.decisions, strict=False)
        result = simulate(
            no_comm_cluster, philly_trace_small, replayer, matrix=matrix,
            faults=FaultModel(node_mtbf_h=0.2, mttr_s=1800.0, seed=3),
        )
        assert replayer.divergences, "heavy faults must break some replayed gang"
        assert all(
            d["reason"] in ("unknown_job", "unknown_slot", "capacity")
            for d in replayer.divergences
        )
        assert result.end_time > 0

    def test_reset_clears_divergences(self):
        replayer = ReplayScheduler([], strict=False)
        replayer.divergences.append({"invocation": 0})
        replayer.reset()
        assert replayer.divergences == []


class TestPersistence:
    def test_save_load_roundtrip(self, no_comm_cluster, matrix, tiny_trace, tmp_path):
        rec = RecordingScheduler(HadarScheduler())
        original = simulate(no_comm_cluster, tiny_trace, rec, matrix=matrix)
        path = tmp_path / "decisions.jsonl"
        save_decisions(rec.decisions, path)
        loaded = load_decisions(path)
        assert loaded == rec.decisions
        replay = simulate(no_comm_cluster, tiny_trace, ReplayScheduler(loaded),
                          matrix=matrix)
        assert replay.jcts() == original.jcts()
