"""Regression tests for the straggler × checkpoint interplay.

Straggler events validate against the *allocation epoch* rather than the
completion generation: a `ModelAwareCheckpoint` bumps the generation on
every round's steady-state save, which must NOT cancel pending straggler
onsets — only actually moving the gang may.
"""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.core import HadarScheduler
from repro.sim.checkpoint import ModelAwareCheckpoint
from repro.sim.engine import simulate
from repro.sim.stragglers import StragglerModel
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestInterplay:
    def test_stragglers_fire_under_model_aware_checkpoints(
        self, no_comm_cluster, matrix
    ):
        """Steady-state checkpoint saves (generation bumps every round)
        must not starve the straggler machinery."""
        trace = Trace([make_job(0, "lstm", workers=2, epochs=60)])
        result = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=ModelAwareCheckpoint(),
            stragglers=StragglerModel(incidence_per_hour=8.0, seed=4),
        )
        assert result.all_completed
        assert result.runtimes[0].straggler_events >= 1

    def test_migration_clears_slowdown(self, no_comm_cluster, matrix):
        """After Hadar moves a straggling gang, the job runs at full rate
        (fresh workers): its realized JCT beats staying degraded."""
        trace = Trace([make_job(0, "resnet18", workers=2, epochs=150)])
        model = StragglerModel(
            incidence_per_hour=3.0, slowdown_factor=0.05,
            duration_s=10 * 3600.0, seed=6,
        )
        migrating = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=ModelAwareCheckpoint(), stragglers=model,
        )
        pinned = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=ModelAwareCheckpoint(), stragglers=model,
        )
        assert migrating.all_completed and pinned.all_completed
        if pinned.runtimes[0].straggler_events:
            assert migrating.jcts()[0] < pinned.jcts()[0]

    def test_work_conserved_under_both_models(self, no_comm_cluster, matrix):
        trace = Trace(
            [make_job(i, "resnet18", workers=2, epochs=30) for i in range(3)]
        )
        result = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=ModelAwareCheckpoint(),
            stragglers=StragglerModel(incidence_per_hour=6.0, seed=8),
        )
        assert result.all_completed
        for rt in result.runtimes.values():
            assert rt.iterations_done == pytest.approx(
                rt.job.total_iterations, rel=1e-6
            )
            assert 0.0 < rt.slowdown <= 1.0 or rt.finish_time is not None
