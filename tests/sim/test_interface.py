"""Unit tests for the scheduler-facing API (rate model, gang validation)."""

import pytest

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation
from repro.sim.interface import SchedulerContext, realized_rate, validate_gang
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


class TestRealizedRate:
    def test_empty_allocation_is_zero(self, small_cluster, matrix):
        assert realized_rate(make_job(), EMPTY_ALLOCATION, matrix, small_cluster) == 0.0

    def test_homogeneous_gang(self, no_comm_cluster, matrix):
        job = make_job(model="resnet18", workers=2)
        alloc = Allocation({(0, "V100"): 2})
        # 16 it/s per worker × 2 workers.
        assert realized_rate(job, alloc, matrix, no_comm_cluster) == pytest.approx(32.0)

    def test_bottleneck_rule(self, no_comm_cluster, matrix):
        """Constraint (1b): mixed gangs run at the slowest member's rate."""
        job = make_job(model="resnet18", workers=3)
        alloc = Allocation({(0, "V100"): 2, (0, "K80"): 1})
        # min(16, 2.9) × 3 workers.
        assert realized_rate(job, alloc, matrix, no_comm_cluster) == pytest.approx(8.7)

    def test_cross_server_penalty(self, small_cluster, matrix):
        job = make_job(model="resnet50", workers=4)
        packed = Allocation({(0, "V100"): 2, (0, "K80"): 2})
        spread = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        r_spread = realized_rate(job, spread, matrix, small_cluster)
        # Spread V100 gang: faster types but pays allreduce; still beats
        # the packed mixed gang bottlenecked at K80.
        r_packed = realized_rate(job, packed, matrix, small_cluster)
        assert 0 < r_spread < 4 * matrix.rate("resnet50", "V100")
        assert r_packed == pytest.approx(4 * matrix.rate("resnet50", "K80"))

    def test_unusable_type_raises(self, small_cluster):
        from repro.workload.throughput import ThroughputMatrix

        limited = ThroughputMatrix({"resnet18": {"V100": 16.0}})
        job = make_job(model="resnet18", workers=1)
        with pytest.raises(ValueError, match="cannot run"):
            realized_rate(job, Allocation({(0, "K80"): 1}), limited, small_cluster)


class TestGangValidation:
    def test_full_gang_ok(self):
        validate_gang(make_job(workers=3), Allocation({(0, "V100"): 3}))

    def test_empty_ok(self):
        validate_gang(make_job(workers=3), EMPTY_ALLOCATION)

    def test_partial_gang_rejected(self):
        with pytest.raises(ValueError, match="requires 0 or 3"):
            validate_gang(make_job(workers=3), Allocation({(0, "V100"): 2}))


class TestContext:
    def _rt(self, job_id, arrival, state):
        rt = JobRuntime(job=make_job(job_id, arrival=arrival))
        rt.state = state
        return rt

    def test_active_merges_and_sorts(self, small_cluster, matrix):
        waiting = (self._rt(2, 10.0, JobState.QUEUED),)
        running = (self._rt(1, 5.0, JobState.RUNNING),)
        ctx = SchedulerContext(
            now=20.0,
            cluster=small_cluster,
            matrix=matrix,
            round_length=360.0,
            waiting=waiting,
            running=running,
        )
        assert [rt.job_id for rt in ctx.active] == [1, 2]
        assert ctx.runtime(2).job_id == 2
        with pytest.raises(KeyError):
            ctx.runtime(99)

    def test_occupied_state_claims_running(self, small_cluster, matrix):
        rt = self._rt(0, 0.0, JobState.RUNNING)
        rt.allocation = Allocation({(0, "V100"): 2})
        ctx = SchedulerContext(
            now=0.0,
            cluster=small_cluster,
            matrix=matrix,
            round_length=360.0,
            waiting=(),
            running=(rt,),
        )
        assert ctx.occupied_state().free(0, "V100") == 0
        assert ctx.fresh_state().free(0, "V100") == 2
