"""Unit tests for the checkpoint overhead models."""

import pytest

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation
from repro.sim.checkpoint import (
    FixedDelayCheckpoint,
    ModelAwareCheckpoint,
    NoOverheadCheckpoint,
)

from tests.conftest import make_job

A = Allocation.single(0, "V100", 1)
B = Allocation.single(1, "V100", 1)


class TestNoOverhead:
    def test_always_zero(self):
        ck = NoOverheadCheckpoint()
        job = make_job()
        assert ck.reallocation_delay(job, A, B) == 0.0
        assert ck.steady_state_overhead(job) == 0.0


class TestFixedDelay:
    def test_paper_default_is_10s(self):
        assert FixedDelayCheckpoint().delay_s == 10.0

    def test_charged_only_on_change(self):
        ck = FixedDelayCheckpoint(10.0)
        job = make_job()
        assert ck.reallocation_delay(job, A, B) == 10.0
        assert ck.reallocation_delay(job, EMPTY_ALLOCATION, A) == 10.0
        assert ck.reallocation_delay(job, A, A) == 0.0
        assert ck.steady_state_overhead(job) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayCheckpoint(-1.0)


class TestModelAware:
    def test_fresh_start_skips_save(self):
        ck = ModelAwareCheckpoint()
        job = make_job(model="resnet50")
        fresh = ck.reallocation_delay(job, EMPTY_ALLOCATION, A)
        moved = ck.reallocation_delay(job, A, B)
        # A fresh start loads + warms up but has nothing to save.
        assert moved > fresh

    def test_same_allocation_pays_save_only(self):
        ck = ModelAwareCheckpoint()
        job = make_job(model="resnet50")
        assert ck.reallocation_delay(job, A, A) == pytest.approx(
            ck.steady_state_overhead(job)
        )

    def test_bigger_checkpoint_costs_more(self):
        ck = ModelAwareCheckpoint()
        lstm = make_job(model="lstm")  # largest checkpoint in the zoo
        gan = make_job(model="cyclegan")
        assert ck.steady_state_overhead(lstm) > ck.steady_state_overhead(gan)

    def test_table4_resnet50_row(self):
        """Table IV: ResNet-50 ≈ 2.1% with reallocation, 0.33% without."""
        ck = ModelAwareCheckpoint()
        job = make_job(model="resnet50")
        with_realloc = ck.reallocation_delay(job, A, B) / 360.0
        without = ck.steady_state_overhead(job) / 360.0
        assert with_realloc == pytest.approx(0.021, abs=0.002)
        assert without == pytest.approx(0.0033, abs=0.0005)

    def test_table4_ordering(self):
        """Table IV orders with-reallocation overheads: R50 > LSTM > R18 > T > GAN."""
        ck = ModelAwareCheckpoint()
        o = {
            name: ck.reallocation_delay(make_job(model=name), A, B)
            for name in ("resnet50", "resnet18", "lstm", "cyclegan", "transformer")
        }
        assert o["resnet50"] > o["lstm"] > o["resnet18"] > o["transformer"] > o["cyclegan"]

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            ModelAwareCheckpoint(write_mib_s=0.0)
