"""Engine hardening: boundary and coincidence scenarios.

Each test builds a situation where naive event handling goes wrong —
completions landing exactly on round boundaries, arrivals during pause
windows, simultaneous completions, sub-round jobs — and checks the exact
arithmetic the continuous-rate design promises.
"""

import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.topology import CommunicationModel
from repro.sim.checkpoint import FixedDelayCheckpoint, NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.interface import Scheduler
from repro.workload.throughput import ThroughputMatrix
from repro.workload.trace import Trace

from tests.conftest import make_job

L = 360.0


@pytest.fixture
def cluster():
    return Cluster(
        [Node(0, {"V100": 2}), Node(1, {"V100": 2})],
        comm=CommunicationModel.disabled(),
    )


@pytest.fixture
def matrix():
    return ThroughputMatrix({"resnet18": {"V100": 1.0}})


class Greedy(Scheduler):
    round_based = True
    reacts_to_events = False

    @property
    def name(self):
        return "greedy"

    def schedule(self, ctx):
        state = ctx.fresh_state()
        target = {}
        for rt in ctx.active:
            picks, need = [], rt.job.num_workers
            for (node, t), free in state.free_slots():
                take = min(free, need)
                picks.append((node, t, take))
                need -= take
                if need == 0:
                    break
            if need == 0:
                alloc = Allocation.from_pairs(picks)
                state.allocate(alloc)
                target[rt.job_id] = alloc
        return target


class TestBoundaryCoincidences:
    def test_completion_exactly_on_round_boundary(self, cluster, matrix):
        """A job finishing exactly at t=L frees its devices for the job
        scheduled at that same boundary."""
        jobs = [
            make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
            make_job(1, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
        ]
        result = simulate(cluster, Trace(jobs), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].finish_time == pytest.approx(L)
        assert result.runtimes[1].first_start_time == pytest.approx(L)
        assert result.runtimes[1].finish_time == pytest.approx(2 * L)

    def test_arrival_exactly_on_round_boundary(self, cluster, matrix):
        """A job arriving exactly at a boundary is schedulable in that
        round (arrivals order before boundaries at equal time)."""
        job = make_job(0, "resnet18", arrival=L, workers=1, epochs=1,
                       iters_per_epoch=360)
        result = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].first_start_time == pytest.approx(L)

    def test_simultaneous_completions(self, cluster, matrix):
        """Two identical jobs finish at the same instant; both finalize."""
        jobs = [
            make_job(i, "resnet18", workers=2, epochs=1, iters_per_epoch=720)
            for i in range(2)
        ]
        result = simulate(cluster, Trace(jobs), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].finish_time == pytest.approx(360.0)
        assert result.runtimes[1].finish_time == pytest.approx(360.0)

    def test_sub_round_job(self, cluster, matrix):
        """A job much shorter than a round finishes mid-round at the exact
        fractional time."""
        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=10)
        result = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].finish_time == pytest.approx(10.0)

    def test_many_jobs_one_round(self, cluster, matrix):
        """Four 1-GPU jobs share the 4-GPU cluster in a single round."""
        jobs = [
            make_job(i, "resnet18", workers=1, epochs=1, iters_per_epoch=100 + i)
            for i in range(4)
        ]
        result = simulate(cluster, Trace(jobs), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        for i in range(4):
            assert result.runtimes[i].finish_time == pytest.approx(100.0 + i)


class TestPauseWindows:
    def test_completion_prediction_during_pause(self, cluster, matrix):
        """With a checkpoint pause longer than the remaining work's time,
        the completion still lands after the pause ends."""
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=40)
        result = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=FixedDelayCheckpoint(30.0))
        # 30 s pause + 40 iters / (1 × 4 workers) = 40 s.
        assert result.runtimes[0].finish_time == pytest.approx(40.0)

    def test_no_progress_during_pause(self, cluster, matrix):
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440)
        paused = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=FixedDelayCheckpoint(60.0))
        free = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                        round_length=L, checkpoint=NoOverheadCheckpoint())
        assert paused.runtimes[0].finish_time == pytest.approx(
            free.runtimes[0].finish_time + 60.0
        )


class TestDegenerateWorkloads:
    def test_empty_trace(self, cluster, matrix):
        result = simulate(cluster, Trace([]), Greedy(), matrix=matrix)
        assert result.all_completed
        assert result.makespan() == 0.0
        assert result.scheduling_invocations == 0

    def test_single_iteration_job(self, cluster, matrix):
        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=1)
        result = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        assert result.runtimes[0].finish_time == pytest.approx(1.0)

    def test_whole_cluster_job(self, cluster, matrix):
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440)
        result = simulate(cluster, Trace([job]), Greedy(), matrix=matrix,
                          checkpoint=NoOverheadCheckpoint())
        assert result.gpu_utilization() == pytest.approx(1.0)

    def test_far_staggered_arrivals(self, cluster, matrix):
        """Jobs separated by days of idle time all run correctly."""
        jobs = [
            make_job(i, "resnet18", arrival=i * 86400.0, workers=1, epochs=1,
                     iters_per_epoch=360)
            for i in range(3)
        ]
        result = simulate(cluster, Trace(jobs), Greedy(), matrix=matrix,
                          round_length=L, checkpoint=NoOverheadCheckpoint())
        for i in range(3):
            start = result.runtimes[i].first_start_time
            assert start == pytest.approx(i * 86400.0, abs=L)


class TestRepeatedRuns:
    def test_engine_instance_reusable(self, cluster, matrix, tiny_trace):
        """Calling run() twice on one engine yields identical results."""
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            cluster=cluster, trace=Trace([make_job(0, "resnet18", epochs=1)]),
            scheduler=Greedy(), matrix=matrix,
        )
        a = engine.run()
        b = engine.run()
        assert a.jcts() == b.jcts()
