"""Engine snapshot/restore: round-trip properties, codec rejection,
lifecycle API, and streaming submission sources.

The headline property — interrupted-and-restored runs are byte-identical
to uninterrupted ones across schedulers/seeds with every observer
attached — lives in ``tests/core/test_chaos_snapshot.py`` next to the
golden fingerprints.  This file covers the mechanisms underneath:
component state dicts round-tripping exactly (heap order, RNG
continuations, calibrator records, cluster key), the codec rejecting
bad envelopes before any state is touched, and the lifecycle guards.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sanitizer import InvariantSanitizer
from repro.cluster.cluster import simulated_cluster
from repro.core import HadarScheduler
from repro.faults import FaultModel
from repro.obs import MetricsRegistry
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotCodec,
    SnapshotError,
    capture_engine_state,
)
from repro.workload.arrivals import SubmissionSource
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.trace import Trace


def make_trace(seed: int = 1, num_jobs: int = 10) -> Trace:
    return generate_philly_trace(
        PhillyTraceConfig(
            num_jobs=num_jobs,
            seed=seed,
            arrival_pattern="continuous",
            jobs_per_hour=50.0,
        )
    )


def make_engine(seed: int = 1, **kwargs) -> SimulationEngine:
    defaults = dict(
        cluster=simulated_cluster(),
        trace=make_trace(seed),
        scheduler=HadarScheduler(),
        round_length=300.0,
        max_time=60 * 24 * 3600.0,
    )
    defaults.update(kwargs)
    return SimulationEngine(**defaults)


def loaded_engine(seed: int = 1, steps: int = 150, **kwargs):
    """An engine advanced ``steps`` events into a run."""
    engine = make_engine(seed, **kwargs)
    engine.start()
    for _ in range(steps):
        if not engine.step():
            break
    return engine


class TestLifecycle:
    def test_run_is_start_step_stop(self):
        batch = make_engine().run()
        engine = make_engine()
        engine.start()
        while engine.step():
            pass
        stepped = engine.stop()
        assert [rt.finish_time for rt in batch.runtimes.values()] == [
            rt.finish_time for rt in stepped.runtimes.values()
        ]
        assert batch.end_time == stepped.end_time

    def test_start_twice_raises(self):
        engine = make_engine()
        engine.start()
        with pytest.raises(RuntimeError, match="running"):
            engine.start()

    def test_step_before_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            make_engine().step()

    def test_pause_makes_step_a_noop(self):
        engine = make_engine()
        engine.start()
        engine.step()
        before = engine.tick_count
        engine.pause()
        assert engine.is_paused
        assert engine.step() is True  # work remains, nothing processed
        assert engine.tick_count == before
        engine.resume()
        assert engine.step() is True
        assert engine.tick_count == before + 1

    def test_stop_is_idempotent(self):
        engine = make_engine()
        engine.start()
        while engine.step():
            pass
        first = engine.stop()
        assert engine.stop() is first

    def test_snapshot_requires_running(self):
        engine = make_engine()
        with pytest.raises(RuntimeError, match="snapshot"):
            engine.snapshot()

    def test_restore_requires_fresh_engine(self):
        engine = loaded_engine()
        state = engine.snapshot()
        started = make_engine()
        started.start()
        with pytest.raises(RuntimeError, match="freshly constructed"):
            started.restore(state)


class TestRoundTrip:
    """restore(loads(dumps(snapshot()))) reproduces every component."""

    def test_full_state_reproduced_bitwise(self):
        engine = loaded_engine()
        blob = SnapshotCodec().dumps(engine.snapshot())
        restored = make_engine()
        restored.restore(SnapshotCodec().loads(blob))
        again = capture_engine_state(restored)
        assert SnapshotCodec().dumps(again) == blob

    def test_full_state_reproduced_with_all_attachments(self):
        kwargs = dict(
            faults=FaultModel(node_mtbf_h=0.5, mttr_s=1800.0, seed=3),
            sanitizer=InvariantSanitizer(mode="collect"),
            metrics=MetricsRegistry(),
        )
        engine = loaded_engine(steps=300, **kwargs)
        blob = SnapshotCodec().dumps(engine.snapshot())
        restored = make_engine(
            faults=FaultModel(node_mtbf_h=0.5, mttr_s=1800.0, seed=3),
            sanitizer=InvariantSanitizer(mode="collect"),
            metrics=MetricsRegistry(),
        )
        restored.restore(SnapshotCodec().loads(blob))
        assert SnapshotCodec().dumps(capture_engine_state(restored)) == blob

    def test_kernel_heap_pops_replay_in_order(self):
        engine = loaded_engine()
        state = SnapshotCodec().loads(SnapshotCodec().dumps(engine.snapshot()))
        restored = make_engine()
        restored.restore(state)
        # Pop both kernels dry and compare the exact sequences.
        mine, theirs = [], []
        while engine._kernel:
            e = engine._kernel.pop()
            mine.append((e.time, int(e.kind), e.seq, e.payload, e.generation))
        while restored._kernel:
            e = restored._kernel.pop()
            theirs.append((e.time, int(e.kind), e.seq, e.payload, e.generation))
        assert mine == theirs
        assert len(mine) > 0

    def test_cluster_state_key_identical(self):
        engine = loaded_engine()
        restored = make_engine()
        restored.restore(engine.snapshot())
        assert restored._state.key() == engine._state.key()

    def test_scheduler_calibrator_records_identical(self):
        engine = loaded_engine(steps=400)
        restored = make_engine()
        restored.restore(engine.snapshot())
        assert restored.scheduler.state_dict() == engine.scheduler.state_dict()

    def test_rng_continuations_identical(self):
        from repro.sim.stragglers import StragglerModel

        kwargs = dict(stragglers=StragglerModel(incidence_per_hour=0.2, seed=9))
        engine = loaded_engine(steps=200, **kwargs)
        restored = make_engine(
            stragglers=StragglerModel(incidence_per_hour=0.2, seed=9)
        )
        restored.restore(engine.snapshot())
        assert (
            restored._straggler_rng.bit_generator.state
            == engine._straggler_rng.bit_generator.state
        )
        # And the streams actually continue identically.
        assert [restored._straggler_rng.random() for _ in range(8)] == [
            engine._straggler_rng.random() for _ in range(8)
        ]

    def test_restored_run_matches_uninterrupted(self):
        reference = make_engine().run()
        engine = loaded_engine()
        restored = make_engine()
        restored.restore(engine.snapshot())
        result = restored.run()
        assert [
            (rt.job_id, rt.finish_time, rt.iterations_done, rt.preemptions)
            for rt in reference.runtimes.values()
        ] == [
            (rt.job_id, rt.finish_time, rt.iterations_done, rt.preemptions)
            for rt in result.runtimes.values()
        ]
        assert reference.end_time == result.end_time


class TestCodecRejection:
    def blob(self):
        return SnapshotCodec().dumps(loaded_engine().snapshot())

    def test_version_mismatch_rejected(self):
        envelope = json.loads(self.blob())
        envelope["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            SnapshotCodec().loads(json.dumps(envelope))

    def test_truncated_snapshot_rejected(self):
        blob = self.blob()
        with pytest.raises(SnapshotError, match="truncated|corrupt"):
            SnapshotCodec().loads(blob[: len(blob) // 2])

    def test_corrupted_state_rejected_by_checksum(self):
        envelope = json.loads(self.blob())
        envelope["state"]["lifecycle"]["completed"] += 1
        with pytest.raises(SnapshotError, match="checksum"):
            SnapshotCodec().loads(json.dumps(envelope))

    def test_wrong_format_rejected(self):
        with pytest.raises(SnapshotError, match="not a repro engine snapshot"):
            SnapshotCodec().loads(json.dumps({"format": "something-else"}))

    def test_missing_field_rejected(self):
        envelope = json.loads(self.blob())
        del envelope["state"]["events"]
        body = json.dumps(
            envelope["state"], sort_keys=True, separators=(",", ":")
        )
        import hashlib

        envelope["checksum"] = hashlib.sha256(body.encode()).hexdigest()
        with pytest.raises(SnapshotError, match="missing field"):
            SnapshotCodec().loads(json.dumps(envelope))

    def test_config_mismatch_rejected(self):
        from repro.baselines import GavelScheduler

        state = loaded_engine().snapshot()
        other = make_engine(scheduler=GavelScheduler())
        with pytest.raises(SnapshotError, match="differently configured"):
            other.restore(state)

    def test_save_load_file_round_trip(self, tmp_path):
        codec = SnapshotCodec()
        state = loaded_engine().snapshot()
        path = codec.save(state, tmp_path / "a.snapshot.json")
        assert codec.dumps(codec.load(path)) == codec.dumps(state)
        assert SnapshotCodec.latest(tmp_path) == path


class TestSnapshotChain:
    """The durable snapshot chain: atomic writes, retention, and the
    restore walk past corrupt members."""

    def chain_of(self, tmp_path, count: int = 3) -> list:
        codec = SnapshotCodec()
        engine = make_engine()
        engine.start()
        paths = []
        for i in range(count):
            for _ in range(40):
                if not engine.step():
                    break
            paths.append(
                codec.save(engine.snapshot(), tmp_path / f"{i:06d}.snapshot.json")
            )
        engine.stop()
        return paths

    def test_save_leaves_no_temp_files(self, tmp_path):
        self.chain_of(tmp_path, count=2)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_chain_is_newest_first(self, tmp_path):
        paths = self.chain_of(tmp_path, count=3)
        assert SnapshotCodec.chain(tmp_path) == list(reversed(paths))
        assert SnapshotCodec.chain(tmp_path / "missing") == []

    def test_prune_keeps_last_k(self, tmp_path):
        paths = self.chain_of(tmp_path, count=4)
        removed = SnapshotCodec.prune(tmp_path, keep=2)
        assert removed == list(reversed(paths))[2:]
        assert SnapshotCodec.chain(tmp_path) == list(reversed(paths))[:2]

    def test_prune_zero_keeps_everything(self, tmp_path):
        paths = self.chain_of(tmp_path, count=3)
        assert SnapshotCodec.prune(tmp_path, keep=0) == []
        assert len(SnapshotCodec.chain(tmp_path)) == len(paths)

    def test_restore_walks_past_corrupt_newest(self, tmp_path):
        """A half-written newest member (the kill-mid-write case) must
        not strand the chain: the next-newest restores cleanly."""
        paths = self.chain_of(tmp_path, count=3)
        newest = paths[-1]
        newest.write_text(newest.read_text()[: 100], encoding="utf-8")
        codec = SnapshotCodec()
        restored = None
        skipped = 0
        for candidate in SnapshotCodec.chain(tmp_path):
            try:
                restored = codec.load(candidate)
                break
            except SnapshotError:
                skipped += 1
        assert skipped == 1 and restored is not None
        engine = make_engine()
        engine.restore(restored)
        assert engine.run().completed  # resumes and finishes the workload


class TestSubmissionSource:
    def drain(self, source):
        jobs = []
        while True:
            job = source.next_job()
            if job is None:
                break
            jobs.append(job)
        return jobs

    def spec(self, job):
        return (
            job.job_id,
            job.arrival_time,
            job.model.name,
            job.num_workers,
            job.epochs,
        )

    def test_same_seed_same_stream(self):
        a = self.drain(SubmissionSource(40.0, seed=7, max_jobs=20))
        b = self.drain(SubmissionSource(40.0, seed=7, max_jobs=20))
        assert [self.spec(j) for j in a] == [self.spec(j) for j in b]

    def test_different_seed_different_stream(self):
        a = self.drain(SubmissionSource(40.0, seed=7, max_jobs=20))
        b = self.drain(SubmissionSource(40.0, seed=8, max_jobs=20))
        assert [self.spec(j) for j in a] != [self.spec(j) for j in b]

    def test_arrivals_strictly_increase(self):
        jobs = self.drain(SubmissionSource(40.0, seed=1, max_jobs=50))
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times) and len(set(times)) == len(times)

    def test_resume_continues_exact_stream(self):
        full = SubmissionSource(40.0, seed=3, max_jobs=30)
        first = [full.next_job() for _ in range(15)]
        state = full.state_dict()
        rest = [full.next_job() for _ in range(15)]

        resumed = SubmissionSource(40.0, seed=3, max_jobs=30)
        resumed.load_state_dict(state)
        continued = [resumed.next_job() for _ in range(15)]
        assert [self.spec(j) for j in continued] == [self.spec(j) for j in rest]
        assert resumed.exhausted
        assert first[-1].job_id + 1 == continued[0].job_id

    def test_engine_completes_streamed_jobs(self):
        source = SubmissionSource(60.0, seed=2, max_jobs=6, first_job_id=100)
        result = simulate(
            simulated_cluster(),
            make_trace(1, num_jobs=4),
            HadarScheduler(),
            round_length=300.0,
            max_time=60 * 24 * 3600.0,
            source=source,
        )
        assert len(result.runtimes) == 10
        assert {100, 101, 102, 103, 104, 105} <= set(result.runtimes)
        assert not result.truncated
        assert all(rt.finish_time is not None for rt in result.runtimes.values())

    def test_streamed_only_run_without_trace(self):
        source = SubmissionSource(60.0, seed=5, max_jobs=5)
        result = simulate(
            simulated_cluster(),
            Trace(jobs=()),
            HadarScheduler(),
            round_length=300.0,
            max_time=60 * 24 * 3600.0,
            source=source,
        )
        assert len(result.completed) == 5

    def test_id_collision_with_trace_rejected(self):
        source = SubmissionSource(60.0, seed=2, max_jobs=1, first_job_id=0)
        engine = make_engine(source=source)
        with pytest.raises(ValueError, match="collides"):
            engine.start()

    def test_snapshot_mid_stream_restores_pending_submission(self):
        source = SubmissionSource(60.0, seed=2, max_jobs=8, first_job_id=100)
        engine = make_engine(source=source)
        engine.start()
        for _ in range(40):
            engine.step()
        assert engine._pending_submission is not None or source.exhausted
        blob = SnapshotCodec().dumps(engine.snapshot())
        restored = make_engine(
            source=SubmissionSource(60.0, seed=2, max_jobs=8, first_job_id=100)
        )
        restored.restore(SnapshotCodec().loads(blob))
        assert SnapshotCodec().dumps(capture_engine_state(restored)) == blob
        reference = make_engine(
            source=SubmissionSource(60.0, seed=2, max_jobs=8, first_job_id=100)
        ).run()
        result = restored.run()
        assert [rt.finish_time for rt in reference.runtimes.values()] == [
            rt.finish_time for rt in result.runtimes.values()
        ]
