"""Unit tests for the utilization recorder."""

import pytest

from repro.sim.telemetry import UtilizationRecorder


class TestRecording:
    def test_compacts_unchanged_levels(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 2})
        rec.record(5.0, {"V100": 2})
        assert len(rec.times) == 1

    def test_same_instant_overwrites(self):
        rec = UtilizationRecorder()
        rec.record(1.0, {"V100": 2})
        rec.record(1.0, {"V100": 4})
        assert rec.used_total == [4]

    def test_backwards_time_rejected(self):
        rec = UtilizationRecorder()
        rec.record(5.0, {"V100": 1})
        with pytest.raises(ValueError, match="backwards"):
            rec.record(4.0, {"V100": 1})


class TestIntegrals:
    def make(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 4})  # [0, 10): 4 busy
        rec.record(10.0, {"V100": 2})  # [10, 20): 2 busy
        rec.record(20.0, {})  # [20, ∞): idle
        return rec

    def test_busy_gpu_seconds(self):
        rec = self.make()
        assert rec.busy_gpu_seconds(0.0, 20.0) == pytest.approx(60.0)
        assert rec.busy_gpu_seconds(0.0, 30.0) == pytest.approx(60.0)
        assert rec.busy_gpu_seconds(5.0, 15.0) == pytest.approx(30.0)

    def test_average_utilization(self):
        rec = self.make()
        # 60 GPU-s over 20 s on a 4-GPU cluster → 75%.
        assert rec.average_utilization(4, 0.0, 20.0) == pytest.approx(0.75)

    def test_by_type(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 2, "K80": 1})
        rec.record(10.0, {"V100": 1})
        busy = rec.busy_gpu_seconds_by_type(0.0, 20.0)
        assert busy["V100"] == pytest.approx(30.0)
        assert busy["K80"] == pytest.approx(10.0)
        util = rec.utilization_by_type({"V100": 2, "K80": 2}, 0.0, 20.0)
        assert util["V100"] == pytest.approx(0.75)
        assert util["K80"] == pytest.approx(0.25)

    def test_by_type_partial_window(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 2, "K80": 1})
        rec.record(10.0, {"V100": 1})
        busy = rec.busy_gpu_seconds_by_type(5.0, 15.0)
        assert busy["V100"] == pytest.approx(2 * 5.0 + 1 * 5.0)
        assert busy["K80"] == pytest.approx(1 * 5.0)

    def test_by_type_same_instant_overwrite(self):
        # The last write at a timestamp wins; the integral must use the
        # overwriting snapshot, not the superseded one.
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 4})
        rec.record(0.0, {"V100": 1, "K80": 2})
        busy = rec.busy_gpu_seconds_by_type(0.0, 10.0)
        assert busy["V100"] == pytest.approx(10.0)
        assert busy["K80"] == pytest.approx(20.0)
        assert rec.busy_gpu_seconds(0.0, 10.0) == pytest.approx(30.0)

    def test_by_type_matches_total(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 3, "K80": 2})
        rec.record(7.0, {"V100": 1, "P100": 4})
        rec.record(13.0, {})
        for lo, hi in [(0.0, 20.0), (3.0, 9.0), (7.0, 7.0), (15.0, 19.0)]:
            by_type = rec.busy_gpu_seconds_by_type(lo, hi)
            assert sum(by_type.values()) == pytest.approx(
                rec.busy_gpu_seconds(lo, hi)
            )

    def test_by_type_window_before_first_record(self):
        rec = UtilizationRecorder()
        rec.record(10.0, {"V100": 2})
        assert rec.busy_gpu_seconds_by_type(0.0, 5.0) == {}

    def test_empty_recorder(self):
        rec = UtilizationRecorder()
        assert rec.busy_gpu_seconds(0.0, 10.0) == 0.0
        assert rec.average_utilization(4, 0.0, 10.0) == 0.0
        assert rec.busy_gpu_seconds_by_type(0.0, 10.0) == {}
        assert rec.busy_gpu_seconds_by_type(5.0, 5.0) == {}

    def test_validation(self):
        rec = self.make()
        with pytest.raises(ValueError):
            rec.busy_gpu_seconds(10.0, 0.0)
        with pytest.raises(ValueError):
            rec.average_utilization(0, 0.0, 10.0)


class TestQueueSeries:
    def test_contended_windows(self):
        rec = UtilizationRecorder()
        rec.record_queue(0.0, 3)
        rec.record_queue(10.0, 0)
        rec.record_queue(25.0, 2)
        rec.record_queue(30.0, 0)
        assert rec.contended_windows(40.0) == [(0.0, 10.0), (25.0, 30.0)]

    def test_contended_windows_clipped_to_end(self):
        rec = UtilizationRecorder()
        rec.record_queue(0.0, 1)
        rec.record_queue(10.0, 0)
        rec.record_queue(25.0, 2)
        # `end` falls inside the second contended window: it is clipped,
        # not dropped and not extended past the horizon.
        assert rec.contended_windows(27.0) == [(0.0, 10.0), (25.0, 27.0)]
        # `end` before the window opens: the window vanishes entirely.
        assert rec.contended_windows(20.0) == [(0.0, 10.0)]
        # `end` exactly at a window edge produces no zero-width window.
        assert rec.contended_windows(25.0) == [(0.0, 10.0)]

    def test_contended_utilization(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 4})
        rec.record(10.0, {"V100": 1})
        rec.record_queue(0.0, 5)
        rec.record_queue(10.0, 0)
        # Only [0, 10) is contended; it ran 4/4 GPUs.
        assert rec.contended_utilization(4, 50.0) == pytest.approx(1.0)

    def test_no_contention_returns_zero(self):
        rec = UtilizationRecorder()
        rec.record(0.0, {"V100": 4})
        rec.record_queue(0.0, 0)
        assert rec.contended_utilization(4, 10.0) == 0.0

    def test_queue_depth_validation(self):
        rec = UtilizationRecorder()
        with pytest.raises(ValueError):
            rec.record_queue(0.0, -1)
