"""The fault-injection subsystem: schedule generation, the fault phase,
the reject-and-repair validator, the decision deadline, and the
faults-disabled golden-parity guarantee."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation
from repro.cluster.cluster import Cluster, simulated_cluster
from repro.cluster.node import Node
from repro.cluster.state import ClusterState
from repro.analysis.sanitizer import InvariantSanitizer
from repro.core import HadarScheduler
from repro.core.dp import DPConfig
from repro.core.scheduler import HadarConfig
from repro.faults import (
    DEGRADE,
    DEGRADE_END,
    FAIL,
    PARTITION,
    PARTITION_HEAL,
    RECOVER,
    STORAGE,
    DecisionRejected,
    DecisionValidator,
    FaultEvent,
    FaultModel,
    FaultPhase,
    FaultSchedule,
)
from repro.sim.engine import simulate
from repro.sim.interface import SchedulerProtocolError
from repro.sim.progress import JobRuntime, JobState, ProgressLedger
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

from tests.conftest import make_job
from tests.core._hotpath_fingerprint import (
    SCHEDULER_NAMES,
    SEEDS,
    digest,
    fingerprint,
    run_scenario,
)

GOLDEN = json.loads(
    (Path(__file__).resolve().parents[1] / "core" / "golden_hotpath.json").read_text()
)


def two_node_cluster() -> Cluster:
    return Cluster([Node(0, {"V100": 4, "K80": 2}), Node(1, {"V100": 2})])


def running(job_id: int, alloc: Allocation, *, done: float = 500.0,
            checkpoint: float = 300.0, rate: float = 10.0) -> JobRuntime:
    rt = JobRuntime(job=make_job(job_id, epochs=1, iters_per_epoch=1000))
    rt.state = JobState.RUNNING
    rt.allocation = alloc
    rt.iterations_done = done
    rt.checkpoint_iterations = checkpoint
    rt.rate = rate
    return rt


# -- the model: seeded, order-independent schedule generation -----------------


class TestFaultModel:
    def test_same_seed_same_schedule(self):
        model = FaultModel(node_mtbf_h=8.0, gpu_mtbf_h=100.0, mttr_s=300.0, seed=7)
        cluster = simulated_cluster()
        assert model.build_schedule(cluster) == model.build_schedule(cluster)

    def test_different_seed_different_schedule(self):
        cluster = simulated_cluster()
        a = FaultModel(node_mtbf_h=8.0, seed=7).build_schedule(cluster)
        b = FaultModel(node_mtbf_h=8.0, seed=8).build_schedule(cluster)
        assert a != b

    def test_all_rates_zero_empty_schedule(self):
        model = FaultModel()
        assert not model.enabled
        assert len(model.build_schedule(simulated_cluster())) == 0

    def test_events_sorted_fail_before_recover(self):
        model = FaultModel(node_mtbf_h=4.0, gpu_mtbf_h=50.0, mttr_s=600.0, seed=3)
        events = model.build_schedule(simulated_cluster()).events
        keys = [
            (ev.time, 0 if ev.kind == FAIL else 1, ev.node_id, ev.fault_id)
            for ev in events
        ]
        assert keys == sorted(keys)

    def test_recovery_pairs_with_its_failure(self):
        schedule = FaultModel(
            gpu_mtbf_h=30.0, mttr_s=600.0, seed=5
        ).build_schedule(simulated_cluster())
        failures = {ev.fault_id: ev for ev in schedule.failures}
        for rec in schedule.recoveries:
            fail = failures[rec.fault_id]
            assert rec.time > fail.time
            assert (rec.node_id, rec.gpu_type) == (fail.node_id, fail.gpu_type)
            assert not fail.permanent

    def test_max_time_caps_horizon(self):
        model = FaultModel(node_mtbf_h=2.0, seed=1)
        capped = model.build_schedule(simulated_cluster(), max_time=24 * 3600.0)
        assert all(ev.time < 24 * 3600.0 for ev in capped)


class TestFromSpec:
    def test_full_spec(self):
        model = FaultModel.from_spec(
            "node_mtbf_h=24, gpu_mtbf_h=100, mttr_min=10, permanent=0.05, seed=7"
        )
        assert model == FaultModel(
            node_mtbf_h=24.0, gpu_mtbf_h=100.0, mttr_s=600.0,
            permanent_fraction=0.05, seed=7,
        )

    def test_horizon_hours(self):
        assert FaultModel.from_spec("gpu_mtbf_h=10,horizon_h=2").horizon_s == 7200.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultModel.from_spec("mtbf=3")

    def test_not_key_value_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            FaultModel.from_spec("node_mtbf_h")

    def test_model_validation_applies(self):
        with pytest.raises(ValueError, match="mttr_s must be positive"):
            FaultModel.from_spec("node_mtbf_h=8,mttr_s=0")
        with pytest.raises(ValueError, match="non-negative"):
            FaultModel(node_mtbf_h=-1.0)
        with pytest.raises(ValueError, match="permanent_fraction"):
            FaultModel(permanent_fraction=1.5)

    def test_domain_and_degrade_keys(self):
        model = FaultModel.from_spec(
            "partition_mtbf_h=6,partition_duration_min=20,failure_domains=3,"
            "partition_policy=preempt,degraded_mtbf_h=12,degraded_factor=0.4,"
            "healing_window_s=600,healing_factor=0.8,"
            "storage_mtbf_h=48,storage_tiers=2,seed=3"
        )
        assert model == FaultModel(
            partition_mtbf_h=6.0, partition_duration_s=1200.0,
            failure_domains=3, partition_policy="preempt",
            degraded_mtbf_h=12.0, degraded_factor=0.4,
            healing_window_s=600.0, healing_factor=0.8,
            storage_mtbf_h=48.0, storage_tiers=2, seed=3,
        )

    def test_partitions_need_domains(self):
        with pytest.raises(ValueError, match="failure_domains >= 2"):
            FaultModel.from_spec("partition_mtbf_h=6")
        with pytest.raises(ValueError, match="partition_policy"):
            FaultModel(partition_policy="panic")
        with pytest.raises(ValueError, match="degraded_factor"):
            FaultModel(degraded_factor=1.5)


# -- the phase: capacity, preemption, rollback, recovery ----------------------


def make_phase(cluster: Cluster, events: tuple[FaultEvent, ...],
               **kwargs) -> FaultPhase:
    phase = FaultPhase(FaultModel(), cluster, **kwargs)
    phase.schedule = FaultSchedule(events=events)
    return phase


class TestFaultPhase:
    def test_node_failure_takes_every_slot_on_the_node(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type=None, kind=FAIL, fault_id=0),
        ))
        phase.apply(0, ProgressLedger({}), state, 10.0)
        assert state.capacity(0, "V100") == 0
        assert state.capacity(0, "K80") == 0
        assert state.capacity(1, "V100") == 2  # other node untouched
        assert phase.failed == {(0, "V100"): 4, (0, "K80"): 2}
        assert phase.capacity_lost == 6
        assert phase.stats["node_faults"] == 1

    def test_gangs_on_failed_devices_roll_back_to_checkpoint(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        victim = running(1, Allocation.single(0, "V100", 2))
        bystander = running(2, Allocation.single(1, "V100", 2))
        state.allocate(victim.allocation)
        state.allocate(bystander.allocation)
        ledger = ProgressLedger({1: victim, 2: bystander})
        phase = make_phase(cluster, (
            FaultEvent(time=50.0, node_id=0, gpu_type=None, kind=FAIL, fault_id=0),
        ))
        preempted = phase.apply(0, ledger, state, 50.0)
        assert preempted
        assert victim.state is JobState.QUEUED
        assert victim.allocation is EMPTY_ALLOCATION
        assert victim.iterations_done == victim.checkpoint_iterations == 300.0
        assert victim.rollbacks == 1 and victim.failures == 1
        assert victim.rollback_iterations == pytest.approx(200.0)
        assert victim.rollback_seconds == pytest.approx(20.0)  # 200 iters @ 10/s
        assert bystander.state is JobState.RUNNING  # not touched
        assert phase.rollback_seconds == pytest.approx(20.0)
        assert phase.stats["rollbacks"] == 1

    def test_rollback_bumps_both_staleness_counters(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        victim = running(1, Allocation.single(0, "K80", 1))
        state.allocate(victim.allocation)
        gen, epoch = victim.generation, victim.alloc_epoch
        phase = make_phase(cluster, (
            FaultEvent(time=5.0, node_id=0, gpu_type="K80", kind=FAIL,
                       fault_id=0, count=2),
        ))
        phase.apply(0, ProgressLedger({1: victim}), state, 5.0)
        assert victim.generation == gen + 1
        assert victim.alloc_epoch == epoch + 1

    def test_overlapping_windows_never_over_restore(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type="V100", kind=FAIL,
                       fault_id=0, count=2),
            FaultEvent(time=20.0, node_id=0, gpu_type=None, kind=FAIL, fault_id=1),
            FaultEvent(time=30.0, node_id=0, gpu_type="V100", kind=RECOVER,
                       fault_id=0),
            FaultEvent(time=40.0, node_id=0, gpu_type=None, kind=RECOVER,
                       fault_id=1),
        ))
        ledger = ProgressLedger({})
        phase.apply(0, ledger, state, 10.0)
        assert state.capacity(0, "V100") == 2
        phase.apply(1, ledger, state, 20.0)  # node loss takes the 2 survivors
        assert state.capacity(0, "V100") == 0
        assert state.capacity(0, "K80") == 0
        phase.apply(2, ledger, state, 30.0)  # restores exactly fault 0's 2
        assert state.capacity(0, "V100") == 2
        phase.apply(3, ledger, state, 40.0)
        assert state.capacity(0, "V100") == 4
        assert state.capacity(0, "K80") == 2
        assert phase.failed == {}
        assert phase.stats["recoveries"] == 2

    def test_permanent_failure_never_restores(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=1, gpu_type="V100", kind=FAIL,
                       fault_id=0, permanent=True, count=1),
        ))
        phase.apply(0, ProgressLedger({}), state, 10.0)
        assert state.capacity(1, "V100") == 1
        assert phase.stats["permanent_faults"] == 1
        assert phase._taken == {}  # nothing recorded, nothing to restore

    def test_emit_records_conform_to_schema(self):
        from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_record

        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        victim = running(3, Allocation.single(0, "V100", 1))
        state.allocate(victim.allocation)
        records: list[dict] = []
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type=None, kind=FAIL, fault_id=0),
            FaultEvent(time=20.0, node_id=0, gpu_type=None, kind=RECOVER,
                       fault_id=0),
        ), emit=records.append)
        ledger = ProgressLedger({3: victim})
        phase.apply(0, ledger, state, 10.0)
        phase.apply(1, ledger, state, 20.0)
        assert [r["kind"] for r in records] == [
            "job_rollback", "gpu_failed", "gpu_recovered",
        ]
        for record in records:
            validate_record({"schema": TRACE_SCHEMA_VERSION, **record})
        assert records[1]["preempted"] == [3]


# -- sanitizer hooks ----------------------------------------------------------


class TestSanitizerHooks:
    def test_clean_rollback_passes(self):
        cluster = two_node_cluster()
        state = ClusterState.from_cluster(cluster)
        victim = running(1, Allocation.single(0, "V100", 1))
        state.allocate(victim.allocation)
        sanitizer = InvariantSanitizer()
        phase = make_phase(cluster, (
            FaultEvent(time=5.0, node_id=0, gpu_type="V100", kind=FAIL,
                       fault_id=0, count=4),
        ), sanitizer=sanitizer)
        phase.apply(0, ProgressLedger({1: victim}), state, 5.0)
        assert phase.stats["rollbacks"] == 1  # check_rollback actually ran
        assert sanitizer.ok

    def test_availability_catches_gang_on_failed_device(self):
        ghost = running(1, Allocation.single(0, "V100", 3))
        fine = ClusterState({(0, "V100"): 3})  # 3 held, 3 survive
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_availability(fine, [ghost], {(0, "V100"): 1})
        assert sanitizer.ok
        shrunk = ClusterState({(0, "V100"): 2})  # capacity fell under the gang
        sanitizer.check_availability(shrunk, [ghost], {(0, "V100"): 2})
        assert not sanitizer.ok
        assert sanitizer.violations[0].rule == "availability"

    def test_availability_checks_nominal_bookkeeping(self):
        state = ClusterState.from_cluster(two_node_cluster())
        nominal = {slot: state.capacity(*slot) for slot in state.slots}
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_availability(state, [], {}, nominal=nominal)
        assert sanitizer.ok
        # Claim a device failed without removing it from capacity.
        sanitizer.check_availability(state, [], {(0, "K80"): 1}, nominal=nominal)
        assert not sanitizer.ok

    def test_rollback_check_rejects_invented_progress(self):
        rt = running(1, EMPTY_ALLOCATION, done=300.0, checkpoint=300.0)
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_rollback(rt, remaining_before=700.0)
        assert sanitizer.ok
        # remaining_before says 900 were left; sitting at 300 done means
        # only 700 remain now — the "rollback" created 200 iterations.
        sanitizer.check_rollback(rt, remaining_before=900.0)
        assert [v.rule for v in sanitizer.violations] == ["rollback"]

    def test_rollback_check_rejects_progress_behind_checkpoint(self):
        rt = running(1, EMPTY_ALLOCATION, done=100.0, checkpoint=300.0)
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_rollback(rt, remaining_before=900.0)
        assert any(
            "behind the checkpoint" in str(v) for v in sanitizer.violations
        )

    def test_degraded_rate_must_stay_in_zero_nominal(self):
        rt = running(1, Allocation.single(0, "V100", 1), rate=5.0)
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_degraded_rate(rt, cap_rate=10.0)
        assert sanitizer.ok  # throttled below nominal: fine
        rt.rate = 12.0  # "degradation" sped the gang up
        sanitizer.check_degraded_rate(rt, cap_rate=10.0)
        rt.rate = 0.0  # throttled all the way to a stall
        sanitizer.check_degraded_rate(rt, cap_rate=10.0)
        assert [v.rule for v in sanitizer.violations] == [
            "degraded-rate", "degraded-rate",
        ]

    def test_partition_stall_check_catches_progress_across_the_cut(self):
        stalled = running(1, Allocation.single(0, "V100", 1), rate=0.0)
        leaky = running(2, Allocation.single(0, "V100", 1), rate=3.0)
        sanitizer = InvariantSanitizer(mode="collect")
        sanitizer.check_partition_stall([1], {1: stalled, 2: leaky})
        assert sanitizer.ok
        sanitizer.check_partition_stall([1, 2], {1: stalled, 2: leaky})
        assert [v.rule for v in sanitizer.violations] == ["partition-stall"]
        assert sanitizer.violations[0].job_id == 2


# -- failure domains, degraded mode, storage, live reload ---------------------


def spanning_and_inside(cluster):
    """A gang spanning nodes 0-1 and a gang fully inside node 0."""
    spanning = running(1, Allocation({(0, "V100"): 2, (1, "V100"): 2}))
    inside = running(2, Allocation.single(0, "V100", 2))
    state = ClusterState.from_cluster(cluster)
    state.allocate(spanning.allocation)
    state.allocate(inside.allocation)
    return spanning, inside, state


PARTITION_EVENTS = (
    FaultEvent(time=10.0, node_id=-1, gpu_type=None, kind=PARTITION,
               fault_id=0, domain=0, nodes=(0,)),
    FaultEvent(time=50.0, node_id=-1, gpu_type=None, kind=PARTITION_HEAL,
               fault_id=0, domain=0, nodes=(0,)),
)


class TestPartitions:
    def test_spanning_gang_stalls_inside_gang_keeps_running(self, matrix):
        cluster = two_node_cluster()
        spanning, inside, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning, 2: inside})
        phase = make_phase(cluster, PARTITION_EVENTS, matrix=matrix)
        changed = phase.apply(0, ledger, state, 10.0)
        assert not changed  # nothing preempted under the stall policy
        assert spanning.rate == 0.0
        assert spanning.state is JobState.RUNNING  # kept, not evicted
        assert inside.rate == 10.0  # fully inside the cut: unaffected
        assert phase.stalled_jobs == frozenset({1})
        assert phase.unreachable_nodes == frozenset({0})
        assert phase.stats["partitions"] == 1
        assert phase.stats["gangs_stalled"] == 1

    def test_heal_resumes_the_stalled_gang(self, matrix):
        from repro.sim.interface import realized_rate

        cluster = two_node_cluster()
        spanning, inside, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning, 2: inside})
        phase = make_phase(cluster, PARTITION_EVENTS, matrix=matrix)
        phase.apply(0, ledger, state, 10.0)
        phase.apply(1, ledger, state, 50.0)
        expected = realized_rate(
            spanning.job, spanning.allocation, matrix, cluster
        )
        assert spanning.rate == pytest.approx(expected)
        assert phase.stalled_jobs == frozenset()
        assert phase.unreachable_nodes == frozenset()
        assert phase.stats["partition_heals"] == 1

    def test_preempt_policy_rolls_the_spanning_gang_back(self, matrix):
        cluster = two_node_cluster()
        spanning, inside, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning, 2: inside})
        phase = FaultPhase(
            FaultModel(partition_policy="preempt"), cluster, matrix=matrix
        )
        phase.schedule = FaultSchedule(events=PARTITION_EVENTS)
        changed = phase.apply(0, ledger, state, 10.0)
        assert changed
        assert spanning.state is JobState.QUEUED
        assert spanning.allocation is EMPTY_ALLOCATION
        assert spanning.iterations_done == spanning.checkpoint_iterations
        assert inside.state is JobState.RUNNING

    def test_partition_records_conform_to_schema(self, matrix):
        from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_record

        cluster = two_node_cluster()
        spanning, inside, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning, 2: inside})
        records: list[dict] = []
        phase = make_phase(
            cluster, PARTITION_EVENTS, matrix=matrix, emit=records.append
        )
        phase.apply(0, ledger, state, 10.0)
        phase.apply(1, ledger, state, 50.0)
        assert [r["kind"] for r in records] == [
            "network_partition", "partition_healed",
        ]
        assert records[0]["stalled"] == [1] and records[0]["preempted"] == []
        assert records[1]["resumed"] == [1]
        for record in records:
            validate_record({"schema": TRACE_SCHEMA_VERSION, **record})

    def test_domains_are_seeded_and_cover_the_cluster(self):
        cluster = simulated_cluster()
        model = FaultModel(
            partition_mtbf_h=6.0, failure_domains=3, seed=11
        )
        domains = model.domains(cluster)
        assert domains == model.domains(cluster)  # pure function of seed
        assert len(domains) == 3
        members = sorted(n for group in domains for n in group)
        assert members == sorted(node.node_id for node in cluster.nodes)


class TestDegradedMode:
    def test_degrade_throttles_without_evicting(self, matrix):
        from repro.sim.interface import realized_rate

        cluster = two_node_cluster()
        spanning, inside, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning, 2: inside})
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type=None, kind=DEGRADE,
                       fault_id=0, rate_factor=0.5),
            FaultEvent(time=40.0, node_id=0, gpu_type=None, kind=DEGRADE_END,
                       fault_id=0, rate_factor=1.0),
        ), matrix=matrix)
        phase.apply(0, ledger, state, 10.0)
        for rt in (spanning, inside):  # both have a worker on node 0
            base = realized_rate(rt.job, rt.allocation, matrix, cluster)
            assert rt.rate == pytest.approx(base * 0.5)
            assert rt.state is JobState.RUNNING
            assert rt.allocation is not EMPTY_ALLOCATION
        assert phase.node_factor(0) == 0.5
        assert phase.stats["degraded_windows"] == 1
        phase.apply(1, ledger, state, 40.0)
        assert phase.node_factor(0) == 1.0
        base = realized_rate(inside.job, inside.allocation, matrix, cluster)
        assert inside.rate == pytest.approx(base)

    def test_gang_runs_at_its_slowest_worker(self, matrix):
        cluster = two_node_cluster()
        spanning, _, state = spanning_and_inside(cluster)
        ledger = ProgressLedger({1: spanning})
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type=None, kind=DEGRADE,
                       fault_id=0, rate_factor=0.8),
            FaultEvent(time=20.0, node_id=1, gpu_type=None, kind=DEGRADE,
                       fault_id=1, rate_factor=0.4),
        ), matrix=matrix)
        phase.apply(0, ledger, state, 10.0)
        phase.apply(1, ledger, state, 20.0)
        assert phase.gang_factor(spanning) == 0.4  # min across its nodes

    def test_recovery_healing_window_throttles_the_repaired_node(self, matrix):
        cluster = two_node_cluster()
        victim = running(1, Allocation.single(0, "V100", 2))
        state = ClusterState.from_cluster(cluster)
        state.allocate(victim.allocation)
        ledger = ProgressLedger({1: victim})
        records: list[dict] = []
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type=None, kind=FAIL,
                       fault_id=0),
            FaultEvent(time=30.0, node_id=0, gpu_type=None, kind=RECOVER,
                       fault_id=0, rate_factor=0.7, heal_s=600.0),
            FaultEvent(time=630.0, node_id=0, gpu_type=None, kind=DEGRADE_END,
                       fault_id=0, rate_factor=1.0),
        ), matrix=matrix, emit=records.append)
        phase.apply(0, ledger, state, 10.0)
        phase.apply(1, ledger, state, 30.0)
        assert phase.node_factor(0) == 0.7  # repaired but still healing
        healing = [r for r in records if r.get("healing")]
        assert healing and healing[0]["factor"] == 0.7
        phase.apply(2, ledger, state, 630.0)
        assert phase.node_factor(0) == 1.0

    def test_healing_windows_are_generated_with_recoveries(self):
        model = FaultModel(
            node_mtbf_h=4.0, mttr_s=600.0, healing_window_s=900.0,
            healing_factor=0.7, seed=3,
        )
        events = model.build_schedule(simulated_cluster()).events
        healing = [
            ev for ev in events
            if ev.kind == RECOVER and ev.rate_factor < 1.0
        ]
        assert healing
        closers = {
            ev.fault_id for ev in events if ev.kind == DEGRADE_END
        }
        for rec in healing:
            assert 0.7 <= rec.rate_factor < 1.0
            assert rec.heal_s > 0
            assert rec.fault_id in closers


class TestStorageLoss:
    def test_running_gang_rolls_back_to_zero(self, matrix):
        cluster = two_node_cluster()
        victim = running(1, Allocation.single(0, "V100", 2))
        state = ClusterState.from_cluster(cluster)
        state.allocate(victim.allocation)
        ledger = ProgressLedger({1: victim})
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=-1, gpu_type=None, kind=STORAGE,
                       fault_id=0, tier=0),
        ), matrix=matrix)
        changed = phase.apply(0, ledger, state, 10.0)
        assert changed
        assert victim.state is JobState.QUEUED
        assert victim.checkpoint_iterations == 0.0
        assert victim.iterations_done == 0.0  # no checkpoint left to keep
        assert phase.stats["storage_losses"] == 1

    def test_queued_job_loses_its_resume_point(self):
        cluster = two_node_cluster()
        rt = running(1, EMPTY_ALLOCATION)
        rt.state = JobState.QUEUED
        rt.allocation = EMPTY_ALLOCATION
        state = ClusterState.from_cluster(cluster)
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=-1, gpu_type=None, kind=STORAGE,
                       fault_id=0, tier=0),
        ))
        phase.apply(0, ProgressLedger({1: rt}), state, 10.0)
        assert rt.iterations_done == rt.checkpoint_iterations == 0.0
        assert rt.rollbacks == 1

    def test_other_tiers_are_untouched(self):
        cluster = two_node_cluster()
        hit = running(2, EMPTY_ALLOCATION)    # 2 % 2 == tier 0
        spared = running(1, EMPTY_ALLOCATION)  # 1 % 2 == tier 1
        for rt in (hit, spared):
            rt.state = JobState.QUEUED
            rt.allocation = EMPTY_ALLOCATION
        phase = FaultPhase(FaultModel(storage_tiers=2), cluster)
        phase.schedule = FaultSchedule(events=(
            FaultEvent(time=10.0, node_id=-1, gpu_type=None, kind=STORAGE,
                       fault_id=0, tier=0),
        ))
        state = ClusterState.from_cluster(cluster)
        phase.apply(0, ProgressLedger({1: spared, 2: hit}), state, 10.0)
        assert hit.iterations_done == 0.0
        assert spared.iterations_done == 500.0


class TestLiveReload:
    def reload_phase(self, matrix):
        cluster = two_node_cluster()
        phase = make_phase(cluster, (
            FaultEvent(time=10.0, node_id=0, gpu_type="V100", kind=FAIL,
                       fault_id=0, count=2),
            FaultEvent(time=100.0, node_id=0, gpu_type=None, kind=FAIL,
                       fault_id=1),
            FaultEvent(time=200.0, node_id=0, gpu_type="V100", kind=RECOVER,
                       fault_id=0),
        ), matrix=matrix)
        return cluster, phase

    def test_reload_splices_a_future_epoch(self, matrix):
        from repro.sim.kernel import EventKernel

        cluster, phase = self.reload_phase(matrix)
        kernel = EventKernel()
        info = phase.reload("node_mtbf_h=8,mttr_min=10,seed=9", kernel, 50.0)
        assert info["epoch"] == phase.epoch == 1
        assert info["events"] > 0
        # Only strictly-future events of the new epoch entered the kernel.
        assert all(
            ev.time > 50.0
            for ev in phase._schedules[1].events[: info["events"]]
        )
        # New epoch's fault ids never collide with the old epoch's.
        old_ids = {ev.fault_id for ev in phase._schedules[0].events}
        new_ids = {ev.fault_id for ev in phase._schedules[1].events}
        assert not old_ids & new_ids

    def test_superseded_openers_drop_open_windows_still_close(self, matrix):
        from repro.sim.kernel import EventKernel

        cluster, phase = self.reload_phase(matrix)
        state = ClusterState.from_cluster(cluster)
        ledger = ProgressLedger({})
        phase.apply(0, ledger, state, 10.0)  # fault 0 opens pre-reload
        assert state.capacity(0, "V100") == 2
        phase.reload("gpu_mtbf_h=100,seed=9", EventKernel(), 50.0)
        # The old epoch's future opener is stale; its open window is not.
        assert phase.apply(1, ledger, state, 100.0) is False
        assert phase.stats["stale_fault_events"] == 1
        assert state.capacity(0, "V100") == 2  # the stale FAIL took nothing
        phase.apply(2, ledger, state, 200.0)
        assert state.capacity(0, "V100") == 4  # fault 0's RECOVER applied
        assert phase.stats["recoveries"] == 1

    def test_reload_replays_through_state_dict(self, matrix):
        from repro.sim.kernel import EventKernel

        cluster, phase = self.reload_phase(matrix)
        phase.reload("node_mtbf_h=8,seed=9", EventKernel(), 50.0)
        twin = make_phase(cluster, tuple(phase._schedules[0].events),
                          matrix=matrix)
        twin.load_state_dict(phase.state_dict())
        assert twin.epoch == phase.epoch
        assert twin._schedules[1].events == phase._schedules[1].events


# -- the validator: strict raises, repair drops -------------------------------


class TestDecisionValidator:
    def setup_method(self):
        self.cluster = two_node_cluster()
        self.rt = JobRuntime(job=make_job(1, workers=2))
        self.rt.state = JobState.QUEUED
        self.runtimes = {1: self.rt}

    def probe(self) -> ClusterState:
        return ClusterState.from_cluster(self.cluster)

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="strict.*repair"):
            DecisionValidator("lenient")

    def test_strict_raises_legacy_protocol_error(self):
        validator = DecisionValidator("strict")
        with pytest.raises(SchedulerProtocolError, match="unknown job id 99"):
            validator.check({99: EMPTY_ALLOCATION}, self.runtimes, self.probe())

    def test_repair_drops_and_classifies(self):
        validator = DecisionValidator("repair")
        done = JobRuntime(job=make_job(2, workers=1))
        done.state = JobState.COMPLETE
        pending = JobRuntime(job=make_job(3, workers=1))
        runtimes = {1: self.rt, 2: done, 3: pending}
        nominal = {slot: 4 if slot == (0, "V100") else 2
                   for slot in self.probe().slots}
        target = {
            99: EMPTY_ALLOCATION,                       # unknown_job
            2: Allocation.single(1, "V100", 1),         # completed_job
            3: Allocation.single(1, "V100", 1),         # not_arrived
            1: Allocation.single(0, "V100", 1),         # bad_gang (W_j = 2)
        }
        repaired = validator.check(target, runtimes, self.probe(), nominal=nominal)
        assert repaired == {}
        assert sorted(r.reason for r in validator.rejections) == [
            "bad_gang", "completed_job", "not_arrived", "unknown_job",
        ]
        assert all(r.repaired for r in validator.rejections)

    def test_capacity_reasons(self):
        nominal = {(0, "V100"): 4, (0, "K80"): 2, (1, "V100"): 2}
        cases = [
            (Allocation.single(7, "V100", 2), "nonexistent_gpu", None),
            (Allocation.single(0, "V100", 6), "overcommit", None),
            (Allocation.single(0, "V100", 4), "failed_gpu",
             lambda p: p.fail(0, "V100", 1)),
            (Allocation.single(0, "V100", 4), "occupied_gpu",
             lambda p: p.allocate(Allocation.single(0, "V100", 1))),
        ]
        for alloc, expected, prep in cases:
            validator = DecisionValidator("repair")
            rt = JobRuntime(job=make_job(1, workers=alloc.total_workers))
            rt.state = JobState.QUEUED
            probe = self.probe()
            if prep is not None:
                prep(probe)
            repaired = validator.check({1: alloc}, {1: rt}, probe, nominal=nominal)
            assert repaired == {}, expected
            assert [r.reason for r in validator.last_rejections] == [expected]

    def test_good_decision_passes_through_unchanged(self):
        validator = DecisionValidator("repair")
        alloc = Allocation.single(0, "V100", 2)
        assert validator.check({1: alloc}, self.runtimes, self.probe()) == {1: alloc}
        assert validator.rejections == []

    def test_rejection_record_shape(self):
        rec = DecisionRejected(
            job_id=5, reason="failed_gpu", detail="d", repaired=True
        ).as_record()
        assert rec == {
            "job_id": 5, "reason": "failed_gpu", "detail": "d", "repaired": True,
        }


# -- decision deadline --------------------------------------------------------


class TestDecisionDeadline:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            DPConfig(decision_deadline_s=0.0)

    def test_expiry_falls_back_to_greedy(self, no_comm_cluster, matrix,
                                         philly_trace_small):
        scheduler = HadarScheduler(
            HadarConfig(dp=DPConfig(decision_deadline_s=1e-9))
        )
        result = simulate(
            no_comm_cluster, philly_trace_small, scheduler, matrix=matrix
        )
        assert result.hotpath_stats["deadline_hits"] > 0
        assert len(result.completed) == len(philly_trace_small.jobs)

    def test_generous_deadline_never_fires(self, no_comm_cluster, matrix,
                                           tiny_trace):
        scheduler = HadarScheduler(
            HadarConfig(dp=DPConfig(decision_deadline_s=3600.0))
        )
        result = simulate(no_comm_cluster, tiny_trace, scheduler, matrix=matrix)
        assert result.hotpath_stats.get("deadline_hits", 0) == 0


# -- integration: chaos runs and golden parity --------------------------------


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_chaos_run_completes_every_job(name):
    """Seeded chaos: every scheduler survives the same fault sequence with
    the sanitizer attached and zero unrepaired rejections."""
    cluster = simulated_cluster()
    trace = generate_philly_trace(PhillyTraceConfig(num_jobs=14, seed=1))
    sanitizer = InvariantSanitizer()
    from tests.core._hotpath_fingerprint import make_scheduler

    result = simulate(
        cluster, trace, make_scheduler(name),
        faults=FaultModel(node_mtbf_h=8.0, mttr_s=300.0, seed=7),
        sanitizer=sanitizer,
    )
    assert len(result.completed) == 14
    assert sanitizer.ok
    assert result.fault_stats["node_faults"] > 0
    assert all(r.repaired for r in result.rejections)


def test_gavel_lp_plans_on_surviving_capacity():
    """Regression: Gavel's allocation LP must be solved against surviving
    (fault-reduced) capacity, or its promised time fractions overcommit
    the cluster and the sanitizer's feasibility residual trips (caught
    with this exact workload/fault seed pair)."""
    from repro.baselines import GavelScheduler

    cluster = simulated_cluster()
    trace = generate_philly_trace(PhillyTraceConfig(num_jobs=12, seed=2))
    sanitizer = InvariantSanitizer()
    result = simulate(
        cluster, trace, GavelScheduler(),
        faults=FaultModel(node_mtbf_h=8.0, mttr_s=300.0, seed=7),
        sanitizer=sanitizer,
    )
    assert len(result.completed) == 12
    assert sanitizer.ok


def test_same_seed_same_fault_stats_across_schedulers():
    """The fault sequence is a pure function of (model, cluster): every
    scheduler sees the identical failure timeline."""
    model = FaultModel(node_mtbf_h=8.0, gpu_mtbf_h=60.0, mttr_s=300.0, seed=7)
    cluster = simulated_cluster()
    schedules = [model.build_schedule(cluster) for _ in range(2)]
    assert schedules[0] == schedules[1]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_disabled_faults_byte_identical_to_golden(name, seed):
    """An attached all-zero FaultModel must not perturb a single decision:
    the fingerprint matches the pre-fault-subsystem golden digest."""
    result = run_scenario(
        name, seed, engine_kwargs={"faults": FaultModel(seed=seed)}
    )
    assert digest(fingerprint(result)) == GOLDEN[f"{name}/{seed}"]["sha256"]


# -- property test: schedule invariants under arbitrary parameters ------------


@settings(max_examples=25, deadline=None)
@given(
    node_mtbf_h=st.floats(min_value=0.5, max_value=64.0),
    gpu_mtbf_h=st.one_of(st.just(0.0), st.floats(min_value=10.0, max_value=400.0)),
    mttr_s=st.floats(min_value=1.0, max_value=7200.0),
    permanent=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_schedule_replay_keeps_capacity_consistent(
    node_mtbf_h, gpu_mtbf_h, mttr_s, permanent, seed
):
    """For arbitrary model parameters, applying the full schedule to an
    idle cluster keeps every slot's capacity within [0, nominal], restores
    exactly what failed, and ends with failed-mask == nominal - surviving."""
    cluster = two_node_cluster()
    model = FaultModel(
        node_mtbf_h=node_mtbf_h, gpu_mtbf_h=gpu_mtbf_h, mttr_s=mttr_s,
        permanent_fraction=permanent, seed=seed,
        horizon_s=3 * 24 * 3600.0,
    )
    phase = FaultPhase(model, cluster)
    state = ClusterState.from_cluster(cluster)
    nominal = {slot: state.capacity(*slot) for slot in state.slots}
    ledger = ProgressLedger({})
    for index, event in enumerate(phase.schedule.events):
        phase.apply(index, ledger, state, event.time)
        for slot, cap in nominal.items():
            surviving = state.capacity(*slot)
            assert 0 <= surviving <= cap
            assert surviving + phase.failed.get(slot, 0) == cap
    assert phase.capacity_lost == sum(
        cap - state.capacity(*slot) for slot, cap in nominal.items()
    )
