"""Unit tests for the simulation engine.

Uses small stub schedulers so every quantity is analytically checkable.
"""

import pytest

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.topology import CommunicationModel
from repro.sim.checkpoint import FixedDelayCheckpoint, NoOverheadCheckpoint
from repro.sim.engine import SchedulerProtocolError, simulate
from repro.sim.interface import Scheduler
from repro.workload.throughput import ThroughputMatrix
from repro.workload.trace import Trace

from tests.conftest import make_job

L = 360.0  # round length used throughout


@pytest.fixture
def cluster():
    """Two nodes, 2 V100 each, no communication cost."""
    return Cluster(
        [Node(0, {"V100": 2}), Node(1, {"V100": 2})],
        comm=CommunicationModel.disabled(),
    )


@pytest.fixture
def matrix():
    # resnet18 at a round number for easy arithmetic: 1 iter/s per worker.
    return ThroughputMatrix({"resnet18": {"V100": 1.0}, "cyclegan": {"V100": 1.0}})


class GreedyFifo(Scheduler):
    """Round-based: give every job (arrival order) V100s while they fit."""

    round_based = True
    reacts_to_events = False

    @property
    def name(self):
        return "greedy-fifo"

    def schedule(self, ctx):
        state = ctx.fresh_state()
        target = {}
        for rt in ctx.active:
            picks = []
            need = rt.job.num_workers
            for (node, t), free in state.free_slots():
                take = min(free, need)
                picks.append((node, t, take))
                need -= take
                if need == 0:
                    break
            if need == 0:
                alloc = Allocation.from_pairs(picks)
                state.allocate(alloc)
                target[rt.job_id] = alloc
        return target


class TestBasicCompletion:
    def test_single_job_exact_finish(self, cluster, matrix):
        # 720 iterations at 1 it/s × 2 workers → 360 s.
        job = make_job(0, "resnet18", workers=2, epochs=1, iters_per_epoch=720)
        result = simulate(
            cluster, Trace([job]), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[0]
        assert rt.finish_time == pytest.approx(360.0)
        assert result.jcts() == [pytest.approx(360.0)]
        assert result.makespan() == pytest.approx(360.0)
        assert result.all_completed

    def test_checkpoint_delay_shifts_finish(self, cluster, matrix):
        job = make_job(0, "resnet18", workers=2, epochs=1, iters_per_epoch=720)
        result = simulate(
            cluster, Trace([job]), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=FixedDelayCheckpoint(10.0),
        )
        assert result.runtimes[0].finish_time == pytest.approx(370.0)
        assert result.runtimes[0].overhead_seconds == pytest.approx(10.0)

    def test_mid_round_arrival_waits_for_boundary(self, cluster, matrix):
        # Arrives at t=100; the round-based scheduler only acts at t=360.
        job = make_job(0, "resnet18", arrival=100.0, workers=1, epochs=1,
                       iters_per_epoch=360)
        result = simulate(
            cluster, Trace([job]), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[0]
        assert rt.first_start_time == pytest.approx(360.0)
        assert rt.finish_time == pytest.approx(720.0)
        assert rt.queuing_delay == pytest.approx(260.0)
        assert rt.waiting_seconds == pytest.approx(260.0)

    def test_far_future_arrival_skips_idle_rounds(self, cluster, matrix):
        early = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=360)
        late = make_job(1, "resnet18", arrival=50 * L, workers=1, epochs=1,
                        iters_per_epoch=360)
        result = simulate(
            cluster, Trace([early, late]), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        assert result.runtimes[1].finish_time == pytest.approx(51 * L)
        # No scheduler invocations during the idle gap: at most a handful.
        assert result.scheduling_invocations < 10


class TestContention:
    def test_two_jobs_share_then_queue(self, cluster, matrix):
        # Each wants 4 GPUs = the whole cluster: strictly sequential.
        jobs = [
            make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
            make_job(1, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
        ]
        result = simulate(
            cluster, Trace(jobs), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        f0 = result.runtimes[0].finish_time
        f1 = result.runtimes[1].finish_time
        assert f0 == pytest.approx(360.0)  # 1440 iters / (1×4)
        # Job 1 starts at the boundary where job 0's devices are free.
        assert f1 == pytest.approx(720.0)
        assert result.runtimes[1].waiting_seconds == pytest.approx(360.0)

    def test_preemption_counted(self, cluster, matrix):
        class Flipper(GreedyFifo):
            """Moves the job between nodes every round."""

            def __init__(self):
                self.flip = False

            def schedule(self, ctx):
                self.flip = not self.flip
                node = 0 if self.flip else 1
                return {
                    rt.job_id: Allocation.single(node, "V100", rt.job.num_workers)
                    for rt in ctx.active
                }

        job = make_job(0, "resnet18", workers=2, epochs=1, iters_per_epoch=1440)
        result = simulate(
            cluster, Trace([job]), Flipper(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[0]
        assert rt.preemptions >= 1
        assert rt.allocation_changes >= 2
        assert result.rounds_with_change >= 2


class TestProtocolEnforcement:
    def _run(self, cluster, matrix, scheduler, workers=2):
        job = make_job(0, "resnet18", workers=workers, epochs=1, iters_per_epoch=720)
        return simulate(cluster, Trace([job]), scheduler, matrix=matrix,
                        round_length=L)

    def test_partial_gang_rejected(self, cluster, matrix):
        class Bad(GreedyFifo):
            def schedule(self, ctx):
                return {0: Allocation.single(0, "V100", 1)}  # W=2 job

        with pytest.raises(SchedulerProtocolError, match="requires 0 or 2"):
            self._run(cluster, matrix, Bad())

    def test_overcommit_rejected(self, cluster, matrix):
        class Bad(GreedyFifo):
            def schedule(self, ctx):
                return {0: Allocation.single(0, "V100", 99)}

        job = make_job(0, "resnet18", workers=99, epochs=1, iters_per_epoch=10)
        with pytest.raises(ValueError):
            # 99 workers exceeds total capacity → rejected at engine init.
            simulate(cluster, Trace([job]), Bad(), matrix=matrix)

    def test_capacity_violation_rejected(self, cluster, matrix):
        class Bad(GreedyFifo):
            def schedule(self, ctx):
                # Both jobs on the same 2 GPUs.
                return {
                    rt.job_id: Allocation.single(0, "V100", 2) for rt in ctx.active
                }

        jobs = [
            make_job(0, "resnet18", workers=2, epochs=1, iters_per_epoch=720),
            make_job(1, "resnet18", workers=2, epochs=1, iters_per_epoch=720),
        ]
        with pytest.raises(SchedulerProtocolError, match="overcommit"):
            simulate(cluster, Trace(jobs), Bad(), matrix=matrix, round_length=L)

    def test_unknown_job_rejected(self, cluster, matrix):
        class Bad(GreedyFifo):
            def schedule(self, ctx):
                return {42: Allocation.single(0, "V100", 2)}

        with pytest.raises(SchedulerProtocolError, match="unknown job"):
            self._run(cluster, matrix, Bad())

    def test_pending_job_rejected(self, cluster, matrix):
        class Bad(GreedyFifo):
            def schedule(self, ctx):
                return {1: Allocation.single(0, "V100", 1)}

        jobs = [
            make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=720),
            make_job(1, "resnet18", arrival=10 * L, workers=1, epochs=1,
                     iters_per_epoch=720),
        ]
        with pytest.raises(SchedulerProtocolError, match="before its arrival"):
            simulate(cluster, Trace(jobs), Bad(), matrix=matrix, round_length=L)


class TestTruncation:
    def test_max_time_truncates(self, cluster, matrix):
        class Never(GreedyFifo):
            def schedule(self, ctx):
                return {}

        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=100)
        result = simulate(
            cluster, Trace([job]), Never(), matrix=matrix,
            round_length=L, max_time=10 * L,
        )
        assert result.truncated
        assert not result.all_completed


class TestEventDriven:
    def test_yarn_style_immediate_admission(self, cluster, matrix):
        class EventFifo(GreedyFifo):
            round_based = False
            reacts_to_events = True

            def schedule(self, ctx):
                target = {rt.job_id: rt.allocation for rt in ctx.running}
                state = ctx.occupied_state()
                for rt in ctx.waiting:
                    alloc = Allocation.single(0, "V100", rt.job.num_workers)
                    if state.can_fit(alloc):
                        state.allocate(alloc)
                        target[rt.job_id] = alloc
                return target

        # Arrives mid-round but starts immediately (no boundary wait).
        job = make_job(0, "resnet18", arrival=100.0, workers=1, epochs=1,
                       iters_per_epoch=360)
        result = simulate(
            cluster, Trace([job]), EventFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        assert result.runtimes[0].first_start_time == pytest.approx(100.0)
        assert result.runtimes[0].finish_time == pytest.approx(460.0)


class TestTelemetryWiring:
    def test_busy_series_reflects_allocations(self, cluster, matrix):
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440)
        result = simulate(
            cluster, Trace([job]), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        busy = result.telemetry.busy_gpu_seconds(0.0, result.makespan())
        assert busy == pytest.approx(4 * 360.0)
        assert result.gpu_utilization() == pytest.approx(1.0)

    def test_queue_series_recorded(self, cluster, matrix):
        jobs = [
            make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
            make_job(1, "resnet18", workers=4, epochs=1, iters_per_epoch=1440),
        ]
        result = simulate(
            cluster, Trace(jobs), GreedyFifo(), matrix=matrix,
            round_length=L, checkpoint=NoOverheadCheckpoint(),
        )
        windows = result.telemetry.contended_windows(result.makespan())
        # Job 1 waits during job 0's round.
        assert windows and windows[0][0] == pytest.approx(0.0)
