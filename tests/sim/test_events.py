"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, payload=1)
        q.push(1.0, EventKind.ARRIVAL, payload=2)
        q.push(3.0, EventKind.ARRIVAL, payload=3)
        assert [q.pop().payload for _ in range(3)] == [2, 3, 1]

    def test_kind_breaks_time_ties(self):
        """At one instant: completions, then arrivals, then the boundary."""
        q = EventQueue()
        q.push(2.0, EventKind.ROUND_BOUNDARY)
        q.push(2.0, EventKind.ARRIVAL, payload=7)
        q.push(2.0, EventKind.COMPLETION, payload=8)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.COMPLETION,
            EventKind.ARRIVAL,
            EventKind.ROUND_BOUNDARY,
        ]

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        for payload in (10, 11, 12):
            q.push(1.0, EventKind.ARRIVAL, payload=payload)
        assert [q.pop().payload for _ in range(3)] == [10, 11, 12]


class TestQueueBasics:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, EventKind.ARRIVAL)
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.2, EventKind.ARRIVAL)
        assert q.peek_time() == 4.2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

    def test_generation_carried(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.COMPLETION, payload=3, generation=9)
        assert isinstance(ev, Event)
        popped = q.pop()
        assert popped.generation == 9 and popped.payload == 3
