"""Unit and behavioural tests for straggler injection."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.core import HadarScheduler
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.stragglers import StragglerModel
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerModel(incidence_per_hour=0.0)
        with pytest.raises(ValueError):
            StragglerModel(slowdown_factor=1.0)
        with pytest.raises(ValueError):
            StragglerModel(slowdown_factor=0.0)
        with pytest.raises(ValueError):
            StragglerModel(duration_s=0.0)

    def test_onset_sampling_matches_rate(self):
        model = StragglerModel(incidence_per_hour=2.0, seed=1)
        rng = model.rng()
        delays = [model.sample_onset_delay(rng) for _ in range(4000)]
        mean = sum(delays) / len(delays)
        assert mean == pytest.approx(1800.0, rel=0.1)

    def test_rng_seeded(self):
        model = StragglerModel(seed=7)
        a = [model.sample_onset_delay(model.rng()) for _ in range(3)]
        b = [model.sample_onset_delay(model.rng()) for _ in range(3)]
        assert a == b


class TestInjection:
    def test_stragglers_slow_nonpreemptive_jobs(self, no_comm_cluster, matrix):
        """Under YARN (never migrates) stragglers strictly lengthen JCTs."""
        trace = Trace([make_job(0, "resnet18", workers=2, epochs=100)])
        clean = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        faulty = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
            stragglers=StragglerModel(
                incidence_per_hour=10.0, slowdown_factor=0.25, seed=2
            ),
        )
        assert faulty.all_completed
        rt = faulty.runtimes[0]
        assert rt.straggler_events >= 1
        assert faulty.jcts()[0] > clean.jcts()[0]
        # Work is still conserved exactly.
        assert rt.iterations_done == pytest.approx(
            rt.job.total_iterations, rel=1e-6
        )

    def test_recovery_restores_rate(self, no_comm_cluster, matrix):
        """A short-duration straggler costs bounded time: JCT grows by at
        most (1/f − 1) × duration per onset."""
        trace = Trace([make_job(0, "resnet18", workers=2, epochs=100)])
        model = StragglerModel(
            incidence_per_hour=4.0, slowdown_factor=0.5, duration_s=300.0, seed=3
        )
        clean = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        faulty = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(), stragglers=model,
        )
        rt = faulty.runtimes[0]
        max_extra = rt.straggler_events * (1 / model.slowdown_factor - 1) * model.duration_s
        assert faulty.jcts()[0] <= clean.jcts()[0] + max_extra + 1e-6

    def test_deterministic_given_seed(self, no_comm_cluster, matrix, tiny_trace):
        model = StragglerModel(incidence_per_hour=5.0, seed=11)
        a = simulate(no_comm_cluster, tiny_trace, YarnCapacityScheduler(),
                     matrix=matrix, stragglers=model)
        b = simulate(no_comm_cluster, tiny_trace, YarnCapacityScheduler(),
                     matrix=matrix, stragglers=model)
        assert a.jcts() == b.jcts()


class TestStragglerAwareness:
    def test_hadar_migrates_away(self, no_comm_cluster, matrix):
        """The paper's claim: Hadar reallocates straggling jobs.  With a
        long-lived severe straggler and free capacity elsewhere, Hadar
        must preempt and move the job."""
        trace = Trace([make_job(0, "resnet18", workers=2, epochs=200)])
        model = StragglerModel(
            incidence_per_hour=6.0,
            slowdown_factor=0.1,
            duration_s=7200.0,
            seed=5,
        )
        result = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(), stragglers=model,
        )
        rt = result.runtimes[0]
        assert result.all_completed
        assert rt.straggler_events >= 1
        # Migration happened: more than the initial placement.
        assert rt.allocation_changes >= 2

    def test_hadar_beats_nonmigrating_baseline_under_faults(
        self, no_comm_cluster, matrix
    ):
        trace = Trace(
            [make_job(i, "resnet18", workers=2, epochs=120) for i in range(3)]
        )
        model = StragglerModel(
            incidence_per_hour=4.0, slowdown_factor=0.1, duration_s=7200.0, seed=9
        )
        hadar = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(), stragglers=model,
        )
        yarn = simulate(
            no_comm_cluster, trace, YarnCapacityScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(), stragglers=model,
        )
        from repro.metrics.jct import jct_stats

        assert jct_stats(hadar).mean < jct_stats(yarn).mean
