"""Unit tests for JobRuntime progress integration."""

import pytest

from repro.cluster.allocation import Allocation
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


def running_runtime(rate: float = 10.0, total_iters: int = 1000) -> JobRuntime:
    rt = JobRuntime(job=make_job(epochs=1, iters_per_epoch=total_iters))
    rt.state = JobState.RUNNING
    rt.allocation = Allocation.single(0, "V100", 1)
    rt.rate = rate
    return rt


class TestIntegration:
    def test_constant_rate(self):
        rt = running_runtime(rate=10.0)
        rt.advance_to(5.0)
        assert rt.iterations_done == pytest.approx(50.0)
        assert rt.remaining_iterations == pytest.approx(950.0)

    def test_pause_window_respected(self):
        rt = running_runtime(rate=10.0)
        rt.resume_time = 3.0
        rt.advance_to(5.0)
        assert rt.iterations_done == pytest.approx(20.0)  # only 2 s active

    def test_progress_clamped_at_total(self):
        rt = running_runtime(rate=10.0, total_iters=30)
        rt.advance_to(100.0)
        assert rt.iterations_done == 30.0
        assert rt.is_done

    def test_queued_job_accrues_waiting(self):
        rt = JobRuntime(job=make_job())
        rt.state = JobState.QUEUED
        rt.advance_to(7.0)
        assert rt.waiting_seconds == pytest.approx(7.0)
        assert rt.iterations_done == 0.0

    def test_attained_service_counts_gang(self):
        rt = running_runtime(rate=1.0)
        rt.allocation = Allocation.single(0, "V100", 4)
        rt.advance_to(10.0)
        assert rt.attained_service == pytest.approx(40.0)

    def test_time_backwards_rejected(self):
        rt = running_runtime()
        rt.advance_to(5.0)
        with pytest.raises(ValueError, match="backwards"):
            rt.advance_to(4.0)

    def test_idempotent_at_same_time(self):
        rt = running_runtime(rate=10.0)
        rt.advance_to(5.0)
        rt.advance_to(5.0)
        assert rt.iterations_done == pytest.approx(50.0)


class TestPrediction:
    def test_predicted_completion(self):
        rt = running_runtime(rate=10.0, total_iters=100)
        assert rt.predicted_completion(0.0) == pytest.approx(10.0)

    def test_prediction_accounts_for_pause(self):
        rt = running_runtime(rate=10.0, total_iters=100)
        rt.resume_time = 4.0
        assert rt.predicted_completion(0.0) == pytest.approx(14.0)

    def test_no_prediction_when_stalled(self):
        rt = JobRuntime(job=make_job())
        assert rt.predicted_completion(0.0) is None
        rt.state = JobState.RUNNING
        rt.rate = 0.0
        assert rt.predicted_completion(0.0) is None


class TestMetricViews:
    def test_completion_time(self):
        rt = JobRuntime(job=make_job(arrival=100.0))
        assert rt.completion_time is None
        rt.finish_time = 400.0
        assert rt.completion_time == pytest.approx(300.0)

    def test_queuing_delay(self):
        rt = JobRuntime(job=make_job(arrival=50.0))
        assert rt.queuing_delay is None
        rt.first_start_time = 80.0
        assert rt.queuing_delay == pytest.approx(30.0)
