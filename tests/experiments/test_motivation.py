"""Tests for the Fig. 1 motivation example."""

import pytest

from repro.experiments.motivation import run_motivation_example, toy_setup


class TestToySetup:
    def test_cluster_matches_figure(self):
        cluster, trace, matrix = toy_setup()
        assert cluster.capacity_by_type() == {"V100": 2, "P100": 3, "K80": 1}
        assert [j.num_workers for j in trace] == [3, 2, 2]
        assert [j.epochs for j in trace] == [80, 30, 50]

    def test_j1_narrative_rates(self):
        """J1 on 2×V100 + 1×K80 runs at min(40, 30) = 30 epochs/round."""
        _, _, matrix = toy_setup()
        per_round_v = matrix.rate("toy-j1", "V100") * 360.0 * 3
        per_round_k = matrix.rate("toy-j1", "K80") * 360.0 * 3
        assert min(per_round_v, per_round_k) == pytest.approx(30.0, rel=1e-6)


class TestOutcome:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_motivation_example()

    def test_both_schedulers_complete(self, outcomes):
        for o in outcomes.values():
            assert o.result.all_completed

    def test_hadar_mixes_types_for_j1(self, outcomes):
        """Hadar achieves the paper's J1 throughput of 30 epochs/round by
        mixing V100s with the K80 — impossible for Gavel."""
        assert outcomes["hadar"].avg_round_throughput[0] == pytest.approx(30.0, rel=0.05)

    def test_hadar_beats_gavel_on_avg_jct(self, outcomes):
        """The paper's headline: ≈20% average-JCT improvement."""
        improvement = (
            outcomes["gavel"].mean_jct_rounds / outcomes["hadar"].mean_jct_rounds
        )
        assert improvement > 1.05

    def test_j2_j1_faster_under_hadar(self, outcomes):
        """Fig. 1's J1 and J2 finish sooner under Hadar than under Gavel."""
        for job_id in (0, 1):
            assert (
                outcomes["hadar"].jct_rounds[job_id]
                < outcomes["gavel"].jct_rounds[job_id]
            )
