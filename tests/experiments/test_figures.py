"""Smoke tests for the figure-harness entry points at quick scale.

The heavyweight sweeps are covered by the benchmark suite; these tests
pin the harness APIs (shapes, caching, assertion-free execution) on the
smallest workload so refactors are caught in the unit run.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    comparison_run,
    fig3_jct_cdfs,
    fig4_utilization,
    fig5_ftf,
)


@pytest.fixture(scope="module", autouse=True)
def _warm_cache():
    # One shared static comparison at quick scale backs every test here.
    comparison_run("static", "quick")


class TestComparisonRun:
    def test_cached_across_calls(self):
        a = comparison_run("static", "quick")
        b = comparison_run("static", "quick")
        assert a is b  # lru_cache hit

    def test_four_schedulers_completed(self):
        run = comparison_run("static", "quick")
        assert set(run.results) == {"hadar", "gavel", "tiresias", "yarn-cs"}
        assert all(r.all_completed for r in run.results.values())


class TestFig3:
    def test_series_shapes(self):
        series = fig3_jct_cdfs("static", "quick")
        for s in series.values():
            assert len(s.times_h) == len(s.fraction_complete) == 60
            assert np.all(np.diff(s.fraction_complete) >= 0)
            assert s.fraction_complete[-1] == pytest.approx(1.0)
            assert s.mean_jct_h > 0

    def test_hadar_wins(self):
        series = fig3_jct_cdfs("static", "quick")
        assert series["hadar"].mean_jct_h <= min(
            series[n].mean_jct_h for n in ("gavel", "tiresias", "yarn-cs")
        )


class TestFig4And5:
    def test_fig4_table(self):
        table = fig4_utilization("static", "quick")
        labels = [label for label, _ in table.rows]
        assert set(labels) == {"hadar", "gavel", "tiresias", "yarn-cs"}
        for label in labels:
            assert 0.0 < table.value(label, "utilization") <= 1.0

    def test_fig5_table(self):
        table = fig5_ftf("static", "quick")
        labels = [label for label, _ in table.rows]
        assert labels == ["hadar", "gavel", "tiresias"]
        assert table.value("hadar", "ftf_mean") <= table.value("gavel", "ftf_mean")
