"""Tests for the Table IV overhead reproduction."""

import pytest

from repro.experiments.overhead import (
    TABLE4_MODELS,
    measured_overhead,
    overhead_table,
)

#: Paper Table IV, column "w reallocation" (percent of a 6-minute round).
PAPER_WITH = {
    "resnet50": 2.1,
    "resnet18": 1.29,
    "lstm": 2.01,
    "cyclegan": 0.68,
    "transformer": 0.71,
}
#: Paper Table IV, column "w/o reallocation".
PAPER_WITHOUT = {
    "resnet50": 0.33,
    "resnet18": 0.21,
    "lstm": 0.87,
    "cyclegan": 0.13,
    "transformer": 0.17,
}


class TestAnalyticTable:
    @pytest.fixture(scope="class")
    def table(self):
        return overhead_table()

    def test_all_models_present(self, table):
        labels = [label for label, _ in table.rows]
        assert labels == list(TABLE4_MODELS)

    @pytest.mark.parametrize("model", TABLE4_MODELS)
    def test_with_reallocation_matches_paper(self, table, model):
        ours = table.value(model, "overhead_w_realloc_pct")
        assert ours == pytest.approx(PAPER_WITH[model], rel=0.15)

    @pytest.mark.parametrize("model", TABLE4_MODELS)
    def test_without_reallocation_matches_paper(self, table, model):
        ours = table.value(model, "overhead_wo_realloc_pct")
        assert ours == pytest.approx(PAPER_WITHOUT[model], rel=0.20)

    def test_reallocation_always_costlier(self, table):
        for model in TABLE4_MODELS:
            assert table.value(model, "overhead_w_realloc_pct") > table.value(
                model, "overhead_wo_realloc_pct"
            )


class TestMeasuredOverhead:
    def test_empirical_matches_analytic(self):
        """The engine charges exactly what the checkpoint model promises."""
        table = overhead_table()
        measured = measured_overhead("resnet18", rounds=10)
        analytic = table.value("resnet18", "overhead_w_realloc_pct")
        # First start pays no save; amortized over ≥10 rounds that is <10%.
        assert measured == pytest.approx(analytic, rel=0.15)
