"""Unit tests for experiment scales and the lineup."""

import pytest

from repro.experiments.config import SCALES, resolve_scale, standard_lineup


class TestScales:
    def test_full_scale_is_papers(self):
        assert SCALES["full"].num_jobs == 480

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert resolve_scale().name == "quick"

    def test_resolve_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert resolve_scale("full").name == "full"

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "default"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="quick"):
            resolve_scale("gigantic")


class TestLineup:
    def test_four_paper_schedulers(self):
        lineup = standard_lineup()
        assert set(lineup) == {"hadar", "gavel", "tiresias", "yarn-cs"}

    def test_factories_make_fresh_instances(self):
        lineup = standard_lineup()
        assert lineup["hadar"]() is not lineup["hadar"]()
