"""Tests for the round-length advisor."""

import pytest

from repro.experiments.round_length import recommended_round_length
from repro.sim.checkpoint import FixedDelayCheckpoint, ModelAwareCheckpoint
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestAdvisor:
    def test_paper_regime_lands_near_six_minutes(self):
        """The Table II workload + SSD checkpoint model recommends a round
        in the paper's 6-7 minute band."""
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=120, seed=1))
        advice = recommended_round_length(trace, ModelAwareCheckpoint())
        assert 4.0 <= advice.round_length_min <= 10.0

    def test_overhead_bound_scales_with_checkpoint_cost(self):
        trace = Trace([make_job(0, "resnet50", epochs=50)])
        cheap = recommended_round_length(trace, FixedDelayCheckpoint(1.0))
        pricey = recommended_round_length(trace, FixedDelayCheckpoint(30.0))
        assert pricey.round_length_s > cheap.round_length_s
        assert pricey.overhead_floor_s == pytest.approx(30.0 / 0.02)

    def test_floor_respected(self):
        trace = Trace([make_job(0, "resnet18", epochs=1)])
        advice = recommended_round_length(
            trace, FixedDelayCheckpoint(0.0), floor_s=120.0
        )
        assert advice.round_length_s >= 120.0

    def test_validation(self):
        trace = Trace([make_job(0)])
        with pytest.raises(ValueError):
            recommended_round_length(trace, max_overhead_fraction=0.0)
        with pytest.raises(ValueError):
            recommended_round_length(trace, max_queuing_fraction=1.0)
        with pytest.raises(ValueError):
            recommended_round_length(Trace([]))

    def test_advice_fields_consistent(self):
        trace = generate_philly_trace(PhillyTraceConfig(num_jobs=20, seed=3))
        advice = recommended_round_length(trace)
        assert advice.worst_reallocation_s > 0
        assert advice.round_length_min == pytest.approx(advice.round_length_s / 60.0)
