"""Tests for the seed-variance analysis."""

import pytest

from repro.experiments.variance import ImprovementStats, seed_variance


class TestImprovementStats:
    def test_aggregates(self):
        s = ImprovementStats("mean_jct", "gavel", (1.2, 1.4, 1.0))
        assert s.mean == pytest.approx(1.2)
        assert s.min == pytest.approx(1.0)
        assert not s.always_above_one
        assert ImprovementStats("m", "b", (1.1, 1.2)).always_above_one


class TestSeedVariance:
    @pytest.fixture(scope="class")
    def stats(self):
        # Two small seeds at quick scale keep this test affordable.
        import os

        os.environ.setdefault("REPRO_SCALE", "quick")
        return seed_variance(seeds=(1, 2), scale_name="quick")

    def test_all_metric_baseline_pairs_present(self, stats):
        metrics = {key[0] for key in stats}
        baselines = {key[1] for key in stats}
        assert metrics == {"mean_jct", "median_jct", "ftf_mean"}
        assert baselines == {"gavel", "tiresias", "yarn-cs"}

    def test_factor_count_matches_seeds(self, stats):
        for s in stats.values():
            assert len(s.factors) == 2

    def test_hadar_wins_on_average_everywhere(self, stats):
        """The paper's conclusions hold in expectation across seeds."""
        for s in stats.values():
            assert s.mean > 1.0, str(s)

    def test_validation(self):
        with pytest.raises(ValueError):
            seed_variance(seeds=())
