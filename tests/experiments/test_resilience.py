"""The degradation-curve sweep: tiny-scale end-to-end run and rendering."""

import pytest

from repro.experiments.resilience import (
    ResilienceConfig,
    ResiliencePoint,
    render_degradation,
    run_resilience,
)


@pytest.fixture(scope="module")
def points():
    return run_resilience(ResilienceConfig(
        node_mtbf_hours=(0.0, 8.0),
        schedulers=("hadar", "tiresias"),
        num_jobs=8,
        mttr_s=300.0,
    ))


class TestSweep:
    def test_grid_order_and_size(self, points):
        assert [(p.node_mtbf_h, p.scheduler) for p in points] == [
            (0.0, "hadar"), (0.0, "tiresias"), (8.0, "hadar"), (8.0, "tiresias"),
        ]

    def test_baseline_point_has_no_faults(self, points):
        for p in points:
            if p.node_mtbf_h <= 0:
                assert p.faults == 0 and p.rollbacks == 0 and p.rejections == 0

    def test_every_point_completes_the_workload(self, points):
        assert all(p.completed == p.num_jobs for p in points)

    def test_faulty_points_record_faults(self, points):
        assert all(p.faults > 0 for p in points if p.node_mtbf_h > 0)

    def test_as_dict_roundtrips_fields(self, points):
        d = points[0].as_dict()
        assert d["scheduler"] == "hadar"
        assert set(d) == {f for f in ResiliencePoint.__slots__}

    def test_render_includes_degradation_factor(self, points):
        table = render_degradation(points)
        assert "x_base" in table
        assert "off" in table  # the faults-off baseline rows
        assert len(table.splitlines()) == 2 + len(points)


class TestConfigValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ResilienceConfig(node_mtbf_hours=())

    def test_negative_mtbf_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ResilienceConfig(node_mtbf_hours=(-1.0,))
