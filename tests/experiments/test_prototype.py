"""Tests for the prototype (Table III / Fig. 10) experiment."""

import pytest

from repro.experiments.prototype import prototype_trace, run_prototype


class TestTrace:
    def test_ten_jobs_all_table2_models(self):
        trace = prototype_trace()
        assert len(trace) == 10
        models = {j.model.name for j in trace}
        assert models == {"resnet50", "resnet18", "lstm", "cyclegan", "transformer"}

    def test_gangs_fit_single_types(self):
        """Gavel needs ≤2 workers per job on the 2-per-type prototype."""
        assert all(j.num_workers <= 2 for j in prototype_trace())


class TestResults:
    @pytest.fixture(scope="class")
    def results(self):
        return run_prototype()

    def test_table3_rows(self, results):
        labels = {label for label, _ in results.table3.rows}
        assert labels == {
            f"{s}/{k}"
            for s in ("hadar", "gavel", "tiresias")
            for k in ("physical", "simulated")
        }

    def test_hadar_wins_jct_both_kinds(self, results):
        for kind in ("physical", "simulated"):
            hadar = results.table3.value(f"hadar/{kind}", "jct_h")
            gavel = results.table3.value(f"gavel/{kind}", "jct_h")
            tiresias = results.table3.value(f"tiresias/{kind}", "jct_h")
            assert hadar < gavel < tiresias

    def test_sim_physical_agree_within_10pct(self, results):
        """Table III: 'the JCT differs within 10% between the simulation
        and prototype experiments'."""
        for sched in ("hadar", "gavel", "tiresias"):
            phys = results.table3.value(f"{sched}/physical", "jct_h")
            sim = results.table3.value(f"{sched}/simulated", "jct_h")
            assert abs(phys - sim) / sim < 0.10

    def test_fig10_has_three_schedulers(self, results):
        labels = [label for label, _ in results.fig10.rows]
        assert labels == ["hadar", "gavel", "tiresias"]
        for label in labels:
            assert 0.0 < results.fig10.value(label, "utilization") <= 1.0
