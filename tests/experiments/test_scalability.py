"""Tests for the Fig. 7 decision-latency measurement."""

from repro.experiments.scalability import measure_decision_times


class TestScalability:
    def test_small_sweep(self):
        timings = measure_decision_times((8, 32))
        assert [t.num_jobs for t in timings] == [8, 32]
        for t in timings:
            assert set(t.seconds) == {"hadar", "gavel"}
            assert all(v >= 0.0 for v in t.seconds.values())

    def test_cluster_grows_with_jobs(self):
        timings = measure_decision_times((32, 64))
        assert timings[1].cluster_gpus == 2 * timings[0].cluster_gpus
