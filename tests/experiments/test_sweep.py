"""Tests for the generic parameter sweep."""

import pytest

from repro.core import HadarScheduler
from repro.experiments.sweep import ParameterSweep, SweepPoint
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate


class TestSweep:
    @pytest.fixture
    def sweep(self, no_comm_cluster, tiny_trace):
        def build(params):
            return simulate(
                no_comm_cluster,
                tiny_trace,
                HadarScheduler(),
                round_length=params["round_min"] * 60.0,
                checkpoint=NoOverheadCheckpoint(),
            )

        return ParameterSweep(
            grid={"round_min": (6.0, 24.0), "variant": ("a",)},
            build=build,
        )

    def test_points_cartesian_and_ordered(self, sweep):
        points = sweep.points()
        assert points == [
            {"round_min": 6.0, "variant": "a"},
            {"round_min": 24.0, "variant": "a"},
        ]

    def test_run_collects_standard_metrics(self, sweep):
        results = sweep.run()
        assert len(results) == 2
        for point in results:
            assert point["completed"] == 3.0
            assert point["mean_jct_h"] > 0
            assert point["round_min"] in (6.0, 24.0)

    def test_extra_metrics(self, no_comm_cluster, tiny_trace):
        sweep = ParameterSweep(
            grid={"x": (1,)},
            build=lambda p: simulate(
                no_comm_cluster, tiny_trace, HadarScheduler(),
                checkpoint=NoOverheadCheckpoint(),
            ),
            extra_metrics={"invocations": lambda r: r.scheduling_invocations},
        )
        (point,) = sweep.run()
        assert point["invocations"] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSweep(grid={}, build=lambda p: None)
        with pytest.raises(ValueError):
            ParameterSweep(grid={"a": ()}, build=lambda p: None)

    def test_point_getitem_falls_through(self):
        p = SweepPoint(params={"a": 1}, metrics={"m": 2.0})
        assert p["a"] == 1
        assert p["m"] == 2.0
        with pytest.raises(KeyError):
            p["nope"]
