"""Tests for the heterogeneity sensitivity sweep."""

import pytest

from repro.experiments.heterogeneity import (
    CLUSTER_FAMILY,
    HeterogeneityPoint,
    heterogeneity_sweep,
)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return heterogeneity_sweep(num_jobs=16, seed=2)

    def test_one_point_per_family_member(self, points):
        assert [p.name for p in points] == list(CLUSTER_FAMILY)

    def test_all_points_have_positive_jcts(self, points):
        for p in points:
            assert p.hadar_mean_jct_h > 0
            assert p.blind_mean_jct_h > 0

    def test_awareness_gain_grows_with_diversity(self, points):
        """The core claim: heterogeneity-awareness pays more on more
        heterogeneous clusters."""
        by_name = {p.name: p for p in points}
        assert (
            by_name["three-types"].awareness_gain
            > by_name["homogeneous"].awareness_gain * 0.99
        )

    def test_homogeneous_cluster_near_parity(self, points):
        """With one device type there is nothing to be aware of; the gap
        reduces to scheduling-discipline differences only."""
        homo = points[0]
        assert homo.name == "homogeneous"
        assert homo.awareness_gain < 3.0

    def test_gain_property(self):
        p = HeterogeneityPoint("x", 1, hadar_mean_jct_h=2.0, blind_mean_jct_h=6.0)
        assert p.awareness_gain == pytest.approx(3.0)
