"""Unit tests for the comparison runner."""

import pytest

from repro.baselines import YarnCapacityScheduler
from repro.core import HadarScheduler
from repro.experiments.runner import run_comparison
from repro.sim.checkpoint import NoOverheadCheckpoint


@pytest.fixture
def run(no_comm_cluster, tiny_trace):
    return run_comparison(
        no_comm_cluster,
        tiny_trace,
        {"hadar": HadarScheduler, "yarn-cs": YarnCapacityScheduler},
        checkpoint=NoOverheadCheckpoint(),
    )


class TestRunner:
    def test_all_schedulers_ran(self, run):
        assert set(run.results) == {"hadar", "yarn-cs"}
        assert all(r.all_completed for r in run.results.values())

    def test_table_has_all_rows_and_columns(self, run):
        table = run.table()
        labels = [label for label, _ in table.rows]
        assert labels == ["hadar", "yarn-cs"]
        for col in ("mean_jct_h", "makespan_h", "utilization", "ftf_mean"):
            assert table.value("hadar", col) >= 0.0

    def test_improvement_helper(self, run):
        factor = run.improvement("mean_jct_h", better="hadar", worse="yarn-cs")
        assert factor > 0.0
