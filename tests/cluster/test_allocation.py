"""Unit tests for Allocation."""

import pytest

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation


class TestConstruction:
    def test_basic(self):
        alloc = Allocation({(0, "V100"): 2, (1, "K80"): 1})
        assert alloc.total_workers == 3
        assert alloc.gpu_types == {"V100", "K80"}
        assert alloc.node_ids == {0, 1}

    def test_zero_counts_dropped(self):
        alloc = Allocation({(0, "V100"): 2, (1, "K80"): 0})
        assert (1, "K80") not in alloc.placements

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Allocation({(0, "V100"): -1})

    def test_empty_is_falsy(self):
        assert not EMPTY_ALLOCATION
        assert bool(Allocation({(0, "V100"): 1}))

    def test_from_pairs_merges_duplicates(self):
        alloc = Allocation.from_pairs([(0, "V100", 1), (0, "V100", 2)])
        assert alloc.placements[(0, "V100")] == 3

    def test_single(self):
        assert Allocation.single(2, "K80", 3).count_on_node(2) == 3


class TestIdentity:
    def test_equality_ignores_dict_order(self):
        a = Allocation({(0, "V100"): 1, (1, "K80"): 2})
        b = Allocation({(1, "K80"): 2, (0, "V100"): 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Allocation({(0, "V100"): 1}) != Allocation({(0, "V100"): 2})

    def test_usable_in_sets(self):
        s = {Allocation({(0, "V100"): 1}), Allocation({(0, "V100"): 1})}
        assert len(s) == 1

    def test_iteration_is_sorted(self):
        alloc = Allocation({(1, "K80"): 1, (0, "V100"): 1})
        keys = [k for k, _ in alloc]
        assert keys == sorted(keys)


class TestViews:
    def test_consolidated(self):
        assert Allocation({(0, "V100"): 2, (0, "K80"): 1}).is_consolidated
        assert not Allocation({(0, "V100"): 1, (1, "V100"): 1}).is_consolidated
        assert EMPTY_ALLOCATION.is_consolidated

    def test_homogeneous(self):
        assert Allocation({(0, "V100"): 1, (1, "V100"): 1}).is_homogeneous
        assert not Allocation({(0, "V100"): 1, (0, "K80"): 1}).is_homogeneous
        assert EMPTY_ALLOCATION.is_homogeneous

    def test_count_by_type(self):
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 1, (1, "K80"): 1})
        assert alloc.count_by_type() == {"V100": 3, "K80": 1}

    def test_merged_with(self):
        a = Allocation({(0, "V100"): 1})
        b = Allocation({(0, "V100"): 1, (1, "K80"): 2})
        merged = a.merged_with(b)
        assert merged.placements == {(0, "V100"): 2, (1, "K80"): 2}
        # Inputs untouched.
        assert a.total_workers == 1
