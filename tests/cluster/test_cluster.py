"""Unit tests for Cluster and the paper's builders."""

import pytest

from repro.cluster.cluster import (
    Cluster,
    homogeneous_node_cluster,
    prototype_cluster,
    simulated_cluster,
)
from repro.cluster.node import Node


class TestCluster:
    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Cluster([Node(0, {"V100": 1}), Node(0, {"K80": 1})])

    def test_capacity_queries(self, small_cluster):
        assert small_cluster.capacity("V100") == 4
        assert small_cluster.capacity("P100") == 3
        assert small_cluster.capacity("K80") == 2
        assert small_cluster.total_gpus == 9
        assert small_cluster.gpu_types == ("K80", "P100", "V100")

    def test_node_lookup(self, small_cluster):
        assert small_cluster.node(1).node_id == 1
        with pytest.raises(KeyError):
            small_cluster.node(99)

    def test_nodes_with_type(self, small_cluster):
        ids = [n.node_id for n in small_cluster.nodes_with_type("K80")]
        assert ids == [0, 2]

    def test_fresh_state_is_all_free(self, small_cluster):
        state = small_cluster.fresh_state()
        assert state.total_free() == small_cluster.total_gpus


class TestBuilders:
    def test_simulated_cluster_matches_paper(self):
        cluster = simulated_cluster()
        # Sec. IV-A: 15 nodes, 20 GPUs of each of V100/P100/K80.
        assert cluster.num_nodes == 15
        assert cluster.capacity_by_type() == {"V100": 20, "P100": 20, "K80": 20}

    def test_simulated_cluster_scales(self):
        cluster = simulated_cluster(scale=3)
        assert cluster.capacity("V100") == 60
        assert cluster.total_gpus == 180

    def test_simulated_cluster_bad_scale(self):
        with pytest.raises(ValueError):
            simulated_cluster(scale=0)

    def test_prototype_cluster_matches_paper(self):
        cluster = prototype_cluster()
        # Sec. IV-B: 8 GPUs, two each of T4 / K520 / K80 / V100.
        assert cluster.total_gpus == 8
        assert cluster.capacity_by_type() == {
            "T4": 2,
            "K520": 2,
            "K80": 2,
            "V100": 2,
        }
        # Single-GPU instances: every gang of 2 must span servers.
        assert all(n.total_gpus == 1 for n in cluster.nodes)

    def test_homogeneous_builder_packs_nodes(self):
        cluster = homogeneous_node_cluster({"V100": 10}, gpus_per_node=4)
        sizes = sorted(n.total_gpus for n in cluster.nodes)
        assert sizes == [2, 4, 4]

    def test_homogeneous_builder_validates(self):
        with pytest.raises(ValueError):
            homogeneous_node_cluster({"V100": 4}, gpus_per_node=0)
        with pytest.raises(ValueError):
            homogeneous_node_cluster({"V100": -1})
