"""Unit tests for Node."""

import pytest

from repro.cluster.node import Node


class TestConstruction:
    def test_basic(self):
        node = Node(3, {"V100": 4})
        assert node.node_id == 3
        assert node.total_gpus == 4
        assert node.count("V100") == 4

    def test_mixed_inventory(self):
        node = Node(0, {"V100": 2, "K80": 2})
        assert node.total_gpus == 4
        assert node.has_type("V100") and node.has_type("K80")
        assert not node.has_type("P100")

    def test_zero_counts_dropped(self):
        node = Node(0, {"V100": 2, "K80": 0})
        assert "K80" not in node.gpus

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Node(-1, {"V100": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative GPU count"):
            Node(0, {"V100": -1})

    def test_unknown_gpu_type_rejected(self):
        with pytest.raises(KeyError):
            Node(0, {"NOT-A-GPU": 1})

    def test_bad_network_rejected(self):
        with pytest.raises(ValueError, match="network_gbps"):
            Node(0, {"V100": 1}, network_gbps=0.0)

    def test_empty_node_allowed(self):
        assert Node(0, {}).total_gpus == 0


class TestQueries:
    def test_count_missing_type_is_zero(self):
        assert Node(0, {"V100": 2}).count("K80") == 0

    def test_str_lists_inventory(self):
        s = str(Node(1, {"K80": 2, "V100": 1}))
        assert "K80" in s and "V100" in s
