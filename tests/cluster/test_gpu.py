"""Unit tests for the accelerator catalog."""

import pytest

from repro.cluster.gpu import GPU_CATALOG, GPUType, gpu_type, register_gpu_type


class TestCatalog:
    def test_paper_types_present(self):
        for name in ("V100", "P100", "K80", "T4", "K520"):
            assert name in GPU_CATALOG

    def test_lookup_returns_same_object(self):
        assert gpu_type("V100") is GPU_CATALOG["V100"]

    def test_unknown_type_raises_with_known_list(self):
        with pytest.raises(KeyError, match="V100"):
            gpu_type("H100-nope")

    def test_catalog_generations_ordered_sanely(self):
        # Newer NVIDIA datacenter generations are faster.
        assert gpu_type("V100").peak_fp32_tflops > gpu_type("P100").peak_fp32_tflops
        assert gpu_type("P100").peak_fp32_tflops > gpu_type("K80").peak_fp32_tflops

    def test_str(self):
        assert str(gpu_type("K80")) == "K80"


class TestRegister:
    def test_register_and_lookup(self):
        custom = GPUType("TPUv3-test", 16.0, 123.0, 64.0, 2018)
        register_gpu_type(custom)
        try:
            assert gpu_type("TPUv3-test") is custom
        finally:
            del GPU_CATALOG["TPUv3-test"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_gpu_type(GPUType("V100", 16.0, 14.0, 128.0, 2017))

    def test_duplicate_with_overwrite(self):
        original = GPU_CATALOG["A100"]
        replacement = GPUType("A100", 80.0, 19.5, 256.0, 2020)
        register_gpu_type(replacement, overwrite=True)
        try:
            assert gpu_type("A100").memory_gb == 80.0
        finally:
            GPU_CATALOG["A100"] = original
