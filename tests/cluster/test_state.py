"""Unit tests for ClusterState bookkeeping."""

import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState


@pytest.fixture
def state(small_cluster):
    return small_cluster.fresh_state()


class TestQueries:
    def test_initially_all_free(self, state, small_cluster):
        assert state.total_free() == small_cluster.total_gpus
        assert state.total_used() == 0
        assert not state.is_full()

    def test_free_by_type(self, state):
        assert state.free_by_type() == {"V100": 4, "P100": 3, "K80": 2}

    def test_slots_sorted(self, state):
        assert list(state.slots) == sorted(state.slots)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClusterState({(0, "V100"): -1})


class TestAllocateRelease:
    def test_roundtrip(self, state):
        alloc = Allocation({(0, "V100"): 2, (2, "K80"): 1})
        assert state.can_fit(alloc)
        state.allocate(alloc)
        assert state.free(0, "V100") == 0
        assert state.used(2, "K80") == 1
        state.release(alloc)
        assert state.total_used() == 0

    def test_overallocate_rejected(self, state):
        with pytest.raises(ValueError, match="does not fit"):
            state.allocate(Allocation({(0, "V100"): 3}))

    def test_allocate_unknown_slot_rejected(self, state):
        assert not state.can_fit(Allocation({(9, "V100"): 1}))
        with pytest.raises(ValueError):
            state.allocate(Allocation({(9, "V100"): 1}))

    def test_over_release_rejected(self, state):
        with pytest.raises(ValueError, match="overflows"):
            state.release(Allocation({(0, "V100"): 1}))

    def test_partial_release_check_is_atomic(self, state):
        state.allocate(Allocation({(0, "V100"): 1}))
        bad = Allocation({(0, "V100"): 1, (1, "V100"): 1})
        with pytest.raises(ValueError):
            state.release(bad)
        # Nothing was released by the failed call.
        assert state.used(0, "V100") == 1
        assert state.used(1, "V100") == 0

    def test_is_full(self):
        state = ClusterState({(0, "V100"): 1})
        state.allocate(Allocation({(0, "V100"): 1}))
        assert state.is_full()


class TestCopyAndKey:
    def test_copy_is_independent(self, state):
        clone = state.copy()
        clone.allocate(Allocation({(0, "V100"): 2}))
        assert state.free(0, "V100") == 2
        assert clone.free(0, "V100") == 0

    def test_key_changes_with_occupancy(self, state):
        k0 = state.key()
        state.allocate(Allocation({(0, "V100"): 1}))
        assert state.key() != k0
        state.release(Allocation({(0, "V100"): 1}))
        assert state.key() == k0

    def test_equality(self, small_cluster):
        a = small_cluster.fresh_state()
        b = small_cluster.fresh_state()
        assert a == b
        a.allocate(Allocation({(0, "V100"): 1}))
        assert a != b

    def test_free_slots_iterates_only_free(self, state):
        state.allocate(Allocation({(0, "V100"): 2, (0, "K80"): 1}))
        slots = dict(state.free_slots())
        assert (0, "V100") not in slots
        assert (0, "K80") not in slots
        assert slots[(1, "V100")] == 2
