"""Unit tests for the communication-cost model."""

import pytest

from repro.cluster.allocation import EMPTY_ALLOCATION, Allocation
from repro.cluster.topology import CommunicationModel, ring_allreduce_seconds

MB = 1e6


class TestRingAllreduce:
    def test_single_participant_is_free(self):
        assert ring_allreduce_seconds(100 * MB, 1, 25.0) == 0.0

    def test_zero_bytes_is_free(self):
        assert ring_allreduce_seconds(0.0, 4, 25.0) == 0.0

    def test_scales_with_model_size(self):
        small = ring_allreduce_seconds(10 * MB, 4, 25.0)
        big = ring_allreduce_seconds(100 * MB, 4, 25.0)
        assert big > small

    def test_scales_inverse_with_bandwidth(self):
        slow = ring_allreduce_seconds(100 * MB, 4, 10.0)
        fast = ring_allreduce_seconds(100 * MB, 4, 100.0)
        assert slow > fast

    def test_volume_factor_saturates_at_2x(self):
        # 2(n-1)/n approaches 2 from below; time grows sublinearly in n.
        t2 = ring_allreduce_seconds(100 * MB, 2, 25.0, latency_s=0.0)
        t16 = ring_allreduce_seconds(100 * MB, 16, 25.0, latency_s=0.0)
        assert t2 < t16 < 2.0 * t2

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            ring_allreduce_seconds(MB, 2, 0.0)


class TestCommunicationModel:
    def test_consolidated_gang_unpenalized(self):
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 4})
        assert comm.throughput_penalty(alloc, 100 * MB, 0.5) == 1.0
        assert comm.cost_multiplier(alloc, 100 * MB, 0.5) == 1.0

    def test_spread_gang_penalized(self):
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        p = comm.throughput_penalty(alloc, 100 * MB, 0.5)
        assert 0.0 < p < 1.0
        assert comm.cost_multiplier(alloc, 100 * MB, 0.5) == pytest.approx(1.0 / p)

    def test_penalty_worse_for_bigger_models(self):
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        p_small = comm.throughput_penalty(alloc, 10 * MB, 0.5)
        p_big = comm.throughput_penalty(alloc, 200 * MB, 0.5)
        assert p_big < p_small

    def test_penalty_milder_for_slower_compute(self):
        # A slow iteration amortizes the same sync time better.
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        p_fast_iter = comm.throughput_penalty(alloc, 100 * MB, 0.1)
        p_slow_iter = comm.throughput_penalty(alloc, 100 * MB, 5.0)
        assert p_slow_iter > p_fast_iter

    def test_disabled_model_is_free(self):
        comm = CommunicationModel.disabled()
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        assert comm.throughput_penalty(alloc, 500 * MB, 0.1) == 1.0
        assert comm.sync_seconds(alloc, 500 * MB) == 0.0

    def test_empty_allocation_free(self):
        comm = CommunicationModel()
        assert comm.sync_seconds(EMPTY_ALLOCATION, 100 * MB) == 0.0

    def test_allocation_free_variant_agrees(self):
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 2, (1, "V100"): 2})
        via_alloc = comm.throughput_penalty(alloc, 100 * MB, 0.5)
        via_n = comm.throughput_penalty_n(4, True, 100 * MB, 0.5)
        assert via_alloc == pytest.approx(via_n)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommunicationModel(intra_node_gbps=0.0)
        with pytest.raises(ValueError):
            CommunicationModel(latency_s=-1.0)
        comm = CommunicationModel()
        alloc = Allocation({(0, "V100"): 1, (1, "V100"): 1})
        with pytest.raises(ValueError):
            comm.throughput_penalty(alloc, 100 * MB, 0.0)
