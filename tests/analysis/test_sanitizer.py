"""InvariantSanitizer: each invariant's negative path fires the right rule,
and sanitized end-to-end runs of every scheduler stay violation-free."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolation
from repro.baselines.gavel.policy import AllocationMatrix
from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core import HadarScheduler, ProfilingScheduler
from repro.core.pricing import PriceBook
from repro.core.scheduler import HadarConfig, RoundAudit
from repro.sim.engine import simulate
from repro.sim.progress import JobRuntime, JobState
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from tests.conftest import make_job


def running(job_id, workers, placements):
    rt = JobRuntime(job=make_job(job_id, workers=workers))
    rt.state = JobState.RUNNING
    rt.allocation = Allocation(placements)
    return rt


class TestCapacityConservation:
    def test_gang_holding_unaccounted_devices_fires(self):
        state = ClusterState({(0, "V100"): 4})  # all free, yet a gang "runs"
        rt = running(0, 2, {(0, "V100"): 2})
        sanitizer = InvariantSanitizer()
        with pytest.raises(InvariantViolation) as exc:
            sanitizer.check_capacity(state, [rt], round_index=3, now=720.0)
        assert exc.value.rule == "capacity"
        assert exc.value.round_index == 3
        assert exc.value.details["held_by_gangs"] == 2
        assert exc.value.details["state_used"] == 0

    def test_over_capacity_free_count_fires(self):
        state = ClusterState({(0, "V100"): 4})
        state._free[(0, "V100")] = 6  # simulated memory corruption
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_capacity(state)
        assert exc.value.rule == "capacity"

    def test_gang_on_unknown_slot_fires(self):
        state = ClusterState({(0, "V100"): 4})
        rt = running(0, 1, {(9, "K80"): 1})
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_capacity(state, [rt])
        assert exc.value.rule == "capacity"
        assert exc.value.details["slot"] == (9, "K80")

    def test_consistent_state_passes(self):
        state = ClusterState({(0, "V100"): 4, (1, "K80"): 2})
        rt = running(0, 3, {(0, "V100"): 3})
        state.allocate(rt.allocation)
        InvariantSanitizer().check_capacity(state, [rt])


class TestGangCompleteness:
    def test_short_gang_fires(self):
        rt = running(7, 4, {(0, "V100"): 2})  # needs 4, holds 2
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_gangs([rt], now=360.0)
        assert exc.value.rule == "gang"
        assert exc.value.job_id == 7
        assert exc.value.details == {"held": 2, "num_workers": 4}

    def test_queued_job_holding_devices_fires(self):
        rt = JobRuntime(job=make_job(1, workers=2))
        rt.state = JobState.QUEUED
        rt.allocation = Allocation.single(0, "V100", 2)
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_gangs([rt])
        assert exc.value.rule == "gang"

    def test_full_gang_passes(self):
        rt = running(0, 4, {(0, "V100"): 2, (1, "K80"): 2})
        InvariantSanitizer().check_gangs([rt])


class TestPriceBounds:
    def test_out_of_bounds_price_fires(self):
        class BrokenPrices:
            u_min = {"V100": 1.0}
            u_max = {"V100": 2.0}

            def price(self, node_id, type_name, state):
                return 5.0  # escaped U_max

        state = ClusterState({(0, "V100"): 4})
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_price_bounds(BrokenPrices(), state)
        assert exc.value.rule == "price-bounds"
        assert exc.value.details["u_max"] == 2.0

    def test_corrupted_occupancy_escapes_bounds(self):
        # free > capacity means γ < 0, pushing Eq. 5 below U_min.
        prices = PriceBook(u_min={"V100": 1.0}, u_max={"V100": 8.0}, eta=1.0)
        state = ClusterState({(0, "V100"): 4})
        state._free[(0, "V100")] = 8
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_price_bounds(prices, state)
        assert exc.value.rule == "price-bounds"

    def test_calibrated_book_within_bounds_at_any_occupancy(self):
        prices = PriceBook(u_min={"V100": 1.0}, u_max={"V100": 8.0}, eta=1.0)
        state = ClusterState({(0, "V100"): 4})
        sanitizer = InvariantSanitizer()
        for _ in range(4):
            sanitizer.check_price_bounds(prices, state)
            state.allocate(Allocation.single(0, "V100", 1))
        sanitizer.check_price_bounds(prices, state)
        assert sanitizer.ok


class TestPayoffPositivity:
    def test_non_positive_payoff_fires(self):
        chosen = {3: SimpleNamespace(payoff=0.0, utility=1.0, cost=1.0)}
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_payoffs(chosen, round_index=1)
        assert exc.value.rule == "payoff"
        assert exc.value.job_id == 3

    def test_nan_payoff_fires(self):
        chosen = {0: SimpleNamespace(payoff=float("nan"), utility=1.0, cost=1.0)}
        with pytest.raises(InvariantViolation):
            InvariantSanitizer().check_payoffs(chosen)

    def test_positive_payoffs_pass(self):
        chosen = {
            0: SimpleNamespace(payoff=0.5, utility=1.0, cost=0.5),
            1: SimpleNamespace(payoff=2.0, utility=3.0, cost=1.0),
        }
        InvariantSanitizer().check_payoffs(chosen)


class TestPrimalDualIncrement:
    @staticmethod
    def record(primal, dual, alpha):
        return RoundAudit(
            now=0.0,
            primal_increment=primal,
            dual_increment=dual,
            alpha=alpha,
            jobs_admitted=1,
            total_payoff=primal,
            total_cost=0.0,
        )

    def test_lemma2_violation_fires(self):
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_round_audit(self.record(0.4, 2.0, 1.0))
        assert exc.value.rule == "primal-dual"
        assert exc.value.details["bound"] == pytest.approx(2.0)

    def test_alpha_scales_the_bound(self):
        # primal 0.5 ≥ dual 2.0 / α 4.0 = 0.5: satisfied exactly.
        InvariantSanitizer().check_round_audit(self.record(0.5, 2.0, 4.0))

    def test_tolerance_absorbs_float_noise(self):
        InvariantSanitizer().check_round_audit(
            self.record(1.0 - 1e-12, 1.0, 1.0)
        )


def matrix(job_ids, types, rows):
    return AllocationMatrix(
        job_ids=tuple(job_ids),
        types=tuple(types),
        values=np.array(rows, dtype=float),
    )


class TestGavelFeasibility:
    TYPES = ("V100", "K80")
    CAPACITY = {"V100": 4, "K80": 4}

    def test_entry_outside_unit_interval_fires(self):
        y = matrix([0], self.TYPES, [[1.5, 0.0]])
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_gavel_feasibility(
                y, {0: 1}, self.CAPACITY, round_index=2
            )
        assert exc.value.rule == "gavel-feasibility"
        assert exc.value.job_id == 0
        assert exc.value.details["fraction"] == 1.5

    def test_row_sum_past_one_fires(self):
        # Each entry is a legal fraction, but the job would spend 140%
        # of its time running.
        y = matrix([7], self.TYPES, [[0.8, 0.6]])
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_gavel_feasibility(
                y, {7: 2}, self.CAPACITY
            )
        assert exc.value.rule == "gavel-feasibility"
        assert exc.value.details["row_sum"] == pytest.approx(1.4)

    def test_capacity_overcommit_fires(self):
        # Rows are fine individually; together they promise 3 gangs of 4
        # workers full-time on 4 V100s.
        y = matrix([0, 1, 2], self.TYPES, [[1.0, 0.0]] * 3)
        workers = {0: 4, 1: 4, 2: 4}
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_gavel_feasibility(
                y, workers, self.CAPACITY
            )
        assert exc.value.rule == "gavel-feasibility"
        assert exc.value.details["type"] == "V100"
        assert exc.value.details["weighted_demand"] == pytest.approx(12.0)
        assert exc.value.details["capacity"] == 4.0

    def test_feasible_matrix_passes(self):
        # 2 workers × (0.5 + 0.5) + 4 workers × 0.5 on each type = 3 ≤ 4.
        y = matrix([0, 1], self.TYPES, [[0.5, 0.5], [0.5, 0.5]])
        sanitizer = InvariantSanitizer()
        sanitizer.check_gavel_feasibility(y, {0: 2, 1: 4}, self.CAPACITY)
        assert sanitizer.ok

    def test_tolerance_absorbs_lp_noise(self):
        y = matrix([0], self.TYPES, [[1.0 + 1e-9, 0.0]])
        sanitizer = InvariantSanitizer(rel_tol=1e-6)
        sanitizer.check_gavel_feasibility(y, {0: 4}, self.CAPACITY)
        assert sanitizer.ok


def las(job_id, attained, state=JobState.QUEUED):
    rt = JobRuntime(job=make_job(job_id, workers=1))
    rt.state = state
    rt.attained_service = attained
    return rt


class TestTiresiasMonotonicity:
    THRESHOLD = 3600.0

    def test_promotion_back_to_high_queue_fires(self):
        sanitizer = InvariantSanitizer()
        rt = las(4, 5000.0)
        sanitizer.check_tiresias_monotonicity({4}, {4: rt}, self.THRESHOLD)
        with pytest.raises(InvariantViolation) as exc:
            sanitizer.check_tiresias_monotonicity(
                set(), {4: rt}, self.THRESHOLD, round_index=9
            )
        assert exc.value.rule == "queue-monotonicity"
        assert exc.value.job_id == 4

    def test_premature_demotion_fires(self):
        rt = las(1, 100.0)  # far below the threshold, yet demoted
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_tiresias_monotonicity(
                {1}, {1: rt}, self.THRESHOLD
            )
        assert exc.value.rule == "queue-monotonicity"
        assert exc.value.details["attained_service"] == 100.0

    def test_missed_demotion_fires(self):
        rt = las(2, 5000.0)  # past the threshold but still in queue 0
        with pytest.raises(InvariantViolation) as exc:
            InvariantSanitizer().check_tiresias_monotonicity(
                set(), {2: rt}, self.THRESHOLD
            )
        assert exc.value.rule == "queue-monotonicity"
        assert exc.value.job_id == 2

    def test_completed_job_is_exempt_from_demotion(self):
        # A job can cross the threshold in its final round, after the
        # last demotion sweep that would ever see it.
        rt = las(3, 5000.0, state=JobState.COMPLETE)
        sanitizer = InvariantSanitizer()
        sanitizer.check_tiresias_monotonicity(set(), {3: rt}, self.THRESHOLD)
        assert sanitizer.ok

    def test_consistent_rounds_pass(self):
        sanitizer = InvariantSanitizer()
        hot = las(0, 0.0)
        cold = las(1, 4000.0)
        for demoted in ({1}, {1}, {0, 1}):
            hot.attained_service += 1500.0
            sanitizer.check_tiresias_monotonicity(
                demoted, {0: hot, 1: cold}, self.THRESHOLD
            )
        assert sanitizer.ok


class TestCollectMode:
    def test_collects_instead_of_raising(self):
        sanitizer = InvariantSanitizer(mode="collect")
        rt = running(0, 4, {(0, "V100"): 2})
        sanitizer.check_gangs([rt])
        sanitizer.check_payoffs({1: SimpleNamespace(payoff=-1.0)})
        assert not sanitizer.ok
        assert [v.rule for v in sanitizer.violations] == ["gang", "payoff"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantSanitizer(mode="warn")


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_philly_trace(
            PhillyTraceConfig(num_jobs=12, arrival_pattern="static", seed=7)
        )

    def test_hadar_run_is_violation_free(self, paper_cluster_cls, trace):
        sanitizer = InvariantSanitizer()
        result = simulate(
            paper_cluster_cls,
            trace,
            HadarScheduler(HadarConfig(record_audit=True)),
            sanitizer=sanitizer,
        )
        assert result.all_completed
        assert sanitizer.ok
        assert sanitizer.rounds_checked == result.scheduling_invocations
        assert sanitizer.rounds_checked > 0

    @pytest.mark.parametrize("name", ["gavel", "tiresias"])
    def test_baselines_are_violation_free(self, name, paper_cluster_cls, trace):
        from repro.baselines import GavelScheduler, TiresiasScheduler

        factory = {"gavel": GavelScheduler, "tiresias": TiresiasScheduler}[name]
        sanitizer = InvariantSanitizer()
        result = simulate(paper_cluster_cls, trace, factory(), sanitizer=sanitizer)
        assert result.all_completed
        assert sanitizer.ok
        assert sanitizer.rounds_checked == result.scheduling_invocations

    def test_gavel_matrix_feasibility_checked_end_to_end(
        self, paper_cluster_cls, trace
    ):
        from repro.baselines import GavelScheduler

        scheduler = GavelScheduler()
        sanitizer = InvariantSanitizer()
        result = simulate(paper_cluster_cls, trace, scheduler, sanitizer=sanitizer)
        assert result.all_completed
        assert sanitizer.ok
        # The surface the feasibility check consumed every round.
        assert scheduler.last_allocation_matrix is not None

    def test_tiresias_demotions_stay_monotone_end_to_end(
        self, paper_cluster_cls, trace
    ):
        from repro.baselines import TiresiasScheduler
        from repro.baselines.tiresias import TiresiasConfig

        # Threshold low enough that demotions actually happen, so the
        # monotonicity check has a non-trivial set to validate.
        scheduler = TiresiasScheduler(TiresiasConfig(queue_threshold_gpu_s=600.0))
        sanitizer = InvariantSanitizer()
        result = simulate(paper_cluster_cls, trace, scheduler, sanitizer=sanitizer)
        assert result.all_completed
        assert sanitizer.ok
        assert scheduler.demoted_jobs  # the check saw real demotions

    def test_profiling_wrapper_still_reaches_hadar_internals(
        self, paper_cluster_cls, trace
    ):
        sanitizer = InvariantSanitizer()
        scheduler = ProfilingScheduler(HadarScheduler(HadarConfig(record_audit=True)))
        result = simulate(paper_cluster_cls, trace, scheduler, sanitizer=sanitizer)
        assert result.all_completed
        assert sanitizer.ok
        assert scheduler.inner.audit  # the audit trail the sanitizer consumed


@pytest.fixture(scope="class")
def paper_cluster_cls():
    from repro.cluster.cluster import simulated_cluster

    return simulated_cluster()


class TestViolationStructure:
    def test_message_carries_context(self):
        rt = running(5, 4, {(0, "V100"): 1})
        try:
            InvariantSanitizer().check_gangs([rt], round_index=12, now=4320.0)
        except InvariantViolation as exc:
            assert "[gang" in str(exc)
            assert "round 12" in str(exc)
            assert "job 5" in str(exc)
        else:  # pragma: no cover - the check must raise
            pytest.fail("expected InvariantViolation")
