"""The REPxxx linter: each rule fires on a seeded fixture, stays quiet on
clean code, honours suppressions, and passes over the shipped ``src/``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ALL_RULES,
    FloatEqualityRule,
    MutableDefaultRule,
    NondeterminismRule,
    PrintInLibraryRule,
    SilentExceptionRule,
    UnorderedFloatSumRule,
    UnorderedIterationRule,
    UnseededRNGRule,
    apply_fixes,
    lint_paths,
    lint_source,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"

CORE = "src/repro/core/fake.py"
"""Synthetic path inside the determinism-critical scope."""


def rules_of(findings):
    return [f.rule for f in findings]


class TestFloatEquality:
    def test_float_literal_comparison_flagged(self):
        findings = lint_source("if x == 0.0:\n    pass\n", CORE)
        assert rules_of(findings) == ["REP001"]

    def test_negative_literal_and_noteq_flagged(self):
        assert rules_of(lint_source("ok = y != -1.5\n", CORE)) == ["REP001"]

    def test_price_like_names_flagged_without_literal(self):
        findings = lint_source("if a.payoff == b.payoff:\n    pass\n", CORE)
        assert rules_of(findings) == ["REP001"]

    def test_int_comparison_not_flagged(self):
        assert lint_source("if n == 0:\n    pass\n", CORE) == []

    def test_ordering_comparison_not_flagged(self):
        assert lint_source("if payoff <= 0.0:\n    pass\n", CORE) == []


class TestNondeterminism:
    def test_time_time_flagged_in_core(self):
        src = "import time\nstart = time.time()\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_time_time_through_alias(self):
        src = "import time as _time\nstart = _time.time()\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_monotonic_and_perf_counter_allowed(self):
        src = "import time\na = time.monotonic()\nb = time.perf_counter()\n"
        assert lint_source(src, CORE) == []

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_seeded_default_rng_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src, CORE) == []

    def test_stdlib_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_legacy_numpy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_out_of_scope_file_not_flagged(self):
        src = "import time\nstart = time.time()\n"
        assert lint_source(src, "src/repro/experiments/fake.py") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert rules_of(lint_source("def f(x=[]):\n    pass\n", CORE)) == ["REP003"]

    def test_dict_call_default_flagged(self):
        assert rules_of(lint_source("def f(x=dict()):\n    pass\n", CORE)) == ["REP003"]

    def test_kwonly_default_flagged(self):
        assert rules_of(lint_source("def f(*, x={}):\n    pass\n", CORE)) == ["REP003"]

    def test_none_default_allowed(self):
        assert lint_source("def f(x=None, y=()):\n    pass\n", CORE) == []


class TestUnorderedIteration:
    def test_for_over_set_call_flagged(self):
        src = "def f(items):\n    for x in set(items):\n        use(x)\n"
        assert rules_of(lint_source(src, CORE)) == ["REP004"]

    def test_for_over_set_variable_flagged(self):
        src = (
            "def f(items):\n"
            "    pending = {i.key for i in items}\n"
            "    for x in pending:\n"
            "        place(x)\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["REP004"]

    def test_annotated_set_variable_flagged(self):
        src = (
            "def f():\n"
            "    seen: set[str] = set()\n"
            "    return [x for x in seen]\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["REP004"]

    def test_min_with_key_over_set_flagged(self):
        src = "def f(types):\n    return min(frozenset(types), key=rate)\n"
        assert rules_of(lint_source(src, CORE)) == ["REP004"]

    def test_sorted_wrapping_allowed(self):
        src = (
            "def f(items):\n"
            "    pending = {i.key for i in items}\n"
            "    for x in sorted(pending):\n"
            "        place(x)\n"
        )
        assert lint_source(src, CORE) == []

    def test_order_free_reducers_exempt(self):
        src = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    return min(r(x) for x in s), any(x > 0 for x in s), len(s)\n"
        )
        assert lint_source(src, CORE) == []

    def test_membership_test_not_flagged(self):
        src = "def f(x):\n    return x in {'a', 'b'}\n"
        assert lint_source(src, CORE) == []


class TestFixMode:
    """``--fix``: mechanical REP004 repairs that preserve formatting."""

    def _fix(self, src: str, path: str = CORE) -> str:
        fixed, _ = apply_fixes(src, lint_source(src, path))
        return fixed

    def test_for_loop_iterable_wrapped(self):
        src = "def f(items):\n    for x in set(items):\n        use(x)\n"
        fixed = self._fix(src)
        assert fixed == "def f(items):\n    for x in sorted(set(items)):\n        use(x)\n"
        assert lint_source(fixed, CORE) == []

    def test_set_variable_wrapped(self):
        src = (
            "def f(items):\n"
            "    pending = {i.key for i in items}\n"
            "    for x in pending:  # placement order matters\n"
            "        place(x)\n"
        )
        fixed = self._fix(src)
        assert "for x in sorted(pending):  # placement order matters\n" in fixed
        assert lint_source(fixed, CORE) == []

    def test_comprehension_generator_wrapped(self):
        src = "def f(s):\n    s = set(s)\n    return [go(x) for x in s]\n"
        fixed = self._fix(src)
        assert "return [go(x) for x in sorted(s)]\n" in fixed
        assert lint_source(fixed, CORE) == []

    def test_min_with_key_argument_wrapped(self):
        src = "def f(types):\n    return min(frozenset(types), key=rate)\n"
        fixed = self._fix(src)
        assert "min(sorted(frozenset(types)), key=rate)" in fixed
        assert lint_source(fixed, CORE) == []

    def test_multiline_iterable_wrapped(self):
        src = (
            "def f(a, b):\n"
            "    for x in set(\n"
            "        a + b\n"
            "    ):\n"
            "        use(x)\n"
        )
        fixed = self._fix(src)
        assert "for x in sorted(set(\n" in fixed
        assert "    )):\n" in fixed
        assert lint_source(fixed, CORE) == []

    def test_multiple_findings_fixed_in_one_pass(self):
        src = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    for x in s:\n"
            "        use(x)\n"
            "    return {y: 1 for y in s}\n"
        )
        fixed, applied = apply_fixes(src, lint_source(src, CORE))
        assert applied == 2
        assert lint_source(fixed, CORE) == []

    def test_non_mechanical_rules_untouched(self):
        src = "def f(x=[]):\n    return x == 0.5\n"
        fixed, applied = apply_fixes(src, lint_source(src, CORE))
        assert applied == 0
        assert fixed == src

    def test_suppressed_findings_not_fixed(self):
        src = (
            "def f(s):\n"
            "    s = set(s)\n"
            "    for x in s:  # repro-lint: disable=REP004\n"
            "        use(x)\n"
        )
        fixed, applied = apply_fixes(src, lint_source(src, CORE))
        assert applied == 0
        assert fixed == src

    def test_fixable_flag_in_json_payload(self):
        findings = lint_source(
            "def f(s):\n    for x in set(s):\n        use(x)\n", CORE
        )
        assert [f.to_dict()["fixable"] for f in findings] == [True]
        unfixable = lint_source("x = y == 0.5\n", CORE)
        assert [f.to_dict()["fixable"] for f in unfixable] == [False]

    def test_main_fix_rewrites_and_exits_by_residual(self, tmp_path, capsys):
        target = tmp_path / "decider.py"
        target.write_text("def f(s):\n    for x in set(s):\n        use(x)\n")
        assert main(["--fix", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fixed 1 finding(s) in 1 file(s)." in out
        assert "sorted(set(s))" in target.read_text()

    def test_main_fix_exits_nonzero_when_findings_remain(self, tmp_path, capsys):
        target = tmp_path / "mixed.py"
        target.write_text(
            "def f(s):\n    for x in set(s):\n        use(x)\n    return s == 0.5\n"
        )
        assert main(["--fix", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "fixed 1 finding(s)" in out
        assert "REP001" in out  # the judgement-call finding survives


class TestSilentException:
    def test_bare_except_flagged_in_engine_path(self):
        src = "try:\n    go()\nexcept:\n    pass\n"
        assert rules_of(lint_source(src, "src/repro/sim/fake.py")) == ["REP005"]

    def test_swallowed_broad_exception_flagged(self):
        src = "try:\n    go()\nexcept Exception:\n    pass\n"
        assert rules_of(lint_source(src, "src/repro/baselines/fake.py")) == ["REP005"]

    def test_handled_broad_exception_allowed(self):
        src = "try:\n    go()\nexcept Exception as exc:\n    raise RuntimeError(str(exc))\n"
        assert lint_source(src, "src/repro/sim/fake.py") == []

    def test_narrow_swallow_allowed(self):
        src = "try:\n    go()\nexcept KeyError:\n    pass\n"
        assert lint_source(src, "src/repro/sim/fake.py") == []

    def test_out_of_scope_not_flagged(self):
        src = "try:\n    go()\nexcept:\n    pass\n"
        assert lint_source(src, "src/repro/metrics/fake.py") == []


class TestUnorderedFloatSum:
    def test_sum_over_set_call_flagged(self):
        src = "def f(prices):\n    return sum(set(prices))\n"
        assert rules_of(lint_source(src, CORE)) == ["REP006"]

    def test_sum_over_set_display_flagged(self):
        src = "def f(a, b):\n    return sum({a, b})\n"
        assert rules_of(lint_source(src, CORE)) == ["REP006"]

    def test_sum_over_set_variable_flagged(self):
        src = (
            "def f(gangs):\n"
            "    costs = {g.cost for g in gangs}\n"
            "    return sum(costs)\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["REP006"]

    def test_sum_over_annotated_set_variable_flagged(self):
        src = (
            "def f():\n"
            "    seen: frozenset[float] = frozenset()\n"
            "    return sum(seen)\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["REP006"]

    def test_sum_with_start_argument_flagged(self):
        src = "def f(xs):\n    return sum(frozenset(xs), 0.0)\n"
        assert rules_of(lint_source(src, CORE)) == ["REP006"]

    def test_sorted_operands_allowed(self):
        src = "def f(prices):\n    return sum(sorted(set(prices)))\n"
        assert lint_source(src, CORE) == []

    def test_math_fsum_exempt(self):
        src = (
            "import math\n"
            "def f(prices):\n"
            "    return math.fsum(set(prices))\n"
        )
        assert lint_source(src, CORE) == []

    def test_sum_over_list_not_flagged(self):
        src = "def f(xs):\n    return sum(xs) + sum([x * 2 for x in xs])\n"
        assert lint_source(src, CORE) == []

    def test_comprehension_over_set_left_to_rep004(self):
        """``sum(g(x) for x in s)`` is iteration — REP004's finding, not a
        second REP006 report on the same expression."""
        src = (
            "def f(gangs):\n"
            "    s = set(gangs)\n"
            "    return sum(x.cost for x in s)\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["REP004"]

    def test_no_fix_attached(self):
        """The satellite contract: --fix must not rewrite REP006 findings
        (forcing an accumulation order is a judgement call)."""
        src = "def f(prices):\n    return sum(set(prices))\n"
        findings = lint_source(src, CORE)
        assert [f.fix for f in findings] == [None]
        fixed, applied = apply_fixes(src, findings)
        assert applied == 0
        assert fixed == src

    def test_suppressible_per_line(self):
        src = (
            "def f(xs):\n"
            "    return sum(set(xs))  # repro-lint: disable=REP006\n"
        )
        assert lint_source(src, CORE) == []


class TestPrintInLibrary:
    def test_print_in_library_module_flagged(self):
        src = "def f(x):\n    print(x)\n    return x\n"
        assert rules_of(lint_source(src, "src/repro/metrics/jct.py")) == ["REP007"]

    def test_print_outside_repro_tree_ignored(self):
        src = "print('hello')\n"
        assert lint_source(src, "benchmarks/record_bench.py") == []

    def test_cli_module_exempt(self):
        src = "print('scheduler : hadar')\n"
        assert lint_source(src, "src/repro/cli.py") == []

    def test_dunder_main_exempt(self):
        src = "print('OK: 10 records')\n"
        assert lint_source(src, "src/repro/obs/__main__.py") == []

    def test_method_named_print_not_flagged(self):
        # Only the builtin is stdout; a .print() method is the caller's API.
        src = "def f(table):\n    table.print()\n"
        assert lint_source(src, "src/repro/metrics/table.py") == []

    def test_suppressible_per_line(self):
        src = "def f(x):\n    print(x)  # repro-lint: disable=REP007\n"
        assert lint_source(src, "src/repro/metrics/jct.py") == []


class TestSuppression:
    def test_disable_specific_rule(self):
        src = "if x == 0.0:  # repro-lint: disable=REP001\n    pass\n"
        assert lint_source(src, CORE) == []

    def test_disable_all(self):
        src = "if x == 0.0:  # repro-lint: disable=all\n    pass\n"
        assert lint_source(src, CORE) == []

    def test_disable_other_rule_does_not_waive(self):
        src = "if x == 0.0:  # repro-lint: disable=REP005\n    pass\n"
        assert rules_of(lint_source(src, CORE)) == ["REP001"]


class TestDriver:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", CORE)
        assert rules_of(findings) == ["REP000"]

    def test_finding_format_is_clickable(self):
        finding = lint_source("x = 1.0 == y\n", CORE)[0]
        assert finding.format().startswith(f"{CORE}:1:")
        assert "REP001" in finding.format()

    def test_main_exits_nonzero_on_seeded_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nprice = time.time()\nok = price == 1.0\n")
        code = main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP001" in out and "REP002" in out
        assert f"{bad}:2:" in out and f"{bad}:3:" in out

    def test_main_exits_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("def f(n):\n    return n + 1\n")
        assert main([str(tmp_path)]) == 0

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = y == 0.5\n")
        code = main(["--json", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload[0]["rule"] == "REP001"
        assert payload[0]["line"] == 1

    def test_rule_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = y == 0.5\ndef f(a=[]):\n    pass\n")
        assert main(["--rules", "REP003", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP003" in out and "REP001" not in out

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--rules", "REP999", str(tmp_path)])

    def test_nonexistent_path_rejected(self, tmp_path):
        # A typo'd path must not silently pass the CI gate.
        with pytest.raises(SystemExit):
            main([str(tmp_path / "no_such_dir")])


class TestUnseededRNG:
    """REP008: unseeded generator construction outside REP002's scope."""

    WORKLOAD = "src/repro/workload/fake.py"

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, self.WORKLOAD)) == ["REP008"]

    def test_explicit_none_seed_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert rules_of(lint_source(src, self.WORKLOAD)) == ["REP008"]

    def test_stdlib_random_flagged(self):
        src = "import random\nrng = random.Random()\n"
        assert rules_of(lint_source(src, self.WORKLOAD)) == ["REP008"]

    def test_seeded_construction_allowed(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "a = np.random.default_rng(7)\n"
            "b = np.random.default_rng([seed, node_id])\n"
            "c = np.random.default_rng(seed=cfg.seed)\n"
            "d = random.Random(3)\n"
        )
        assert lint_source(src, self.WORKLOAD) == []

    def test_deterministic_paths_left_to_rep002(self):
        # Inside REP002's scope the same call is its finding, not REP008's.
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]
        assert rules_of(lint_source(src, "src/repro/faults/fake.py")) == ["REP002"]

    def test_tests_tree_left_to_rep002(self):
        # The suite is REP002 scope too (flaky-by-construction tests);
        # REP008 stays out so the site is flagged exactly once.
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, "tests/fake.py")) == ["REP002"]

    def test_out_of_library_not_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint_source(src, "scripts/fake.py") == []


class TestShippedTreeIsClean:
    """The permanent gate: the linter must pass over the shipped sources —
    the library, the benchmark drivers, and the runnable examples (the CI
    lint step covers the same three trees)."""

    @pytest.mark.parametrize(
        "tree", ["src/repro", "benchmarks", "examples"]
    )
    def test_shipped_tree_has_no_findings(self, tree):
        findings = lint_paths([REPO_ROOT / tree])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_test_suite_is_deterministic(self):
        # The determinism rules gate tests/ too: an unseeded stream or a
        # wall-clock read makes a test flaky by construction.  Fixtures
        # that need nondeterminism on purpose carry inline waivers.
        findings = lint_paths(
            [REPO_ROOT / "tests"],
            rules=[NondeterminismRule, UnseededRNGRule],
        )
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_every_rule_has_id_and_doc(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for cls in (
            FloatEqualityRule,
            NondeterminismRule,
            MutableDefaultRule,
            UnorderedIterationRule,
            SilentExceptionRule,
            UnorderedFloatSumRule,
            PrintInLibraryRule,
            UnseededRNGRule,
        ):
            assert cls.__doc__
