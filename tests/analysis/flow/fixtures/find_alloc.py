"""REP010 fixture: a memoized search that reads past its memo key.

The module is deliberately named ``find_alloc`` so the default
:data:`~repro.analysis.flow.config.DEFAULT_CONFIG` memo specs match
these functions by trailing qualname.  ``_search_cached`` reads
``state.running_jobs``, which the ``(rt, state_key)`` key does not
capture — the coherence pass must flag it (in ``_search_cached``
directly and, via read propagation, in ``cached_find_alloc``).
``_generate_candidates`` stays within the guarded read set and must
not fire.
"""


def cached_find_alloc(ctx, rt, state, state_key=None):
    if state_key is None:
        state_key = state.key()
    return _search_cached(ctx, rt, state, state_key)


def _search_cached(ctx, rt, state, state_key):
    # Coherence bug: admission flips with the running set while the
    # memo key only captures the free-capacity vector.
    if rt.job_id in state.running_jobs:
        return None
    return state.free(0)


def _generate_candidates(ctx, model, w, rate_of, usable_desc, state, state_key):
    return [slot for slot in usable_desc if state.can_fit(slot, w)]
