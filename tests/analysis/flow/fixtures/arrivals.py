"""REP012 fixture: an engine-state class with an unsnapshotted attribute.

``SubmissionSource`` is bound to a :class:`SnapshotSpec` in the default
config (matched by the ``arrivals.SubmissionSource`` qualname suffix,
which this fixture module shares with the real one).  The class carries
every attribute the spec captures or waives — plus ``_carryover``, a
mutable accumulator that ``state_dict`` forgot.  The snapshot pass must
flag exactly that attribute: a restored source would silently drop the
carried-over jobs.  ``GoodSource`` has no spec and must stay clean.
"""


class SubmissionSource:
    """Stand-in with the real class's name and shape; never imported."""

    def __init__(self):
        self.jobs_per_hour = 40.0
        self.max_jobs = None
        self.seed = 0
        self.template = None
        self._rng = [0]
        self._next_job_id = 0
        self._emitted = 0
        self._clock = 0.0
        self._carryover = []  # the bug: mutable state, never captured

    def next_job(self):
        self._clock += 1.0
        self._emitted += 1
        self._next_job_id += 1
        self._carryover.append(self._clock)
        return self._clock

    def state_dict(self):
        return {
            "rng": list(self._rng),
            "next_job_id": self._next_job_id,
            "emitted": self._emitted,
            "clock": self._clock,
        }

    def load_state_dict(self, state):
        self._rng = list(state["rng"])
        self._next_job_id = state["next_job_id"]
        self._emitted = state["emitted"]
        self._clock = state["clock"]


class GoodSource:
    """No spec binds this class; whatever it does is out of scope."""

    def __init__(self):
        self.anything = []

    def poke(self):
        self.anything.append(1)
