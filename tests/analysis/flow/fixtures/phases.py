"""REP011 fixture: an observer phase that writes simulation state.

``TelemetryPhase`` is bound to an *observer* contract in the default
config; its ``run`` mutates the ``ClusterState``-annotated parameter
(a mutator-method write reached through an attribute chain), which the
purity pass must flag.  ``GoodTelemetryPhase`` shows the allowed shape
— pure reads, private accumulation — and must stay clean.
"""


class ClusterState:
    """Stand-in with the protected type's name; never imported."""

    def __init__(self):
        self.dirty = []
        self.round = 0


class TelemetryPhase:
    """Impure observer: leaves a mark on the state it only observes."""

    def run(self, state: ClusterState):
        state.dirty.append(1)
        return len(state.dirty)


class GoodTelemetryPhase:
    """Pure observer: reads the state, accumulates privately."""

    def __init__(self):
        self.samples = []

    def run(self, state: ClusterState):
        self.samples.append(state.round)
        return state.round
