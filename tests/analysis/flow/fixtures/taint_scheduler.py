"""REP009 fixture: wall-clock taint reaching a scheduler decision.

Intentionally broken and never imported by the library — the flow
tests analyze this file and assert the taint pass fails it.  The
``time.time()`` call carries a REP002 waiver (the *lint* gate covers
``tests/`` too and this fixture needs a live nondeterminism source);
REP009 must still track the value interprocedurally: helper return →
score → the ``.schedule`` return sink.
"""

import time


def _jitter() -> float:
    return time.time() * 1e-6  # repro-lint: disable=REP002


def _score(job_id: int) -> float:
    return job_id + _jitter()


class JitterScheduler:
    """Breaks ties with wall-clock noise: different decisions per run."""

    def schedule(self, queue):
        return {job_id: _score(job_id) for job_id in queue}
