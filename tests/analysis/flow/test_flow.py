"""The flow analyzer: each pass fails its committed fixture, the
shipped tree is flow-clean with no baseline, SARIF validates, the
facts cache hits warm, and the CLI exit codes hold."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.flow import (
    DEFAULT_CONFIG,
    FactsCache,
    analyze_paths,
    to_sarif,
)
from repro.analysis.flow.runner import main as flow_main
from repro.analysis import __main__ as analysis_main

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
REPO_ROOT = HERE.parents[2]

TAINT_FIXTURE = FIXTURES / "taint_scheduler.py"
MEMO_FIXTURE = FIXTURES / "find_alloc.py"
PURITY_FIXTURE = FIXTURES / "phases.py"
SNAPSHOT_FIXTURE = FIXTURES / "arrivals.py"


def rules_of(report):
    return sorted({f.rule for f in report.findings})


class TestTaintPass:
    """REP009: nondeterminism sources tracked to decision sinks."""

    def test_fixture_fails(self):
        report = analyze_paths([TAINT_FIXTURE], rules=("REP009",))
        assert rules_of(report) == ["REP009"]
        (finding,) = report.findings
        assert "wallclock" in finding.message
        assert "time.time()" in finding.message
        assert "schedule" in finding.message

    def test_source_suppression_kills_taint(self, tmp_path):
        source = TAINT_FIXTURE.read_text(encoding="utf-8").replace(
            "disable=REP002", "disable=REP002,REP009"
        )
        copy = tmp_path / "taint_scheduler.py"
        copy.write_text(source, encoding="utf-8")
        report = analyze_paths([copy], rules=("REP009",))
        assert report.findings == []


class TestMemoPass:
    """REP010: memoized reads must stay within the key's capture."""

    def test_fixture_fails(self):
        report = analyze_paths([MEMO_FIXTURE], rules=("REP010",))
        assert rules_of(report) == ["REP010"]
        messages = "\n".join(f.message for f in report.findings)
        assert "state.running_jobs" in messages
        # The in-bounds function must not fire.
        assert "_generate_candidates" not in messages

    def test_spec_drift_fires(self, tmp_path):
        # A module that matches one find_alloc spec but lacks the other
        # memoized functions: the missing specs are drift findings.
        copy = tmp_path / "find_alloc.py"
        copy.write_text(
            "def cached_find_alloc(ctx, rt, state, state_key=None):\n"
            "    return state.key()\n",
            encoding="utf-8",
        )
        report = analyze_paths([copy], rules=("REP010",))
        drift = [f for f in report.findings if f.path == "<config>"]
        assert {
            "_search_cached" in f.message or "_generate_candidates" in f.message
            for f in drift
        } == {True}
        assert len(drift) == 2


class TestPurityPass:
    """REP011: observers must not write protected simulation state."""

    def test_fixture_fails(self):
        report = analyze_paths([PURITY_FIXTURE], rules=("REP011",))
        assert rules_of(report) == ["REP011"]
        messages = "\n".join(f.message for f in report.findings)
        assert "TelemetryPhase.run" in messages
        assert "'state'" in messages
        assert "GoodTelemetryPhase" not in messages


class TestSnapshotPass:
    """REP012: engine-state attributes must be captured or waived."""

    def test_fixture_fails(self):
        report = analyze_paths([SNAPSHOT_FIXTURE], rules=("REP012",))
        assert rules_of(report) == ["REP012"]
        assert len(report.findings) == 1
        assert "_carryover" in report.findings[0].message
        # Classes without a spec are out of scope.
        assert "GoodSource" not in report.findings[0].message

    def test_suppression_kills_finding(self, tmp_path):
        source = SNAPSHOT_FIXTURE.read_text(encoding="utf-8").replace(
            "self._carryover = []",
            "self._carryover = []  # repro-lint: disable=REP012",
        )
        copy = tmp_path / "arrivals.py"
        copy.write_text(source, encoding="utf-8")
        report = analyze_paths([copy], rules=("REP012",))
        assert report.findings == []

    def test_spec_drift_fires_on_full_tree(self, tmp_path):
        # The full-tree marker (a SimulationEngine class) arms drift
        # checking; every unmatched spec then fires.
        copy = tmp_path / "engine.py"
        copy.write_text("class SimulationEngine:\n    pass\n", encoding="utf-8")
        report = analyze_paths([copy], rules=("REP012",))
        drift = [f for f in report.findings if f.path == "<config>"]
        assert drift, "unmatched specs must fire once the engine is analyzed"
        assert any("SubmissionSource" in f.message for f in drift)

    def test_fixture_dir_has_no_drift_noise(self):
        # Fixture modules reuse main-tree module names on purpose; a
        # fixtures-only run must not report main-tree specs as drift.
        report = analyze_paths([FIXTURES], rules=("REP012",))
        assert all(f.path != "<config>" for f in report.findings)

    def test_missing_loader_fires(self, tmp_path):
        source = SNAPSHOT_FIXTURE.read_text(encoding="utf-8").replace(
            "def load_state_dict", "def _renamed_loader"
        )
        copy = tmp_path / "arrivals.py"
        copy.write_text(source, encoding="utf-8")
        report = analyze_paths([copy], rules=("REP012",))
        messages = "\n".join(f.message for f in report.findings)
        assert "neither load_state_dict() nor" in messages


class TestSelfAnalysisGate:
    """The shipped tree ships flow-clean with an empty baseline."""

    def test_src_tree_is_flow_clean(self):
        report = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )
        assert report.baseline_suppressed == 0
        assert report.files_analyzed > 50


# Structural subset of the SARIF 2.1.0 schema: the properties consumers
# (GitHub code scanning, sarif-tools) actually dereference.  The full
# upstream schema needs network access, which tests don't have.
_SARIF_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    }
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def test_findings_validate_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        report = analyze_paths([FIXTURES])
        assert report.findings, "fixtures must produce findings"
        doc = to_sarif(report.findings)
        jsonschema.validate(doc, _SARIF_SCHEMA)

    def test_rule_indices_and_locations(self):
        report = analyze_paths([FIXTURES])
        doc = to_sarif(report.findings)
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_empty_report_still_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(to_sarif([]), _SARIF_SCHEMA)


class TestFactsCache:
    def _cache(self, tmp_path):
        return FactsCache(
            tmp_path / "cache.json", config_digest=DEFAULT_CONFIG.digest()
        )

    def test_warm_run_hits(self, tmp_path):
        cold = analyze_paths([TAINT_FIXTURE], cache=self._cache(tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        warm = analyze_paths([TAINT_FIXTURE], cache=self._cache(tmp_path))
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        # Cached facts must reproduce the findings exactly.
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_content_change_invalidates(self, tmp_path):
        copy = tmp_path / "mod.py"
        copy.write_text("def f():\n    return 1\n", encoding="utf-8")
        analyze_paths([copy], cache=self._cache(tmp_path))
        copy.write_text("def f():\n    return 2\n", encoding="utf-8")
        rerun = analyze_paths([copy], cache=self._cache(tmp_path))
        assert (rerun.cache_hits, rerun.cache_misses) == (0, 1)

    def test_config_digest_invalidates(self, tmp_path):
        analyze_paths([TAINT_FIXTURE], cache=self._cache(tmp_path))
        other = FactsCache(tmp_path / "cache.json", config_digest="different")
        rerun = analyze_paths([TAINT_FIXTURE], cache=other)
        assert (rerun.cache_hits, rerun.cache_misses) == (0, 1)


class TestCli:
    def test_findings_exit_1(self, capsys):
        code = flow_main(["--no-cache", str(TAINT_FIXTURE)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP009" in out

    def test_clean_exit_0(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n", encoding="utf-8")
        assert flow_main(["--no-cache", str(clean)]) == 0

    def test_sarif_written(self, tmp_path):
        sarif = tmp_path / "flow.sarif"
        code = flow_main(
            ["--no-cache", "--sarif", str(sarif), str(TAINT_FIXTURE)]
        )
        assert code == 1
        doc = json.loads(sarif.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_baseline_round_trip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert (
            flow_main(
                [
                    "--no-cache",
                    "--write-baseline",
                    str(baseline),
                    str(TAINT_FIXTURE),
                ]
            )
            == 0
        )
        assert json.loads(baseline.read_text(encoding="utf-8"))
        assert (
            flow_main(
                ["--no-cache", "--baseline", str(baseline), str(TAINT_FIXTURE)]
            )
            == 0
        )

    def test_budget_exceeded_exit_2(self):
        code = flow_main(["--no-cache", "--budget-s", "0", str(TAINT_FIXTURE)])
        assert code == 2

    def test_consolidated_dispatch(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n", encoding="utf-8")
        assert analysis_main.main(["flow", "--no-cache", str(clean)]) == 0
        assert analysis_main.main(["lint", str(clean)]) == 0
        assert analysis_main.main(["bogus"]) == 2
        assert analysis_main.main([]) == 0  # usage text
        capsys.readouterr()
