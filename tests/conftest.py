"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, prototype_cluster, simulated_cluster
from repro.cluster.node import Node
from repro.cluster.topology import CommunicationModel
from repro.workload.job import Job
from repro.workload.models import model_spec
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.throughput import ThroughputMatrix, default_throughput_matrix
from repro.workload.trace import Trace


@pytest.fixture
def matrix() -> ThroughputMatrix:
    return default_throughput_matrix()


@pytest.fixture
def small_cluster() -> Cluster:
    """Two mixed nodes + one homogeneous node: 4 V100, 3 P100, 2 K80."""
    return Cluster(
        [
            Node(0, {"V100": 2, "K80": 1}),
            Node(1, {"V100": 2, "P100": 1}),
            Node(2, {"P100": 2, "K80": 1}),
        ]
    )


@pytest.fixture
def paper_cluster() -> Cluster:
    return simulated_cluster()


@pytest.fixture
def aws_cluster() -> Cluster:
    return prototype_cluster()


@pytest.fixture
def no_comm_cluster(small_cluster: Cluster) -> Cluster:
    return Cluster(small_cluster.nodes, comm=CommunicationModel.disabled())


def make_job(
    job_id: int = 0,
    model: str = "resnet18",
    arrival: float = 0.0,
    workers: int = 1,
    epochs: int = 2,
    iters_per_epoch: int | None = None,
) -> Job:
    spec = model_spec(model)
    return Job(
        job_id=job_id,
        model=spec,
        arrival_time=arrival,
        num_workers=workers,
        epochs=epochs,
        iters_per_epoch=iters_per_epoch or spec.iters_per_epoch,
    )


@pytest.fixture
def tiny_trace() -> Trace:
    """Three small jobs arriving together."""
    return Trace(
        [
            make_job(0, "resnet18", workers=1, epochs=2),
            make_job(1, "cyclegan", workers=2, epochs=1),
            make_job(2, "transformer", workers=2, epochs=2),
        ]
    )


@pytest.fixture
def philly_trace_small() -> Trace:
    return generate_philly_trace(
        PhillyTraceConfig(num_jobs=12, arrival_pattern="static", seed=7)
    )
