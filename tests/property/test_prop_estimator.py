"""Property-based tests: the throughput estimator's EWMA behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import ThroughputEstimator


@given(
    observations=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30),
    smoothing=st.floats(0.05, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_estimate_stays_within_observed_range(observations, smoothing):
    """An EWMA never leaves the convex hull of its inputs."""
    est = ThroughputEstimator(smoothing=smoothing)
    for obs in observations:
        est.observe("m", "V100", obs)
    value = est.rate("m", "V100")
    assert min(observations) - 1e-9 <= value <= max(observations) + 1e-9
    assert est.observations("m", "V100") == len(observations)


@given(true_rate=st.floats(0.1, 50.0), smoothing=st.floats(0.2, 1.0))
@settings(max_examples=60, deadline=None)
def test_constant_signal_converges_exactly(true_rate, smoothing):
    est = ThroughputEstimator(smoothing=smoothing)
    for _ in range(40):
        est.observe("m", "K80", true_rate)
    assert est.rate("m", "K80") == pytest.approx(true_rate, rel=1e-6)


@given(
    noisy=st.lists(st.floats(0.9, 1.1), min_size=20, max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_noise_is_smoothed_toward_the_band(noisy):
    est = ThroughputEstimator(smoothing=0.3)
    for obs in noisy:
        est.observe("m", "P100", obs * 4.0)
    assert est.rate("m", "P100") == pytest.approx(4.0, rel=0.15)


@given(
    models=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20),
    types=st.lists(st.sampled_from(["V100", "K80"]), min_size=1, max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_estimates_isolated_per_pair(models, types):
    """Observations for one (model, type) never leak into another."""
    est = ThroughputEstimator(optimistic_rate=99.0)
    est.observe("a", "V100", 1.0)
    for m, t in zip(models, types):
        if (m, t) != ("a", "V100"):
            est.observe(m, t, 7.0)
    assert est.rate("a", "V100") == pytest.approx(1.0)
