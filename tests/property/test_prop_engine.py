"""Property-based tests: end-to-end engine invariants under random
workloads and random-but-valid scheduling decisions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.random_sched import RandomScheduler
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.topology import CommunicationModel
from repro.sim.checkpoint import FixedDelayCheckpoint
from repro.sim.engine import simulate
from repro.workload.job import Job
from repro.workload.models import model_spec
from repro.workload.throughput import default_throughput_matrix
from repro.workload.trace import Trace

MODELS = ("resnet18", "cyclegan", "transformer", "a3c")


@st.composite
def traces(draw):
    jobs = []
    for job_id in range(draw(st.integers(1, 6))):
        jobs.append(
            Job(
                job_id=job_id,
                model=model_spec(draw(st.sampled_from(MODELS))),
                arrival_time=draw(st.floats(0.0, 2000.0)),
                num_workers=draw(st.sampled_from([1, 2, 4])),
                epochs=draw(st.integers(1, 3)),
                iters_per_epoch=draw(st.integers(50, 2000)),
            )
        )
    return Trace(jobs)


CLUSTER = Cluster(
    [Node(0, {"V100": 2, "K80": 2}), Node(1, {"P100": 4})],
    comm=CommunicationModel.disabled(),
)
MATRIX = default_throughput_matrix()


@given(trace=traces(), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_engine_invariants_under_random_scheduling(trace, seed):
    result = simulate(
        CLUSTER,
        trace,
        RandomScheduler(seed=seed),
        matrix=MATRIX,
        round_length=360.0,
        checkpoint=FixedDelayCheckpoint(10.0),
    )
    assert result.all_completed
    for rt in result.runtimes.values():
        job = rt.job
        # Work conservation: exactly E·N iterations were executed.
        assert rt.iterations_done == pytest.approx(job.total_iterations, rel=1e-6)
        # Causality: a_j ≤ first start ≤ finish.
        assert rt.finish_time is not None and rt.first_start_time is not None
        assert job.arrival_time <= rt.first_start_time <= rt.finish_time
        # JCT lower bound: the job cannot beat its ideal gang speed.
        ideal = job.total_iterations / (
            job.num_workers * MATRIX.max_rate(job.model.name)
        )
        assert rt.completion_time >= ideal * (1 - 1e-9)
        # Overheads and waiting are consistent with the timeline.
        assert rt.waiting_seconds >= -1e-9
        assert rt.overhead_seconds >= 10.0 * (rt.allocation_changes > 0) - 1e-9


@given(trace=traces(), seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_busy_gpu_seconds_equals_sum_of_held_time(trace, seed):
    """Telemetry integral == Σ per-job (held GPUs × held time).

    Attained service excludes pause windows, so busy-time must be at
    least the attained service and at most attained + overhead·W.
    """
    result = simulate(
        CLUSTER,
        trace,
        RandomScheduler(seed=seed),
        matrix=MATRIX,
        round_length=360.0,
        checkpoint=FixedDelayCheckpoint(10.0),
    )
    busy = result.telemetry.busy_gpu_seconds(0.0, result.end_time)
    lo = sum(rt.attained_service for rt in result.runtimes.values())
    hi = sum(
        rt.attained_service + rt.overhead_seconds * rt.job.num_workers
        for rt in result.runtimes.values()
    )
    assert lo - 1e-6 <= busy <= hi + 1e-6
