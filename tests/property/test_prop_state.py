"""Property-based tests: ClusterState invariants under arbitrary
allocate/release sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState

TYPES = ("V100", "P100", "K80")


@st.composite
def capacities(draw):
    n_nodes = draw(st.integers(1, 4))
    caps = {}
    for node in range(n_nodes):
        for t in TYPES:
            c = draw(st.integers(0, 4))
            if c:
                caps[(node, t)] = c
    if not caps:
        caps[(0, "V100")] = 1
    return caps


@st.composite
def sub_allocation(draw, free: dict):
    """An allocation drawn within the currently-free capacity."""
    picks = {}
    for slot, avail in free.items():
        if avail > 0 and draw(st.booleans()):
            picks[slot] = draw(st.integers(1, avail))
    return Allocation(picks)


@given(caps=capacities(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_allocate_release_never_violates_bounds(caps, data):
    """0 ≤ free ≤ capacity after any valid allocate/release interleaving."""
    state = ClusterState(caps)
    live: list[Allocation] = []
    for _ in range(data.draw(st.integers(1, 10))):
        do_alloc = data.draw(st.booleans()) or not live
        if do_alloc:
            free = {slot: state.free(*slot) for slot in caps}
            alloc = data.draw(sub_allocation(free))
            if alloc and state.can_fit(alloc):
                state.allocate(alloc)
                live.append(alloc)
        elif live:
            idx = data.draw(st.integers(0, len(live) - 1))
            state.release(live.pop(idx))
        for slot, cap in caps.items():
            assert 0 <= state.free(*slot) <= cap
    # Conservation: used equals what the live allocations hold.
    held = sum(a.total_workers for a in live)
    assert state.total_used() == held


@given(caps=capacities(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_copy_isolation(caps, data):
    state = ClusterState(caps)
    free = {slot: state.free(*slot) for slot in caps}
    alloc = data.draw(sub_allocation(free))
    clone = state.copy()
    if alloc and clone.can_fit(alloc):
        clone.allocate(alloc)
    assert state.total_used() == 0
    assert state.key() == ClusterState(caps).key()


@given(caps=capacities(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_key_roundtrip(caps, data):
    """key() is a faithful fingerprint: equal states ⇔ equal keys."""
    a = ClusterState(caps)
    b = ClusterState(caps)
    free = {slot: a.free(*slot) for slot in caps}
    alloc = data.draw(sub_allocation(free))
    if alloc:
        a.allocate(alloc)
        assert a.key() != b.key()
        b.allocate(alloc)
    assert a.key() == b.key()
    assert a == b
