"""Property-based tests: gang packing helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.packing import pack_gang, pack_gang_single_type
from repro.cluster.state import ClusterState

TYPES = ("V100", "P100", "K80")


@st.composite
def states(draw):
    caps = {}
    for node in range(draw(st.integers(1, 5))):
        for t in TYPES:
            c = draw(st.integers(0, 4))
            if c:
                caps[(node, t)] = c
    if not caps:
        caps[(0, "V100")] = 2
    return ClusterState(caps)


@given(state=states(), workers=st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_pack_gang_exact_or_none(state, workers):
    """pack_gang returns exactly `workers` devices within free capacity,
    and returns None only when the free total genuinely falls short."""
    total_free = state.total_free()
    gang = pack_gang(state, workers)
    if gang is None:
        assert total_free < workers
    else:
        assert gang.total_workers == workers
        assert state.can_fit(gang)


@given(state=states(), workers=st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_pack_single_type_exact_or_none(state, workers):
    for t in TYPES:
        gang = pack_gang_single_type(state, workers, t)
        free_of_type = state.free_by_type().get(t, 0)
        if gang is None:
            assert free_of_type < workers
        else:
            assert gang.total_workers == workers
            assert gang.gpu_types == {t}
            assert state.can_fit(gang)


@given(state=states(), workers=st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_pack_gang_minimizes_span_greedily(state, workers):
    """The consolidation heuristic: if some single node could host the
    whole gang, the packed gang is consolidated."""
    gang = pack_gang(state, workers)
    if gang is None:
        return
    per_node_free: dict[int, int] = {}
    for (node, _), free in state.free_slots():
        per_node_free[node] = per_node_free.get(node, 0) + free
    if max(per_node_free.values(), default=0) >= workers:
        assert gang.is_consolidated
