"""Property-based tests: the MSR-format loader's preprocessing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.msr import rows_to_trace
from repro.workload.throughput import default_throughput_matrix

MATRIX = default_throughput_matrix()


@st.composite
def msr_rows(draw):
    n = draw(st.integers(0, 20))
    rows = []
    for i in range(n):
        rows.append(
            {
                "jobid": f"j{i}",
                "submitted_time": draw(st.floats(0.0, 1e7)),
                "num_gpus": draw(st.integers(0, 64)),
                "runtime_s": draw(st.floats(0.0, 4e5)),
            }
        )
    return rows


@given(rows=msr_rows(), seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_loader_invariants(rows, seed):
    trace = rows_to_trace(rows, seed=seed, max_workers=16)
    valid = [r for r in rows if r["num_gpus"] >= 1 and r["runtime_s"] > 0]
    assert len(trace) == len(valid)
    if not valid:
        return
    # Arrivals re-based to zero and ordered.
    arrivals = [j.arrival_time for j in trace]
    assert min(arrivals) == pytest.approx(0.0)
    assert arrivals == sorted(arrivals)
    for job in trace:
        assert 1 <= job.num_workers <= 16
        assert job.epochs >= 1


@given(rows=msr_rows(), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_loader_deterministic(rows, seed):
    assert list(rows_to_trace(rows, seed=seed)) == list(rows_to_trace(rows, seed=seed))


@given(
    gpus=st.integers(1, 16),
    runtime_h=st.floats(0.2, 40.0),
)
@settings(max_examples=50, deadline=None)
def test_gpu_hours_approximately_preserved(gpus, runtime_h):
    """The converted job carries the recorded GPU-hours (± epoch rounding)."""
    rows = [
        {
            "jobid": "x",
            "submitted_time": 0.0,
            "num_gpus": gpus,
            "runtime_s": runtime_h * 3600.0,
        }
    ]
    trace = rows_to_trace(rows, seed=0)
    job = trace[0]
    recorded = gpus * runtime_h
    measured = job.total_iterations / (
        3600.0 * MATRIX.rate(job.model.name, "V100")
    )
    # Epoch rounding bounds the error by half an epoch's worth of work
    # (plus the one-epoch floor for tiny jobs).
    epoch_hours = job.iters_per_epoch / (
        3600.0 * MATRIX.rate(job.model.name, "V100")
    )
    assert abs(measured - recorded) <= max(0.5 * epoch_hours + 1e-6, epoch_hours - recorded)
