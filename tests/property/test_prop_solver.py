"""Property-based tests: the Gavel max-min solvers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.gavel.solver import (
    min_scaled_throughput,
    solve_max_min_lp,
    water_filling_allocation,
)


@st.composite
def instances(draw):
    jobs = draw(st.integers(1, 5))
    types = draw(st.integers(1, 4))
    speeds = draw(
        hnp.arrays(
            float,
            (jobs, types),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )
    # Every job must run somewhere; pin its best column to 1.
    for j in range(jobs):
        speeds[j, draw(st.integers(0, types - 1))] = 1.0
    workers = draw(
        hnp.arrays(float, (jobs,), elements=st.sampled_from([1.0, 2.0, 4.0]))
    )
    capacity = draw(
        hnp.arrays(float, (types,), elements=st.sampled_from([1.0, 2.0, 4.0, 8.0]))
    )
    return speeds, workers, capacity


def check_feasible(y, speeds, workers, capacity):
    assert np.all(y >= -1e-8)
    assert np.all(y.sum(axis=1) <= 1.0 + 1e-6)
    assert np.all((y * workers[:, None]).sum(axis=0) <= capacity + 1e-6)


@given(inst=instances())
@settings(max_examples=40, deadline=None)
def test_lp_feasible_and_bounded(inst):
    speeds, workers, capacity = inst
    y = solve_max_min_lp(speeds, workers, capacity)
    check_feasible(y, speeds, workers, capacity)
    # Normalized throughput can never exceed 1 (full time on the best type).
    assert min_scaled_throughput(y, speeds) <= 1.0 + 1e-6


@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_water_filling_feasible_and_dominated_by_lp(inst):
    speeds, workers, capacity = inst
    y_wf = water_filling_allocation(speeds, workers, capacity, step=0.05)
    check_feasible(y_wf, speeds, workers, capacity)
    m_lp = min_scaled_throughput(solve_max_min_lp(speeds, workers, capacity), speeds)
    m_wf = min_scaled_throughput(y_wf, speeds)
    assert m_wf <= m_lp + 1e-6
