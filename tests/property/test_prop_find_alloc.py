"""Property-based tests: FIND_ALLOC and DP_allocation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.topology import CommunicationModel
from repro.core.dp import DPAllocator, DPConfig
from repro.core.find_alloc import find_alloc
from repro.core.pricing import PriceBook
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState
from repro.workload.models import model_spec
from repro.workload.job import Job
from repro.workload.throughput import default_throughput_matrix

MATRIX = default_throughput_matrix()
UTILITY = NormalizedThroughputUtility()
NO_DELAY = lambda rt, alloc: 0.0  # noqa: E731

CLUSTER = Cluster(
    [
        Node(0, {"V100": 2, "K80": 2}),
        Node(1, {"P100": 3}),
        Node(2, {"V100": 2, "P100": 1}),
    ],
    comm=CommunicationModel.disabled(),
)
MODELS = ("resnet18", "resnet50", "cyclegan", "transformer", "a3c")


@st.composite
def queues(draw):
    n = draw(st.integers(1, 6))
    out = []
    for i in range(n):
        job = Job(
            job_id=i,
            model=model_spec(draw(st.sampled_from(MODELS))),
            arrival_time=0.0,
            num_workers=draw(st.sampled_from([1, 2, 4])),
            epochs=draw(st.integers(1, 5)),
            iters_per_epoch=draw(st.integers(100, 3000)),
        )
        rt = JobRuntime(job=job)
        rt.state = JobState.QUEUED
        out.append(rt)
    return out


def prices_for(queue):
    return PriceBook.calibrate(
        queue, MATRIX, UTILITY, CLUSTER.fresh_state(), 0.0
    )


@given(queue=queues(), occupied=st.integers(0, 5))
@settings(max_examples=50, deadline=None)
def test_find_alloc_invariants(queue, occupied):
    """FIND_ALLOC: exact gang size, fits free capacity, positive payoff."""
    state = CLUSTER.fresh_state()
    # Occupy a few V100s to vary the search space.
    take = min(occupied, 2)
    if take:
        state.allocate(Allocation({(0, "V100"): take}))
    prices = prices_for(queue)
    rt = queue[0]
    cand = find_alloc(
        rt, state, prices, MATRIX, CLUSTER, UTILITY, 0.0, NO_DELAY
    )
    if cand is None:
        return
    assert cand.allocation.total_workers == rt.job.num_workers
    assert state.can_fit(cand.allocation)
    assert cand.payoff > 0
    assert cand.rate > 0
    assert cand.utility == pytest.approx(cand.payoff + cand.cost)


@given(queue=queues())
@settings(max_examples=40, deadline=None)
def test_dp_plan_always_feasible(queue):
    """The DP's chosen plan fits capacity jointly and honours gangs."""
    prices = prices_for(queue)
    allocator = DPAllocator(
        prices=prices, matrix=MATRIX, cluster=CLUSTER, utility=UTILITY,
        now=0.0, delay_estimator=NO_DELAY, config=DPConfig(queue_limit=6),
    )
    state = CLUSTER.fresh_state()
    chosen = allocator.allocate(list(queue), state)
    probe = CLUSTER.fresh_state()
    for job_id, cand in chosen.items():
        rt = next(r for r in queue if r.job_id == job_id)
        assert cand.allocation.total_workers == rt.job.num_workers
        probe.allocate(cand.allocation)  # raises if jointly infeasible
    assert probe.key() == state.key()


@given(queue=queues())
@settings(max_examples=25, deadline=None)
def test_exact_dp_payoff_dominates_greedy(queue):
    prices = prices_for(queue)

    def total_payoff(config):
        allocator = DPAllocator(
            prices=prices, matrix=MATRIX, cluster=CLUSTER, utility=UTILITY,
            now=0.0, delay_estimator=NO_DELAY, config=config,
        )
        chosen = allocator.allocate(list(queue), CLUSTER.fresh_state())
        return sum(c.payoff for c in chosen.values())

    exact = total_payoff(DPConfig(queue_limit=8))
    greedy = total_payoff(DPConfig(queue_limit=0))
    assert exact >= greedy - 1e-9
