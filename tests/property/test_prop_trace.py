"""Property-based tests: trace serialization and generator determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.job import Job
from repro.workload.models import MODEL_ZOO, model_spec
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.trace import Trace


@st.composite
def jobs_strategy(draw):
    n = draw(st.integers(0, 8))
    return [
        Job(
            job_id=i,
            model=model_spec(draw(st.sampled_from(sorted(MODEL_ZOO)))),
            arrival_time=draw(st.floats(0.0, 1e6, allow_nan=False)),
            num_workers=draw(st.integers(1, 16)),
            epochs=draw(st.integers(1, 200)),
            iters_per_epoch=draw(st.integers(1, 5000)),
        )
        for i in range(n)
    ]


@given(jobs=jobs_strategy())
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip_exact(jobs, tmp_path_factory):
    trace = Trace(jobs)
    path = tmp_path_factory.mktemp("traces") / "t.csv"
    trace.to_csv(path)
    assert list(Trace.from_csv(path)) == list(trace)


@given(jobs=jobs_strategy())
@settings(max_examples=40, deadline=None)
def test_jsonl_roundtrip_exact(jobs, tmp_path_factory):
    trace = Trace(jobs)
    path = tmp_path_factory.mktemp("traces") / "t.jsonl"
    trace.to_jsonl(path)
    assert list(Trace.from_jsonl(path)) == list(trace)


@given(jobs=jobs_strategy())
@settings(max_examples=40, deadline=None)
def test_trace_always_arrival_sorted(jobs):
    trace = Trace(jobs)
    arrivals = [j.arrival_time for j in trace]
    assert arrivals == sorted(arrivals)


@given(
    seed=st.integers(0, 10_000),
    num_jobs=st.integers(0, 40),
    pattern=st.sampled_from(["static", "continuous"]),
)
@settings(max_examples=30, deadline=None)
def test_philly_generator_fully_deterministic(seed, num_jobs, pattern):
    cfg = PhillyTraceConfig(num_jobs=num_jobs, arrival_pattern=pattern, seed=seed)
    assert list(generate_philly_trace(cfg)) == list(generate_philly_trace(cfg))


@given(seed=st.integers(0, 1000), num_jobs=st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_philly_jobs_within_bounds(seed, num_jobs):
    cfg = PhillyTraceConfig(num_jobs=num_jobs, seed=seed)
    for job in generate_philly_trace(cfg):
        assert 1 <= job.num_workers <= cfg.max_workers
        assert job.epochs >= 1
        assert job.model.name in MODEL_ZOO
        assert job.arrival_time == pytest.approx(0.0)
