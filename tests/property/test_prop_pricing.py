"""Property-based tests: the dual price function (Eq. 5)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core.pricing import PriceBook

bounds = st.tuples(
    st.floats(1e-6, 1e6), st.floats(1e-6, 1e6)
).map(lambda p: (min(p), max(p)))


@given(b=bounds, capacity=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_price_monotone_and_bounded(b, capacity):
    lo, hi = b
    assume(hi >= lo)
    book = PriceBook(u_min={"V100": lo}, u_max={"V100": hi}, eta=1.0)
    state = ClusterState({(0, "V100"): capacity})
    prices = []
    for _ in range(capacity + 1):
        prices.append(book.price(0, "V100", state))
        if state.free(0, "V100"):
            state.allocate(Allocation.single(0, "V100", 1))
    # Bounds: k(0) = U_min, k(c) = U_max; monotone in between.
    assert prices[0] == pytest.approx(lo)
    assert prices[-1] == pytest.approx(hi)
    assert all(a <= b_ * (1 + 1e-12) for a, b_ in zip(prices, prices[1:]))


@given(b=bounds, capacity=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_alpha_formula(b, capacity):
    lo, hi = b
    book = PriceBook(u_min={"V100": lo}, u_max={"V100": hi}, eta=1.0)
    expected = max(1.0, math.log(hi / lo)) if hi > lo > 0 else 1.0
    assert book.alpha() == pytest.approx(expected)


@given(
    b=bounds,
    capacity=st.integers(1, 8),
    counts=st.lists(st.integers(1, 3), min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_cost_of_is_linear_in_counts(b, capacity, counts):
    """cost_of sums price × count over slots at the *pre-allocation* price."""
    lo, hi = b
    slots = {(i, "V100"): capacity for i in range(len(counts))}
    book = PriceBook(
        u_min={"V100": lo}, u_max={"V100": hi}, eta=1.0
    )
    state = ClusterState(slots)
    alloc = Allocation(
        {(i, "V100"): min(c, capacity) for i, c in enumerate(counts)}
    )
    expected = sum(
        book.price(i, "V100", state) * min(c, capacity)
        for i, c in enumerate(counts)
    )
    assert book.cost_of(alloc, state) == pytest.approx(expected)

