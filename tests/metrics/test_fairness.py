"""Unit tests for finish-time fairness."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.metrics.fairness import finish_time_fairness, isolated_duration
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestIsolatedDuration:
    def test_uses_best_type_and_share(self, small_cluster, matrix):
        job = make_job(0, "resnet18", workers=4, epochs=1, iters_per_epoch=100)
        # 9 GPUs / 3 sharers = 3-GPU slice < W=4 → 3 workers on V100 (16 it/s).
        d = isolated_duration(job, small_cluster, matrix, num_sharers=3)
        assert d == pytest.approx(100 / (3 * 16.0))

    def test_share_floor_of_one(self, small_cluster, matrix):
        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=160)
        d = isolated_duration(job, small_cluster, matrix, num_sharers=1000)
        assert d == pytest.approx(10.0)

    def test_small_gang_keeps_its_size(self, small_cluster, matrix):
        job = make_job(0, "resnet18", workers=1, epochs=1, iters_per_epoch=160)
        # Slice bigger than the gang: the job still runs with W=1.
        d = isolated_duration(job, small_cluster, matrix, num_sharers=2)
        assert d == pytest.approx(10.0)

    def test_validation(self, small_cluster, matrix):
        with pytest.raises(ValueError):
            isolated_duration(make_job(), small_cluster, matrix, num_sharers=0)


class TestFTF:
    def test_uncontended_run_close_to_isolated(self, no_comm_cluster, matrix):
        """A lone job under a heterogeneity-aware scheduler has ρ ≈ 1."""
        from repro.core import HadarScheduler

        trace = Trace([make_job(0, "resnet18", workers=1, epochs=2)])
        result = simulate(no_comm_cluster, trace, HadarScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        ftf = finish_time_fairness(result, matrix)
        assert ftf.count == 1
        assert ftf.mean == pytest.approx(1.0, abs=0.05)

    def test_het_blind_scheduler_pays_in_rho(self, no_comm_cluster, matrix):
        """YARN places the same lone job on whatever is free (K80 here),
        inflating its slowdown relative to the isolated best-type run."""
        trace = Trace([make_job(0, "resnet18", workers=1, epochs=2)])
        result = simulate(no_comm_cluster, trace, YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        ftf = finish_time_fairness(result, matrix)
        assert ftf.mean > 2.0

    def test_contention_raises_rho(self, no_comm_cluster, matrix):
        jobs = [make_job(i, "resnet18", workers=4, epochs=10) for i in range(4)]
        result = simulate(no_comm_cluster, Trace(jobs), YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        ftf = finish_time_fairness(result, matrix)
        assert ftf.max > 1.0
        assert ftf.mean <= ftf.max
        assert ftf.median <= ftf.max

    def test_empty(self, no_comm_cluster, matrix):
        result = simulate(no_comm_cluster, Trace([]), YarnCapacityScheduler(),
                          matrix=matrix)
        ftf = finish_time_fairness(result, matrix)
        assert ftf.count == 0

    def test_explicit_sharers(self, no_comm_cluster, matrix):
        trace = Trace([make_job(0, "resnet18", workers=1, epochs=2)])
        result = simulate(no_comm_cluster, trace, YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        few = finish_time_fairness(result, matrix, num_sharers=1)
        many = finish_time_fairness(result, matrix, num_sharers=100)
        # More sharers → smaller isolated slice... but floored at the gang
        # size here, so both equal; just check the API accepts the knob.
        assert few.count == many.count == 1
