"""Unit tests for the utilization summary."""

import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.metrics.utilization import utilization_summary
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


@pytest.fixture
def full_then_drain(no_comm_cluster, matrix):
    """One 9-GPU gang for 1 epoch, then one 1-GPU job twice as long."""
    jobs = [
        make_job(0, "resnet18", workers=9, epochs=4),
        make_job(1, "resnet18", workers=1, epochs=8),
    ]
    return simulate(no_comm_cluster, Trace(jobs), YarnCapacityScheduler(),
                    matrix=matrix, checkpoint=NoOverheadCheckpoint())


class TestSummary:
    def test_full_window(self, full_then_drain):
        s = utilization_summary(full_then_drain)
        assert 0.0 < s.overall < 1.0
        assert s.horizon == pytest.approx(full_then_drain.makespan())
        assert set(s.by_type) == {"K80", "P100", "V100"}

    def test_quantile_window_shorter(self, full_then_drain):
        full = utilization_summary(full_then_drain)
        p50 = utilization_summary(full_then_drain, horizon_quantile=0.5)
        assert p50.horizon < full.horizon
        assert p50.overall >= full.overall  # tail was the idle part

    def test_contended_mode(self, no_comm_cluster, matrix):
        jobs = [
            make_job(0, "resnet18", workers=9, epochs=4),
            make_job(1, "resnet18", workers=9, epochs=4),
        ]
        result = simulate(no_comm_cluster, Trace(jobs), YarnCapacityScheduler(),
                          matrix=matrix, checkpoint=NoOverheadCheckpoint())
        s = utilization_summary(result, contended=True)
        # While job 1 waited, all 9 GPUs ran job 0.
        assert s.overall == pytest.approx(1.0)

    def test_validation(self, full_then_drain):
        with pytest.raises(ValueError):
            utilization_summary(full_then_drain, horizon_quantile=0.0)

    def test_empty_result(self, no_comm_cluster, matrix):
        result = simulate(no_comm_cluster, Trace([]), YarnCapacityScheduler(),
                          matrix=matrix)
        s = utilization_summary(result)
        assert s.overall == 0.0
