"""Unit tests for JCT statistics and the Fig. 3 CDF."""

import numpy as np
import pytest

from repro.baselines.yarn import YarnCapacityScheduler
from repro.metrics.jct import jct_cdf, jct_stats
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


@pytest.fixture
def result(no_comm_cluster, matrix):
    trace = Trace(
        [
            make_job(0, "resnet18", workers=1, epochs=1),
            make_job(1, "resnet18", workers=1, epochs=2),
            make_job(2, "resnet18", workers=1, epochs=4),
        ]
    )
    return simulate(no_comm_cluster, trace, YarnCapacityScheduler(),
                    matrix=matrix, checkpoint=NoOverheadCheckpoint())


class TestStats:
    def test_basic_fields(self, result):
        stats = jct_stats(result)
        assert stats.count == 3
        assert stats.min <= stats.median <= stats.max
        assert stats.mean > 0
        assert stats.mean_hours == pytest.approx(stats.mean / 3600.0)

    def test_matches_raw_jcts(self, result):
        stats = jct_stats(result)
        jcts = np.asarray(result.jcts())
        assert stats.mean == pytest.approx(jcts.mean())
        assert stats.median == pytest.approx(np.median(jcts))
        assert stats.p95 == pytest.approx(np.percentile(jcts, 95))

    def test_zero_queuing_on_idle_cluster(self, result):
        stats = jct_stats(result)
        assert stats.mean_queuing_delay == pytest.approx(0.0)
        assert stats.mean_total_waiting == pytest.approx(0.0)

    def test_empty_result(self, no_comm_cluster, matrix):
        empty = simulate(no_comm_cluster, Trace([]), YarnCapacityScheduler(),
                         matrix=matrix)
        stats = jct_stats(empty)
        assert stats.count == 0
        assert stats.mean == 0.0


class TestCDF:
    def test_monotone_and_bounded(self, result):
        times, frac = jct_cdf(result, num_points=20)
        assert len(times) == 20
        assert np.all(np.diff(frac) >= 0)
        assert frac[0] >= 0.0
        assert frac[-1] == pytest.approx(1.0)

    def test_counts_fraction_of_all_jobs(self, no_comm_cluster, matrix):
        # A truncated run: one of two jobs never finishes.
        class OnlyFirst(YarnCapacityScheduler):
            def schedule(self, ctx):
                target = super().schedule(ctx)
                target.pop(1, None)
                return target

        trace = Trace(
            [
                make_job(0, "resnet18", workers=1, epochs=1),
                make_job(1, "resnet18", workers=1, epochs=1),
            ]
        )
        result = simulate(no_comm_cluster, trace, OnlyFirst(), matrix=matrix,
                          max_time=7200.0)
        _, frac = jct_cdf(result)
        assert frac[-1] == pytest.approx(0.5)

    def test_validation(self, result):
        with pytest.raises(ValueError):
            jct_cdf(result, num_points=1)
