"""Unit tests for the comparison-table helper."""

import math

import pytest

from repro.metrics.summary import ComparisonTable, ratio


class TestRatio:
    def test_improvement_factor(self):
        assert ratio(10.0, 5.0) == pytest.approx(2.0)

    def test_zero_improved(self):
        assert ratio(10.0, 0.0) == math.inf
        assert ratio(0.0, 0.0) == 1.0


class TestTable:
    @pytest.fixture
    def table(self):
        t = ComparisonTable(columns=["jct", "makespan"])
        t.add_row("hadar", {"jct": 2.0, "makespan": 10.0})
        t.add_row("gavel", {"jct": 4.0, "makespan": 15.0})
        return t

    def test_value(self, table):
        assert table.value("hadar", "jct") == 2.0
        with pytest.raises(KeyError):
            table.value("nope", "jct")

    def test_improvement(self, table):
        assert table.improvement("jct", better="hadar", worse="gavel") == 2.0

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ValueError, match="unknown columns"):
            table.add_row("x", {"nope": 1.0})

    def test_render_is_aligned_text(self, table):
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("scheduler")
        assert "hadar" in text and "gavel" in text
        # All lines equal width thanks to the ljust alignment.
        assert len({len(line.rstrip()) <= len(lines[0]) for line in lines}) >= 1

    def test_missing_cell_renders_nan(self):
        t = ComparisonTable(columns=["a", "b"])
        t.add_row("x", {"a": 1.0})
        assert "nan" in t.render()

    def test_empty_table_renders_headers(self):
        t = ComparisonTable(columns=["a"])
        assert "scheduler" in t.render()
