"""Unit tests for timeline views and the text Gantt."""

import pytest

from repro.cluster.allocation import Allocation
from repro.core import HadarScheduler
from repro.metrics.timeline import job_intervals, render_gantt, type_occupancy
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.progress import JobRuntime
from repro.workload.trace import Trace

from tests.conftest import make_job


@pytest.fixture(scope="module")
def result():
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.cluster.topology import CommunicationModel

    cluster = Cluster(
        [Node(0, {"V100": 2}), Node(1, {"K80": 2})],
        comm=CommunicationModel.disabled(),
    )
    trace = Trace(
        [
            make_job(0, "resnet18", workers=2, epochs=4),
            make_job(1, "resnet18", workers=2, epochs=2),
        ]
    )
    return simulate(cluster, trace, HadarScheduler(),
                    checkpoint=NoOverheadCheckpoint())


class TestIntervals:
    def test_intervals_cover_runtime(self, result):
        for rt in result.runtimes.values():
            intervals = job_intervals(rt)
            assert intervals, "completed jobs must have run somewhere"
            total = sum(end - start for start, end, _ in intervals)
            # Held time ≥ active service time (pauses hold devices too).
            assert total * rt.job.num_workers >= rt.attained_service - 1e-6

    def test_intervals_ordered_and_disjoint(self, result):
        for rt in result.runtimes.values():
            intervals = job_intervals(rt)
            for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-9
                assert s1 < e1 and s2 < e2

    def test_empty_history(self):
        rt = JobRuntime(job=make_job())
        assert job_intervals(rt) == []

    def test_queued_stretch_skipped(self):
        rt = JobRuntime(job=make_job())
        alloc = Allocation.single(0, "V100", 1)
        rt.record_placement(0.0, alloc)
        rt.record_placement(100.0, Allocation({}))
        rt.record_placement(200.0, alloc)
        rt.finish_time = 300.0
        intervals = job_intervals(rt)
        assert [(s, e) for s, e, _ in intervals] == [(0.0, 100.0), (200.0, 300.0)]


class TestGantt:
    def test_renders_rows_per_job(self, result):
        text = render_gantt(result, width=40)
        lines = text.splitlines()
        assert len(lines) == 1 + len(result.runtimes)
        assert all("|" in line for line in lines[1:])

    def test_type_letters_present(self, result):
        text = render_gantt(result, width=40)
        # Both V100 and K80 were used somewhere in this contended run.
        assert "V" in text or "*" in text

    def test_max_jobs_truncates(self, result):
        text = render_gantt(result, width=40, max_jobs=1)
        assert "more jobs not shown" in text

    def test_width_validation(self, result):
        with pytest.raises(ValueError):
            render_gantt(result, width=5)

    def test_empty_run(self, no_comm_cluster):
        from repro.baselines.yarn import YarnCapacityScheduler

        empty = simulate(no_comm_cluster, Trace([]), YarnCapacityScheduler())
        assert render_gantt(empty) == "(empty schedule)"


class TestOccupancy:
    def test_occupancy_bounded_by_capacity(self, result):
        mid = result.makespan() / 2
        v = type_occupancy(result, "V100", mid)
        k = type_occupancy(result, "K80", mid)
        assert 0 <= v <= 2
        assert 0 <= k <= 2

    def test_occupancy_zero_after_makespan(self, result):
        assert type_occupancy(result, "V100", result.makespan() + 1.0) == 0
