"""Unit tests for result export."""

import json

import pytest

from repro.core import HadarScheduler
from repro.metrics.export import result_to_dict, save_result_json
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate


@pytest.fixture(scope="module")
def result():
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.cluster.topology import CommunicationModel
    from repro.workload.trace import Trace

    from tests.conftest import make_job

    cluster = Cluster(
        [Node(0, {"V100": 2, "K80": 1}), Node(1, {"P100": 3})],
        comm=CommunicationModel.disabled(),
    )
    trace = Trace(
        [
            make_job(0, "resnet18", workers=1, epochs=2),
            make_job(1, "cyclegan", workers=2, epochs=1),
        ]
    )
    return simulate(cluster, trace, HadarScheduler(),
                    checkpoint=NoOverheadCheckpoint())


class TestDict:
    def test_structure(self, result):
        d = result_to_dict(result)
        assert d["scheduler"] == "hadar"
        assert d["cluster"]["gpus"] == 6
        assert len(d["jobs"]) == 2
        assert d["summary"]["jobs_completed"] == 2
        assert not d["truncated"]

    def test_job_records_consistent(self, result):
        d = result_to_dict(result)
        for record in d["jobs"]:
            assert record["completed"]
            assert record["jct_s"] == pytest.approx(
                record["finish_time_s"] - record["arrival_time_s"]
            )
            assert record["first_start_s"] >= record["arrival_time_s"]

    def test_summary_matches_metrics(self, result):
        from repro.metrics.jct import jct_stats

        d = result_to_dict(result)
        assert d["summary"]["mean_jct_s"] == pytest.approx(jct_stats(result).mean)
        assert d["summary"]["makespan_s"] == pytest.approx(result.makespan())

    def test_json_serializable(self, result):
        json.dumps(result_to_dict(result))


class TestSave:
    def test_save_and_load(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result_json(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["scheduler"] == "hadar"
        assert len(loaded["jobs"]) == 2
