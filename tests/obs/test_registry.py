"""Unit tests for the dependency-free metrics registry."""

import json

import pytest

from repro.obs import (
    ALLOWED_LABEL_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricLabelError,
    MetricNameError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("repro_things_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labeled_series_are_independent(self):
        c = Counter("repro_things_total")
        c.inc(1, labels={"scheduler": "hadar"})
        c.inc(4, labels={"scheduler": "gavel"})
        assert c.value(labels={"scheduler": "hadar"}) == 1
        assert c.value(labels={"scheduler": "gavel"}) == 4
        assert c.value() == 0  # the unlabeled series is its own series

    def test_label_order_is_canonical(self):
        c = Counter("repro_things_total")
        c.inc(1, labels={"a": "1", "b": "2"})
        c.inc(1, labels={"b": "2", "a": "1"})
        assert c.value(labels={"a": "1", "b": "2"}) == 2
        assert len(c.series()) == 1

    def test_negative_increment_rejected(self):
        c = Counter("repro_things_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)


class TestGauge:
    def test_set_overwrites_and_inc_moves_both_ways(self):
        g = Gauge("repro_queue_depth")
        g.set(5)
        g.set(2)
        assert g.value() == 2
        g.inc(-3)
        assert g.value() == -1


class TestHistogram:
    def test_bucket_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_x_seconds", buckets=(0.1, 0.1, 1.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_x_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_x_seconds", buckets=())

    def test_valid_increasing_bounds_accepted(self):
        # Regression guard: the bounds check must not fire on a perfectly
        # increasing sequence.
        Histogram("repro_x_seconds", buckets=(0.001, 0.01, 0.1, 1.0))

    def test_cumulative_rendering_with_inf_bucket(self):
        h = Histogram("repro_x_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        (series,) = h.series()
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(106.2)
        assert series["min"] == pytest.approx(0.5)
        assert series["max"] == pytest.approx(100.0)
        assert series["buckets"] == [
            {"le": 1.0, "count": 2},
            {"le": 10.0, "count": 3},
            {"le": "+Inf", "count": 4},
        ]

    def test_count_and_empty_series(self):
        h = Histogram("repro_x_seconds", buckets=(1.0,))
        assert h.count() == 0
        h.observe(0.2, labels={"phase": "decision"})
        assert h.count(labels={"phase": "decision"}) == 1
        assert h.count() == 0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_rounds_total", help="rounds")
        b = reg.counter("repro_rounds_total")
        assert a is b
        assert a.help == "rounds"

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_count_all_bridges_counter_dicts(self):
        reg = MetricsRegistry()
        reg.count_all(
            "repro_hotpath",
            {"find_alloc_runs": 7, "cache_hits": 3},
            labels={"scheduler": "hadar"},
        )
        metric = reg.get("repro_hotpath_total")
        assert metric.value(
            labels={"counter": "find_alloc_runs", "scheduler": "hadar"}
        ) == 7
        assert metric.value(
            labels={"counter": "cache_hits", "scheduler": "hadar"}
        ) == 3

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total").inc()
        reg.gauge("repro_b").set(1.5, labels={"phase": "decision"})
        reg.histogram("repro_c_seconds", buckets=(1.0,)).observe(0.3)
        snap = json.loads(reg.to_json())
        assert set(snap) == {"repro_a_total", "repro_b", "repro_c_seconds"}
        assert snap["repro_a_total"]["type"] == "counter"
        assert snap["repro_b"]["type"] == "gauge"
        assert snap["repro_c_seconds"]["type"] == "histogram"

    def test_container_protocol(self):
        reg = MetricsRegistry()
        assert len(reg) == 0 and "repro_a_total" not in reg
        reg.counter("repro_a_total")
        assert len(reg) == 1 and "repro_a_total" in reg
        assert reg.names() == ["repro_a_total"]


class TestAdvanceTo:
    def test_tops_up_to_target_idempotently(self):
        c = Counter("repro_faults_total")
        c.advance_to(5, labels={"kind": "node"})
        c.advance_to(5, labels={"kind": "node"})
        assert c.value(labels={"kind": "node"}) == 5

    def test_never_moves_backwards(self):
        c = Counter("repro_faults_total")
        c.advance_to(5)
        c.advance_to(3)
        assert c.value() == 5

    def test_count_all_republishing_does_not_double_count(self):
        # The engine republishes the same hotpath stats every round;
        # count_all must converge, not accumulate.
        reg = MetricsRegistry()
        stats = {"find_alloc_runs": 7, "cache_hits": 3}
        for _ in range(3):
            reg.count_all("repro_hotpath", stats, labels={"scheduler": "hadar"})
        metric = reg.get("repro_hotpath_total")
        assert metric.value(
            labels={"counter": "find_alloc_runs", "scheduler": "hadar"}
        ) == 7


class TestNameAndLabelValidation:
    def test_bad_metric_name_rejected_at_registration(self):
        with pytest.raises(MetricNameError):
            MetricsRegistry().gauge("Bad-Name")

    def test_missing_repro_prefix_rejected(self):
        with pytest.raises(MetricNameError):
            MetricsRegistry().counter("rounds_total")

    def test_counter_requires_total_suffix(self):
        with pytest.raises(MetricNameError):
            MetricsRegistry().counter("repro_rounds")

    def test_gauge_must_not_end_in_total(self):
        with pytest.raises(MetricNameError):
            MetricsRegistry().gauge("repro_depth_total")

    def test_histogram_requires_unit_suffix(self):
        with pytest.raises(MetricNameError):
            MetricsRegistry().histogram("repro_latency", buckets=(1.0,))

    def test_unknown_label_name_rejected_at_write(self):
        c = MetricsRegistry().counter("repro_rounds_total")
        with pytest.raises(MetricLabelError, match="surprise"):
            c.inc(labels={"surprise": "x"})

    def test_allowlist_contents_are_the_documented_dimensions(self):
        assert {"scheduler", "gpu_type", "kind", "phase"} <= ALLOWED_LABEL_NAMES
