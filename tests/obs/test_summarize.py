"""summarize_trace / diff_traces over hand-built synthetic traces."""

import pytest

from repro.obs import diff_traces, summarize_trace

from tests.obs.test_schema import admitted_job, meta, round_record, summary


def skipped(job_id, reason="negative_payoff"):
    return {"job_id": job_id, "outcome": "skipped", "reason": reason}


def prices(**by_type):
    return [
        {"node": 0, "gpu_type": gpu, "price": price, "free": 2, "capacity": 4}
        for gpu, price in by_type.items()
    ]


def synthetic_trace():
    return [
        meta(),
        round_record(
            round=0, t=0.0, decision_s=0.004, queued=3,
            jobs=[admitted_job(job_id=1), skipped(2), skipped(3, "dp_skipped")],
            changes=[{"job_id": 1, "change": "place",
                      "old": [], "new": [[0, "V100", 2]]}],
            prices=prices(V100=0.5, K80=0.1),
        ),
        round_record(
            round=1, t=360.0, decision_s=0.010, queued=2,
            jobs=[{"job_id": 1, "outcome": "kept",
                   "allocation": [[1, "V100", 2]], "mu": 0.3},
                  admitted_job(job_id=2)],
            changes=[{"job_id": 1, "change": "migrate",
                      "old": [[0, "V100", 2]], "new": [[1, "V100", 2]]},
                     {"job_id": 2, "change": "place",
                      "old": [], "new": [[0, "V100", 2]]}],
            prices=prices(V100=0.8, K80=0.05),
        ),
        round_record(
            round=2, t=720.0, decision_s=0.001,
            jobs=[skipped(3)],
            changes=[{"job_id": 1, "change": "preempt",
                      "old": [[1, "V100", 2]], "new": []}],
        ),
        summary(rounds=3, completed=2, end_time=1080.0),
    ]


class TestSummarize:
    def test_counts_and_rates(self):
        s = summarize_trace(synthetic_trace())
        assert s.scheduler == "hadar"
        assert s.rounds == 3
        assert (s.admitted, s.kept, s.skipped) == (2, 1, 3)
        assert s.jobs_seen == 6
        assert s.admission_rate == pytest.approx(3 / 6)
        assert s.skip_rate == pytest.approx(3 / 6)
        assert s.skip_reasons == {"negative_payoff": 2, "dp_skipped": 1}
        assert s.changes == 4
        assert (s.placements, s.migrations, s.preemptions) == (2, 1, 1)
        assert s.total_decision_s == pytest.approx(0.015)
        assert s.summary_record["completed"] == 2

    def test_slowest_rounds_ordered_and_capped(self):
        s = summarize_trace(synthetic_trace(), top_k=2)
        assert [info["round"] for info in s.slowest_rounds] == [1, 0]
        assert s.slowest_rounds[0]["decision_s"] == pytest.approx(0.010)
        assert s.slowest_rounds[0]["queued"] == 2
        assert s.slowest_rounds[0]["admitted"] == 2

    def test_price_trajectories_track_mean_over_rounds(self):
        s = summarize_trace(synthetic_trace())
        assert s.price_trajectories["V100"] == {
            "first": 0.5, "min": 0.5, "max": 0.8, "last": 0.8,
        }
        assert s.price_trajectories["K80"]["last"] == pytest.approx(0.05)

    def test_empty_trace(self):
        s = summarize_trace([])
        assert s.rounds == 0 and s.admission_rate == 0.0 and s.skip_rate == 0.0


class TestDiff:
    def test_identical_traces_match(self):
        diff = diff_traces(synthetic_trace(), synthetic_trace())
        assert diff.decisions_match
        assert diff.identical_rounds == diff.compared_rounds == 3
        assert diff.first_divergence is None
        assert diff.speedup == pytest.approx(1.0)

    def test_allocation_mismatch_is_a_divergence(self):
        other = synthetic_trace()
        # Same admitted set, different gang for job 1 in round 1.
        other[2]["jobs"][0]["allocation"] = [[0, "K80", 2]]
        diff = diff_traces(synthetic_trace(), other)
        assert not diff.decisions_match
        assert diff.first_divergence["round"] == 1
        assert diff.first_divergence["only_a"] == [1]
        assert diff.first_divergence["only_b"] == [1]

    def test_round_count_mismatch_fails_even_if_prefix_matches(self):
        shorter = synthetic_trace()
        del shorter[3]  # drop round 2
        diff = diff_traces(synthetic_trace(), shorter)
        assert diff.compared_rounds == 2
        assert diff.identical_rounds == 2
        assert not diff.decisions_match

    def test_latency_comparison(self):
        fast = synthetic_trace()
        for record in fast:
            if record["kind"] == "round":
                record["decision_s"] = record["decision_s"] / 2
        diff = diff_traces(synthetic_trace(), fast)
        assert diff.decisions_match  # latency never affects the verdict
        assert diff.speedup == pytest.approx(2.0)

    def test_max_divergences_caps_list_not_first(self):
        other = synthetic_trace()
        for record in other:
            if record["kind"] == "round":
                record["jobs"] = [admitted_job(job_id=99)]
        diff = diff_traces(synthetic_trace(), other, max_divergences=1)
        assert len(diff.divergent_rounds) == 1
        assert diff.first_divergence["round"] == 0
