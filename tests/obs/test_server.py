"""The live observability endpoint: scrapes, health, status, byte-parity.

Starts real :class:`ObservabilityServer` instances on ephemeral ports
(``port=0``) and exercises them over HTTP, including a scrape hammering
``/metrics`` from a thread while the engine steps — the registry lock
must keep every scrape parseable and lint-clean — and a golden-parity
run proving the attached server changes no scheduling decision.
"""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cluster.cluster import simulated_cluster
from repro.obs import (
    MetricsRegistry,
    ObservabilityServer,
    lint_exposition,
    parse_exposition,
    parse_listen,
)
from repro.obs.watch import metric_value, render_sample, take_sample
from repro.sim.engine import SimulationEngine
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

from tests.core._hotpath_fingerprint import (
    SEEDS,
    digest,
    fingerprint,
    make_scheduler,
    run_scenario,
)

GOLDEN = json.loads(
    (Path(__file__).parents[1] / "core" / "golden_hotpath.json").read_text()
)


def get(url, timeout=10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture
def server():
    srv = ObservabilityServer(MetricsRegistry())
    srv.start()
    yield srv
    srv.stop()


class TestParseListen:
    def test_host_and_port(self):
        assert parse_listen("0.0.0.0:9418") == ("0.0.0.0", 9418)

    def test_bare_port_binds_localhost(self):
        assert parse_listen(":9000") == ("127.0.0.1", 9000)

    def test_bare_host_gets_default_port(self):
        from repro.obs.server import DEFAULT_PORT

        assert parse_listen("example.com") == ("example.com", DEFAULT_PORT)

    @pytest.mark.parametrize("spec", ["", "host:notaport", "host:70000"])
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_listen(spec)


class TestEndpoints:
    def test_healthz_always_ok(self, server):
        code, body = get(f"{server.url}/healthz")
        assert code == 200 and body == "ok\n"

    def test_readyz_transitions(self, server):
        assert get(f"{server.url}/readyz")[0] == 503
        server.set_ready(True)
        assert get(f"{server.url}/readyz")[0] == 200
        server.set_ready(False)
        assert get(f"{server.url}/readyz")[0] == 503

    def test_metrics_content_type_and_lint(self, server):
        server.registry.counter("repro_rounds_total", "Rounds").inc(3)
        with urllib.request.urlopen(f"{server.url}/metrics") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode("utf-8")
        assert lint_exposition(text) == []
        families = parse_exposition(text)
        assert families["repro_rounds_total"]["samples"][0][2] == 3.0

    def test_status_merges_status_fn_and_server_facts(self):
        srv = ObservabilityServer(
            MetricsRegistry(), status_fn=lambda: {"round": 7}
        )
        srv.start()
        try:
            payload = json.loads(get(f"{srv.url}/status")[1])
            assert payload["round"] == 7
            assert payload["ready"] is False
            assert payload["newest_snapshot"] is None
            srv.note_snapshot("/tmp/tick-1.snapshot.json")
            payload = json.loads(get(f"{srv.url}/status")[1])
            assert payload["newest_snapshot"] == "/tmp/tick-1.snapshot.json"
            assert payload["newest_snapshot_age_s"] >= 0.0
        finally:
            srv.stop()

    def test_unknown_path_404s(self, server):
        assert get(f"{server.url}/nope")[0] == 404

    def test_stop_is_idempotent(self):
        srv = ObservabilityServer(MetricsRegistry())
        srv.start()
        srv.stop()
        srv.stop()
        assert not srv.running


def build_engine(seed=1, num_jobs=10, **kwargs):
    return SimulationEngine(
        cluster=simulated_cluster(),
        trace=generate_philly_trace(
            PhillyTraceConfig(num_jobs=num_jobs, seed=seed)
        ),
        scheduler=make_scheduler("hadar"),
        **kwargs,
    )


class TestLiveEngine:
    def test_concurrent_scrapes_during_stepping(self):
        """Hammer /metrics from a thread while the engine steps; every
        scrape must parse and lint clean (the lock forbids torn rounds)."""
        metrics = MetricsRegistry()
        engine = build_engine(metrics=metrics)
        srv = ObservabilityServer(metrics, status_fn=engine.status)
        srv.start()
        stop = threading.Event()
        problems: list[str] = []
        scrapes = {"n": 0}

        def scrape_loop():
            while not stop.is_set():
                code, text = get(f"{srv.url}/metrics")
                assert code == 200
                problems.extend(lint_exposition(text))
                scrapes["n"] += 1

        thread = threading.Thread(target=scrape_loop)
        thread.start()
        try:
            engine.start()
            while engine.step():
                pass
            result = engine.stop()
        finally:
            stop.set()
            thread.join(timeout=10.0)
            srv.stop()
        assert problems == []
        assert scrapes["n"] > 0
        assert result.metrics  # registry snapshot still lands in the result

    def test_status_endpoint_tracks_engine(self):
        metrics = MetricsRegistry()
        engine = build_engine(metrics=metrics)
        srv = ObservabilityServer(metrics, status_fn=engine.status)
        srv.start()
        try:
            before = json.loads(get(f"{srv.url}/status")[1])
            assert before["lifecycle"] == "created" and before["round"] == 0
            engine.start()
            while engine.step():
                pass
            engine.stop()
            after = json.loads(get(f"{srv.url}/status")[1])
            assert after["lifecycle"] == "stopped"
            assert after["round"] == engine.scheduling_invocations > 0
            assert after["jobs_completed"] == 10
        finally:
            srv.stop()

    def test_watch_sample_against_live_endpoint(self):
        metrics = MetricsRegistry()
        engine = build_engine(metrics=metrics)
        srv = ObservabilityServer(metrics, status_fn=engine.status)
        srv.start()
        try:
            engine.start()
            while engine.step():
                pass
            engine.stop()
            sample = take_sample(srv.url)
            assert sample["status"]["jobs_completed"] == 10
            assert sample["utilization"]  # per-type gauges made it across
            rendered = render_sample(sample)
            assert "lifecycle : stopped" in rendered
            assert "jobs      : 10/10 done" in rendered
        finally:
            srv.stop()

    def test_metric_value_helper(self):
        families = {
            "repro_a": {
                "type": "gauge",
                "help": "",
                "samples": [("repro_a", {"kind": "x"}, 4.0)],
            }
        }
        assert metric_value(families, "repro_a", {"kind": "x"}) == 4.0
        assert metric_value(families, "repro_a", {"kind": "y"}) is None
        assert metric_value(families, "repro_missing") is None


class TestGoldenParityWithServer:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_attached_server_preserves_schedules(self, seed):
        """Live publication + a concurrently scraping server must not
        change one scheduling decision vs the recorded goldens."""
        metrics = MetricsRegistry()
        srv = ObservabilityServer(metrics)
        srv.start()
        stop = threading.Event()

        def scrape_loop():
            while not stop.is_set():
                get(f"{srv.url}/metrics")

        thread = threading.Thread(target=scrape_loop)
        thread.start()
        try:
            result = run_scenario(
                "hadar", seed, engine_kwargs={"metrics": metrics}
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
            srv.stop()
        golden = GOLDEN[f"hadar/{seed}"]
        assert digest(fingerprint(result)) == golden["sha256"], (
            f"hadar/seed={seed}: the exposition server perturbed the schedule"
        )
        assert repr(result.makespan()) == golden["makespan"]
