"""Schema validation: every rule in `repro.obs.schema`, exercised."""

import pytest

from repro.obs import SKIP_REASONS, SchemaError, validate_record, validate_trace
from repro.obs.schema import REJECT_REASONS, TRACE_SCHEMA_VERSION


def meta(scheduler="hadar", **extra):
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "meta",
        "scheduler": scheduler,
        "round_length_s": 360.0,
        "cluster": {"total_gpus": 8, "gpus_by_type": {"V100": 8}},
        **extra,
    }


def round_record(jobs=(), changes=(), **extra):
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "round",
        "round": 1,
        "t": 0.0,
        "jobs": list(jobs),
        "changes": list(changes),
        **extra,
    }


def summary(**extra):
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "summary",
        "rounds": 1,
        "completed": 0,
        "end_time": 360.0,
        **extra,
    }


def admitted_job(**extra):
    return {
        "job_id": 1,
        "outcome": "admitted",
        "allocation": [[0, "V100", 2]],
        "mu": 0.5,
        **extra,
    }


class TestRecordValidation:
    def test_all_three_kinds_validate(self):
        assert validate_record(meta()) == "meta"
        assert validate_record(round_record()) == "round"
        assert validate_record(summary()) == "summary"

    def test_missing_schema_version_rejected(self):
        record = meta()
        del record["schema"]
        with pytest.raises(SchemaError, match="schema"):
            validate_record(record)

    def test_newer_version_rejected(self):
        record = meta()
        record["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="newer"):
            validate_record(record)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            validate_record({"schema": TRACE_SCHEMA_VERSION, "kind": "bogus"})

    def test_unknown_extra_fields_allowed(self):
        # Additive evolution: new optional fields must not break readers.
        validate_record(meta(provenance="unit-test"))


class TestJobRecords:
    def test_admitted_needs_allocation(self):
        job = admitted_job()
        del job["allocation"]
        with pytest.raises(SchemaError, match="allocation"):
            validate_record(round_record(jobs=[job]))

    def test_admitted_with_nonpositive_mu_rejected(self):
        with pytest.raises(SchemaError, match="μ_j > 0"):
            validate_record(round_record(jobs=[admitted_job(mu=-0.1)]))
        with pytest.raises(SchemaError, match="μ_j > 0"):
            validate_record(round_record(jobs=[admitted_job(mu=0.0)]))

    def test_admitted_without_mu_is_record_level_valid(self):
        # Baselines have no payoff; mu is only forced stream-wide for hadar.
        job = admitted_job()
        del job["mu"]
        validate_record(round_record(jobs=[job]))

    def test_malformed_placement_triples_rejected(self):
        bad = admitted_job(allocation=[[0, "V100", 0]])  # zero count
        with pytest.raises(SchemaError, match="allocation"):
            validate_record(round_record(jobs=[bad]))

    @pytest.mark.parametrize("reason", SKIP_REASONS)
    def test_every_skip_reason_accepted(self, reason):
        job = {"job_id": 2, "outcome": "skipped", "reason": reason}
        validate_record(round_record(jobs=[job]))

    def test_unknown_skip_reason_rejected(self):
        job = {"job_id": 2, "outcome": "skipped", "reason": "felt_like_it"}
        with pytest.raises(SchemaError, match="reason"):
            validate_record(round_record(jobs=[job]))

    def test_breakdown_fields_nullable(self):
        job = admitted_job(
            breakdown={"consolidated_payoff": 0.4, "scattered_payoff": None}
        )
        validate_record(round_record(jobs=[job]))
        bad = admitted_job(breakdown={"consolidated_payoff": "high"})
        with pytest.raises(SchemaError, match="consolidated_payoff"):
            validate_record(round_record(jobs=[bad]))

    def test_changes_validated(self):
        change = {
            "job_id": 1,
            "change": "migrate",
            "old": [[0, "V100", 2]],
            "new": [[1, "P100", 2]],
        }
        validate_record(round_record(changes=[change]))
        with pytest.raises(SchemaError, match="change"):
            validate_record(round_record(changes=[{**change, "change": "swap"}]))


class TestStreamRules:
    def test_first_record_must_be_meta(self):
        with pytest.raises(SchemaError, match="record 0"):
            list(validate_trace([round_record()]))

    def test_nothing_after_summary(self):
        with pytest.raises(SchemaError, match="after the summary"):
            list(validate_trace([meta(), summary(), round_record()]))

    def test_hadar_admitted_jobs_must_carry_mu(self):
        job = admitted_job()
        del job["mu"]
        with pytest.raises(SchemaError, match="without its payoff"):
            list(validate_trace([meta("hadar"), round_record(jobs=[job])]))

    def test_baseline_admitted_jobs_may_omit_mu(self):
        job = admitted_job()
        del job["mu"]
        kinds = [k for _, k in validate_trace(
            [meta("gavel"), round_record(jobs=[job]), summary()]
        )]
        assert kinds == ["meta", "round", "summary"]


def fault_record(kind="gpu_failed", **extra):
    base = {
        "gpu_failed": {
            "t": 100.0, "fault_id": 0, "node": 3, "scope": "node",
            "permanent": False, "slots": [[3, "V100", 4]], "preempted": [7],
        },
        "gpu_recovered": {
            "t": 700.0, "fault_id": 0, "node": 3, "slots": [[3, "V100", 4]],
        },
        "job_rollback": {
            "t": 100.0, "job_id": 7, "fault_id": 0,
            "lost_iterations": 120.0, "lost_seconds": 12.0,
        },
        "decision_rejected": {
            "round": 4, "t": 1440.0, "job_id": 9, "reason": "failed_gpu",
            "repaired": True, "detail": "gang no longer fits",
        },
    }[kind]
    return {"schema": TRACE_SCHEMA_VERSION, "kind": kind, **base, **extra}


class TestFaultRecords:
    """The four additive fault-subsystem kinds (docs/robustness.md)."""

    @pytest.mark.parametrize(
        "kind", ["gpu_failed", "gpu_recovered", "job_rollback", "decision_rejected"]
    )
    def test_well_formed_records_validate(self, kind):
        validate_record(fault_record(kind))

    def test_fault_records_allowed_mid_stream(self):
        kinds = [k for _, k in validate_trace([
            meta("gavel"), fault_record("gpu_failed"),
            fault_record("job_rollback"), round_record(),
            fault_record("gpu_recovered"), summary(),
        ])]
        assert kinds == [
            "meta", "gpu_failed", "job_rollback", "round", "gpu_recovered",
            "summary",
        ]

    def test_bad_scope_rejected(self):
        with pytest.raises(SchemaError, match="scope"):
            validate_record(fault_record("gpu_failed", scope="rack"))

    def test_malformed_slots_rejected(self):
        with pytest.raises(SchemaError, match="slots"):
            validate_record(fault_record("gpu_recovered", slots=[[3, "V100"]]))

    def test_negative_loss_rejected(self):
        with pytest.raises(SchemaError, match="lost_iterations"):
            validate_record(fault_record("job_rollback", lost_iterations=-1.0))

    def test_unknown_reject_reason_rejected(self):
        with pytest.raises(SchemaError, match="reason"):
            validate_record(fault_record("decision_rejected", reason="cosmic_ray"))

    @pytest.mark.parametrize("reason", REJECT_REASONS)
    def test_every_reject_reason_accepted(self, reason):
        validate_record(fault_record("decision_rejected", reason=reason))

    def test_reject_reasons_mirror_stays_in_sync(self):
        # schema stays dependency-free; the mirror is pinned here instead.
        from repro.faults.validator import REJECT_REASONS as validator_reasons

        assert REJECT_REASONS == validator_reasons
