"""Prometheus text exposition: rendering goldens, parsing, and linting."""

import math

import pytest

from repro.obs import MetricsRegistry, lint_exposition, parse_exposition, render
from repro.obs.exposition import render_metric
from repro.obs.registry import Counter, Gauge, Histogram


class TestRenderGoldens:
    """Exact exposition text for every metric kind (format 0.0.4)."""

    def test_counter_with_labels(self):
        c = Counter("repro_jobs_done_total", "Jobs done")
        c.inc(3, labels={"scheduler": "hadar"})
        c.inc(1.5, labels={"scheduler": "gavel"})
        assert render_metric(c) == (
            "# HELP repro_jobs_done_total Jobs done\n"
            "# TYPE repro_jobs_done_total counter\n"
            'repro_jobs_done_total{scheduler="gavel"} 1.5\n'
            'repro_jobs_done_total{scheduler="hadar"} 3\n'
        )

    def test_gauge_unlabeled(self):
        g = Gauge("repro_queue_depth", "Depth")
        g.set(7)
        assert render_metric(g) == (
            "# HELP repro_queue_depth Depth\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 7\n"
        )

    def test_histogram_cumulative_buckets(self):
        h = Histogram("repro_wait_seconds", "Waits", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v, labels={"scheduler": "hadar"})
        assert render_metric(h) == (
            "# HELP repro_wait_seconds Waits\n"
            "# TYPE repro_wait_seconds histogram\n"
            'repro_wait_seconds_bucket{scheduler="hadar",le="1"} 1\n'
            'repro_wait_seconds_bucket{scheduler="hadar",le="10"} 2\n'
            'repro_wait_seconds_bucket{scheduler="hadar",le="+Inf"} 3\n'
            'repro_wait_seconds_sum{scheduler="hadar"} 105.5\n'
            'repro_wait_seconds_count{scheduler="hadar"} 3\n'
        )

    def test_zero_series_scalar_renders_present_with_zero(self):
        c = Counter("repro_faults_total", "Faults")
        assert render_metric(c).endswith("repro_faults_total 0\n")

    def test_zero_series_histogram_renders_full_ladder(self):
        h = Histogram("repro_wait_seconds", "Waits", buckets=(1.0,))
        text = render_metric(h)
        assert 'repro_wait_seconds_bucket{le="1"} 0' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_wait_seconds_sum 0" in text
        assert "repro_wait_seconds_count 0" in text

    def test_label_value_escaping(self):
        g = Gauge("repro_a", "x")
        g.set(1, labels={"reason": 'say "hi"\nback\\slash'})
        line = render_metric(g).splitlines()[-1]
        assert line == 'repro_a{reason="say \\"hi\\"\\nback\\\\slash"} 1'

    def test_help_escaping_and_special_values(self):
        g = Gauge("repro_a", "line1\nline2")
        g.set(float("inf"), labels={"kind": "hi"})
        g.set(float("-inf"), labels={"kind": "lo"})
        text = render_metric(g)
        assert "# HELP repro_a line1\\nline2" in text
        assert 'repro_a{kind="hi"} +Inf' in text
        assert 'repro_a{kind="lo"} -Inf' in text

    def test_registry_render_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("repro_zzz", "z")
        reg.counter("repro_aaa_total", "a")
        text = render(reg)
        assert text.index("repro_aaa_total") < text.index("repro_zzz")


class TestParse:
    def test_round_trip_through_parse(self):
        reg = MetricsRegistry()
        reg.counter("repro_rounds_total", "Rounds").inc(
            5, labels={"scheduler": "hadar"}
        )
        reg.histogram("repro_wait_seconds", "Waits", buckets=(1.0,)).observe(0.5)
        families = parse_exposition(render(reg))
        assert families["repro_rounds_total"]["type"] == "counter"
        (sample,) = families["repro_rounds_total"]["samples"]
        assert sample == ("repro_rounds_total", {"scheduler": "hadar"}, 5.0)
        hist = families["repro_wait_seconds"]
        assert hist["type"] == "histogram"
        names = [s[0] for s in hist["samples"]]
        assert names.count("repro_wait_seconds_bucket") == 2
        assert "repro_wait_seconds_sum" in names

    def test_parse_unescapes_label_values(self):
        families = parse_exposition(
            "# TYPE repro_a gauge\n"
            'repro_a{reason="a\\"b\\nc"} 1\n'
        )
        (_, labels, _) = families["repro_a"]["samples"][0]
        assert labels["reason"] == 'a"b\nc'

    def test_parse_special_values(self):
        families = parse_exposition(
            "# TYPE repro_a gauge\nrepro_a +Inf\n"
        )
        assert families["repro_a"]["samples"][0][2] == math.inf

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("this is not exposition text\n")


class TestLint:
    def good_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_rounds_total", "Rounds").inc(2)
        reg.gauge("repro_queue_depth", "Depth").set(1)
        reg.histogram("repro_wait_seconds", "Waits", buckets=(1.0,)).observe(0.5)
        return render(reg)

    def test_clean_render_lints_clean(self):
        assert lint_exposition(self.good_text()) == []

    def test_untyped_sample_flagged(self):
        problems = lint_exposition("repro_orphan 1\n")
        assert any("without a # TYPE" in p for p in problems)

    def test_nonconforming_name_flagged(self):
        text = "# HELP bad_name x\n# TYPE bad_name gauge\nbad_name 1\n"
        assert any("does not match" in p for p in lint_exposition(text))

    def test_counter_without_total_suffix_flagged(self):
        text = "# HELP repro_rounds x\n# TYPE repro_rounds counter\nrepro_rounds 1\n"
        assert any("'_total'" in p for p in lint_exposition(text))

    def test_duplicate_series_flagged(self):
        text = (
            "# HELP repro_a x\n# TYPE repro_a gauge\n"
            "repro_a 1\nrepro_a 2\n"
        )
        assert any("duplicate series" in p for p in lint_exposition(text))

    def test_histogram_missing_inf_bucket_flagged(self):
        text = (
            "# HELP repro_w_seconds x\n# TYPE repro_w_seconds histogram\n"
            'repro_w_seconds_bucket{le="1"} 1\n'
            "repro_w_seconds_sum 0.5\nrepro_w_seconds_count 1\n"
        )
        assert any("+Inf bucket" in p for p in lint_exposition(text))

    def test_histogram_count_mismatch_flagged(self):
        text = (
            "# HELP repro_w_seconds x\n# TYPE repro_w_seconds histogram\n"
            'repro_w_seconds_bucket{le="1"} 1\n'
            'repro_w_seconds_bucket{le="+Inf"} 2\n'
            "repro_w_seconds_sum 0.5\nrepro_w_seconds_count 3\n"
        )
        assert any("_count" in p for p in lint_exposition(text))

    def test_noncumulative_buckets_flagged(self):
        text = (
            "# HELP repro_w_seconds x\n# TYPE repro_w_seconds histogram\n"
            'repro_w_seconds_bucket{le="1"} 5\n'
            'repro_w_seconds_bucket{le="+Inf"} 2\n'
            "repro_w_seconds_sum 0.5\nrepro_w_seconds_count 2\n"
        )
        assert any("not cumulative" in p for p in lint_exposition(text))

    def test_unparseable_text_is_one_problem(self):
        problems = lint_exposition("}{")
        assert len(problems) == 1
