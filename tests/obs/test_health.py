"""Cluster-health metrics: fragmentation math, queue waits, churn."""

import pytest

from repro.cluster.cluster import simulated_cluster
from repro.obs import MetricsRegistry
from repro.obs.health import (
    QUEUE_WAIT_BUCKETS_S,
    STARVATION_AGE_S,
    fragmentation_by_type,
    queued_since,
)
from repro.sim.engine import simulate
from repro.sim.progress import JobRuntime
from repro.workload.job import Job
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

from tests.core._hotpath_fingerprint import make_scheduler


class TestFragmentation:
    def test_all_free_on_one_node_scores_zero(self):
        scores = fragmentation_by_type([((0, "V100"), 8)])
        assert scores["V100"] == 0.0
        assert scores["all"] == 0.0

    def test_evenly_scattered_free_scores_high(self):
        # 8 free V100s spread 1-per-node: largest block is 1/8th.
        slots = [((n, "V100"), 1) for n in range(8)]
        assert fragmentation_by_type(slots)["V100"] == pytest.approx(7 / 8)

    def test_aggregate_is_free_weighted(self):
        # 2 consolidated K80s (score 0) + 6 scattered V100s (score 2/3):
        # weighted mean is (2*0 + 6*2/3) / 8.
        slots = [((0, "K80"), 2)] + [((n, "V100"), 2) for n in range(3)]
        scores = fragmentation_by_type(slots)
        assert scores["K80"] == 0.0
        assert scores["V100"] == pytest.approx(2 / 3)
        assert scores["all"] == pytest.approx((6 * 2 / 3) / 8)

    def test_no_free_capacity_scores_zero(self):
        assert fragmentation_by_type([]) == {"all": 0.0}


class TestQueuedSince:
    def make_rt(self, arrival=100.0):
        from repro.workload.models import model_spec

        return JobRuntime(
            job=Job(
                job_id=1,
                model=model_spec("resnet50"),
                arrival_time=arrival,
                num_workers=1,
                epochs=1,
                iters_per_epoch=1000,
            )
        )

    def test_never_allocated_waits_since_arrival(self):
        assert queued_since(self.make_rt(arrival=100.0)) == 100.0

    def test_preempted_waits_since_empty_history_entry(self):
        rt = self.make_rt(arrival=100.0)
        rt.history.append((200.0, {"(0, 'V100')": 1}))
        rt.history.append((300.0, {}))  # preemption: empty allocation
        assert queued_since(rt) == 300.0


class TestHealthFamilies:
    """End-to-end: simulate with a registry and inspect the families."""

    @pytest.fixture(scope="class")
    def run(self):
        metrics = MetricsRegistry()
        result = simulate(
            simulated_cluster(),
            generate_philly_trace(PhillyTraceConfig(num_jobs=12, seed=2)),
            make_scheduler("hadar"),
            metrics=metrics,
        )
        return result, metrics

    def test_families_registered_and_bucketed(self, run):
        _, metrics = run
        for name in (
            "repro_gpu_fragmentation_ratio",
            "repro_gpu_utilization_ratio",
            "repro_queue_starvation_seconds",
            "repro_queue_starved_jobs",
            "repro_queue_wait_seconds",
            "repro_allocation_churn_total",
        ):
            assert name in metrics, name
        wait = metrics.get("repro_queue_wait_seconds")
        assert tuple(wait.buckets) == QUEUE_WAIT_BUCKETS_S

    def test_fragmentation_and_utilization_cover_every_type(self, run):
        _, metrics = run
        frag = metrics.get("repro_gpu_fragmentation_ratio")
        labels = {
            s["labels"]["gpu_type"] for s in frag.series()
        }
        assert {"V100", "P100", "K80", "all"} <= labels
        for record in metrics.get("repro_gpu_utilization_ratio").series():
            assert 0.0 <= record["value"] <= 1.0

    def test_churn_matches_result_accounting(self, run):
        result, metrics = run
        churn = metrics.get("repro_allocation_churn_total")

        def kind(k):
            return churn.value(labels={"scheduler": "hadar", "kind": k})

        # place+migrate entries each bump allocation_changes; migrate and
        # preempt entries each bump preemptions (a migration is counted
        # in both per-runtime counters).
        changes = sum(rt.allocation_changes for rt in result.runtimes.values())
        preempts = sum(rt.preemptions for rt in result.runtimes.values())
        assert kind("place") + kind("migrate") == changes > 0
        assert kind("preempt") + kind("migrate") == preempts

    def test_queue_waits_observed_per_placement_from_queue(self, run):
        result, metrics = run
        wait = metrics.get("repro_queue_wait_seconds")
        places = metrics.get("repro_allocation_churn_total").value(
            labels={"scheduler": "hadar", "kind": "place"}
        )
        assert wait.count(labels={"scheduler": "hadar"}) == places > 0

    def test_starvation_age_is_zero_after_everything_finished(self, run):
        result, metrics = run
        assert result.all_completed
        gauge = metrics.get("repro_queue_starvation_seconds")
        starved = metrics.get("repro_queue_starved_jobs")
        # Final rounds drained the queue, so the last published age must
        # be finite and the starved count zero.
        assert starved.value(labels={"scheduler": "hadar"}) == 0.0
        assert gauge.value(labels={"scheduler": "hadar"}) >= 0.0

    def test_health_phase_requires_no_snapshot_state(self):
        """A restored engine republished from the snapshotted registry
        continues bit-identically — the phase itself is stateless."""
        from repro.obs.health import ClusterHealthPhase

        assert ClusterHealthPhase.__slots__  # no __dict__, no hidden state
        registry = MetricsRegistry()
        phase = ClusterHealthPhase(registry, "hadar")
        assert phase.registry is registry

    def test_starvation_threshold_constant(self):
        assert STARVATION_AGE_S == 4 * 3600.0
