"""trace_to_perfetto: the Chrome trace_event document structure."""

import json

import pytest

from repro.obs import export_perfetto, trace_to_perfetto
from repro.obs.perfetto import _SIM_SCALE_US, _gang_label

from tests.obs.test_schema import meta, round_record, summary
from tests.obs.test_summarize import synthetic_trace


def events_of(doc, **match):
    return [
        e for e in doc["traceEvents"]
        if all(e.get(k) == v for k, v in match.items())
    ]


class TestGangLabel:
    def test_single_and_multi_node(self):
        assert _gang_label([[0, "V100", 2]]) == "2×V100@n0"
        assert _gang_label([[0, "V100", 2], [1, "K80", 1]]) == "2×V100@n0+1×K80@n1"
        assert _gang_label([]) == "idle"


class TestDocument:
    def test_envelope(self):
        doc = trace_to_perfetto(synthetic_trace())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["scheduler"] == "hadar"
        assert all({"ph", "pid"} <= set(e) for e in doc["traceEvents"])

    def test_round_frames_on_sim_axis(self):
        doc = trace_to_perfetto(synthetic_trace())
        frames = events_of(doc, ph="X", cat="round")
        assert [f["name"] for f in frames] == ["round 0", "round 1", "round 2"]
        # Frames span to the next round; 1 sim-second = 1000 trace µs.
        assert frames[0]["ts"] == 0.0
        assert frames[0]["dur"] == pytest.approx(360.0 * _SIM_SCALE_US)
        assert frames[1]["args"]["admitted"] == 2
        assert frames[1]["args"]["decision_ms"] == pytest.approx(10.0)

    def test_counter_tracks(self):
        doc = trace_to_perfetto(synthetic_trace())
        jobs_counters = events_of(doc, ph="C", name="jobs")
        assert jobs_counters[0]["args"] == {"queued": 3}
        price_counters = events_of(doc, ph="C", name="mean price (Eq. 5)")
        assert price_counters[0]["args"] == {"V100": 0.5, "K80": 0.1}

    def test_job_lifelines_follow_changes(self):
        doc = trace_to_perfetto(synthetic_trace())
        job1 = sorted(events_of(doc, ph="X", cat="allocation", tid=1),
                      key=lambda e: e["ts"])
        # place@0 → migrate@360 → preempt@720: two closed slices, both
        # ending at a change (never left dangling to "end").
        assert [(e["name"], e["args"]["until"]) for e in job1] == [
            ("2×V100@n0", "migrate"), ("2×V100@n1", "preempt"),
        ]
        assert job1[0]["dur"] == pytest.approx(360.0 * _SIM_SCALE_US)
        # Job 2 never gets a closing change: its lifeline runs to end_time.
        (job2,) = events_of(doc, ph="X", cat="allocation", tid=2)
        assert job2["args"]["until"] == "end"
        assert job2["dur"] == pytest.approx((1080.0 - 360.0) * _SIM_SCALE_US)
        # Each job track is named.
        names = {e["tid"]: e["args"]["name"]
                 for e in events_of(doc, ph="M", pid=2, name="thread_name")}
        assert names == {1: "job 1", 2: "job 2"}

    def test_wall_clock_decision_lane_is_end_to_end(self):
        doc = trace_to_perfetto(synthetic_trace())
        lane = sorted(events_of(doc, ph="X", cat="decision"),
                      key=lambda e: e["ts"])
        assert [e["ts"] for e in lane] == [0.0, pytest.approx(0.004e6),
                                           pytest.approx(0.014e6)]

    def test_phase_totals_from_summary(self):
        trace = [
            meta(),
            round_record(),
            summary(phase_timings={"decision": 0.5, "events": 0.25,
                                   "idle": 0.0}),
        ]
        doc = trace_to_perfetto(trace)
        lane = sorted(events_of(doc, ph="X", cat="phase"),
                      key=lambda e: e["ts"])
        assert [e["name"] for e in lane] == ["decision", "events"]
        assert lane[1]["ts"] == pytest.approx(0.5e6)

    def test_export_writes_file(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        src.write_text(
            "".join(json.dumps(r) + "\n" for r in synthetic_trace())
        )
        out = tmp_path / "sub" / "timeline.json"
        doc = export_perfetto(src, out)
        assert json.loads(out.read_text()) == doc
