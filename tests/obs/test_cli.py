"""``python -m repro.obs`` subcommands, driven through main()."""

import json

import pytest

from repro.obs.__main__ import main

from tests.obs.test_schema import meta, round_record
from tests.obs.test_summarize import synthetic_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in synthetic_trace()))
    return path


class TestValidate:
    def test_valid_trace_exits_zero(self, trace_file, capsys):
        assert main(["validate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "OK: 5 records" in out

    def test_schema_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        records = [meta(), round_record(jobs=[
            {"job_id": 1, "outcome": "skipped", "reason": "felt_like_it"}
        ])]
        bad.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_empty_trace_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["validate", str(empty)]) == 1
        assert "no records" in capsys.readouterr().err


class TestSummarize:
    def test_json_payload(self, trace_file, capsys):
        assert main(["summarize", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "hadar"
        assert payload["rounds"] == 3
        assert payload["skip_reasons"] == {"negative_payoff": 2, "dp_skipped": 1}
        assert "price_trajectories" in payload

    def test_human_output(self, trace_file, capsys):
        assert main(["summarize", str(trace_file), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "scheduler        : hadar" in out
        assert "slowest rounds   : (top 1)" in out
        assert "price trajectory" in out


class TestDiff:
    def test_identical_exits_zero(self, trace_file, capsys):
        assert main(["diff", str(trace_file), str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decisions_match"] is True
        assert payload["first_divergence"] is None

    def test_divergent_exits_one(self, trace_file, tmp_path, capsys):
        records = synthetic_trace()
        records[1]["jobs"][0]["allocation"] = [[1, "K80", 2]]
        other = tmp_path / "other.jsonl"
        other.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert main(["diff", str(trace_file), str(other)]) == 1
        assert "DIVERGE" in capsys.readouterr().out


class TestExport:
    def test_perfetto_export_writes_default_path(self, trace_file, capsys):
        assert main(["export", str(trace_file), "--perfetto"]) == 0
        out_path = trace_file.with_suffix(".perfetto.json")
        doc = json.loads(out_path.read_text())
        assert doc["otherData"]["source"] == "repro.obs"
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_export_without_format_exits_two(self, trace_file, capsys):
        assert main(["export", str(trace_file)]) == 2
        assert "--perfetto" in capsys.readouterr().err
