"""The DecisionTracer: streaming emission, validation at the source,
near-free disabled path, and the placement renderer."""

import json

import pytest

from repro.cluster.allocation import Allocation
from repro.obs import (
    DecisionTracer,
    SchemaError,
    load_trace,
    load_trace_set,
    read_trace,
    read_trace_set,
    trace_part_paths,
)
from repro.obs.schema import TRACE_SCHEMA_VERSION
from repro.obs.tracer import placements_list

from tests.obs.test_schema import meta, round_record


class TestEmission:
    def test_stamps_schema_version(self):
        sink = []
        tracer = DecisionTracer(sink=sink)
        record = meta()
        del record["schema"]
        tracer.emit(record)
        assert sink[0]["schema"] == TRACE_SCHEMA_VERSION
        assert tracer.records_emitted == 1

    def test_validates_on_emit(self):
        tracer = DecisionTracer(sink=[])
        with pytest.raises(SchemaError):
            tracer.emit({"kind": "bogus"})

    def test_validation_can_be_disabled(self):
        sink = []
        DecisionTracer(sink=sink, validate=False).emit({"kind": "bogus"})
        assert sink[0]["kind"] == "bogus"

    def test_disabled_tracer_emits_nothing(self):
        sink = []
        tracer = DecisionTracer(sink=sink, enabled=False)
        tracer.emit(meta())
        assert sink == [] and tracer.records_emitted == 0

    def test_path_and_sink_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            DecisionTracer(tmp_path / "t.jsonl", sink=[])

    def test_no_destination_raises_on_emit(self):
        with pytest.raises(ValueError, match="neither"):
            DecisionTracer().emit(meta())


class TestFileRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        with DecisionTracer(path) as tracer:
            tracer.emit(meta())
            tracer.emit(round_record())
        records = load_trace(path)
        assert [r["kind"] for r in records] == ["meta", "round"]
        # One compact JSON object per line.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_read_trace_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="trace.jsonl:2"):
            list(read_trace(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta"}\n\n{"kind": "summary"}\n')
        assert len(load_trace(path)) == 2


class TestRotation:
    def emit_n(self, tracer, n):
        for _ in range(n):
            tracer.emit(round_record())

    def test_parts_written_and_read_back_as_one_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # A round record is a few hundred bytes; 1 KiB forces rotation
        # after every couple of emits.
        with DecisionTracer(path, rotate_mb=1 / 1024) as tracer:
            self.emit_n(tracer, 20)
            assert tracer.parts_rotated > 0
            assert tracer.records_emitted == 20
        parts = trace_part_paths(path)
        assert len(parts) == tracer.parts_rotated
        assert [p.name for p in parts] == sorted(p.name for p in parts)
        assert path.exists()  # the live tail file stays at the base path
        records = load_trace_set(path)
        assert len(records) == 20
        assert all(r["kind"] == "round" for r in records)

    def test_read_trace_set_without_parts_reads_plain_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with DecisionTracer(path) as tracer:
            tracer.emit(meta())
        assert [r["kind"] for r in load_trace_set(path)] == ["meta"]

    def test_read_trace_set_missing_everything_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(read_trace_set(tmp_path / "absent.jsonl"))

    def test_fresh_run_clears_stale_parts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        stale = tmp_path / "trace.jsonl.part-000000"
        stale.write_text('{"kind": "round"}\n')
        with DecisionTracer(path) as tracer:
            tracer.emit(meta())
        assert not stale.exists()
        assert [r["kind"] for r in load_trace_set(path)] == ["meta"]

    def test_rotate_requires_path_destination(self):
        with pytest.raises(ValueError, match="path"):
            DecisionTracer(sink=[], rotate_mb=1.0)

    def test_rotate_mb_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            DecisionTracer(tmp_path / "t.jsonl", rotate_mb=0)


class TestPlacementsList:
    def test_allocation_rendered_sorted(self):
        alloc = Allocation({(1, "K80"): 1, (0, "V100"): 2})
        assert placements_list(alloc) == [[0, "V100", 2], [1, "K80", 1]]

    def test_plain_mapping_and_empty(self):
        assert placements_list({(0, "V100"): 4}) == [[0, "V100", 4]]
        assert placements_list(None) == []
        assert placements_list(Allocation({})) == []
