"""Unit tests for the dual price book (Eqs. 5-8)."""

import math

import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core.pricing import PriceBook, PriceCalibrator, PricingConfig
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


def queued(job):
    rt = JobRuntime(job=job)
    rt.state = JobState.QUEUED
    return rt


@pytest.fixture
def calibrated(small_cluster, matrix):
    jobs = [
        queued(make_job(0, "resnet18", workers=2, epochs=2)),
        queued(make_job(1, "resnet50", workers=4, epochs=1)),
        queued(make_job(2, "cyclegan", workers=1, epochs=1)),
    ]
    return PriceBook.calibrate(
        jobs=jobs,
        matrix=matrix,
        utility=NormalizedThroughputUtility(),
        state=small_cluster.fresh_state(),
        now=0.0,
    )


class TestPriceFunction:
    def test_boundaries(self, calibrated):
        """Eq. (5): k(0)=U_min, k(c)=U_max."""
        state = ClusterState({(0, "V100"): 4})
        assert calibrated.price(0, "V100", state) == pytest.approx(
            calibrated.u_min["V100"]
        )
        state.allocate(Allocation.single(0, "V100", 4))
        assert calibrated.price(0, "V100", state) == pytest.approx(
            calibrated.u_max["V100"]
        )

    def test_monotone_in_gamma(self, calibrated):
        state = ClusterState({(0, "V100"): 4})
        prices = []
        for _ in range(5):
            prices.append(calibrated.price(0, "V100", state))
            if state.free(0, "V100"):
                state.allocate(Allocation.single(0, "V100", 1))
        assert prices == sorted(prices)
        assert prices[0] < prices[-1]

    def test_exponential_shape(self, calibrated):
        """k(γ)/k(γ-1) is the constant (U_max/U_min)^(1/c)."""
        state = ClusterState({(0, "V100"): 4})
        prices = []
        for _ in range(5):
            prices.append(calibrated.price(0, "V100", state))
            if state.free(0, "V100"):
                state.allocate(Allocation.single(0, "V100", 1))
        ratios = [prices[i + 1] / prices[i] for i in range(4)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_cost_of_sums_slots(self, calibrated, small_cluster):
        state = small_cluster.fresh_state()
        alloc = Allocation({(0, "V100"): 2, (2, "K80"): 1})
        expected = (
            2 * calibrated.price(0, "V100", state)
            + calibrated.price(2, "K80", state)
        )
        assert calibrated.cost_of(alloc, state) == pytest.approx(expected)

    def test_unknown_type_is_free(self, calibrated):
        state = ClusterState({(0, "V100"): 4})
        book = PriceBook(u_min={"V100": 1.0}, u_max={"V100": 2.0}, eta=1.0)
        assert book.price(0, "A100", state) == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PriceBook(u_min={"V100": 2.0}, u_max={"V100": 1.0}, eta=1.0)
        with pytest.raises(ValueError):
            PriceBook(u_min={"V100": -1.0}, u_max={"V100": 1.0}, eta=1.0)


class TestCalibration:
    def test_bounds_positive_and_ordered(self, calibrated):
        for r in ("V100", "P100", "K80"):
            assert 0 < calibrated.u_min[r] < calibrated.u_max[r]

    def test_faster_types_command_higher_max_price(self, calibrated):
        # A V100 can generate more utility per worker than a K80.
        assert calibrated.u_max["V100"] > calibrated.u_max["K80"]

    def test_alpha_at_least_one(self, calibrated):
        assert calibrated.alpha() >= 1.0

    def test_min_ratio_enforced(self, small_cluster, matrix):
        jobs = [queued(make_job(0, "resnet18", workers=1, epochs=1))]
        book = PriceBook.calibrate(
            jobs, matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0,
            PricingConfig(min_ratio=math.e),
        )
        for r in book.u_max:
            if book.u_max[r] > 0:
                assert book.u_max[r] / book.u_min[r] >= math.e * (1 - 1e-9)

    def test_empty_workload_gives_zero_prices(self, small_cluster, matrix):
        book = PriceBook.calibrate(
            [], matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0,
        )
        state = small_cluster.fresh_state()
        assert book.price(0, "V100", state) == 0.0
        assert book.alpha() == 1.0

    def test_partial_progress_lowers_remaining_work_pricing(
        self, small_cluster, matrix
    ):
        rt = queued(make_job(0, "resnet18", workers=1, epochs=10))
        fresh = PriceBook.calibrate(
            [rt], matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0,
        )
        rt.iterations_done = 0.9 * rt.job.total_iterations
        nearly = PriceBook.calibrate(
            [rt], matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0,
        )
        # Less remaining work → shorter t^min → higher per-worker peak utility.
        assert nearly.u_max["V100"] > fresh.u_max["V100"]

    def test_explicit_eta_respected(self, small_cluster, matrix):
        jobs = [queued(make_job(0, "resnet18", workers=1, epochs=1))]
        book = PriceBook.calibrate(
            jobs, matrix, NormalizedThroughputUtility(),
            small_cluster.fresh_state(), 0.0, PricingConfig(eta=7.0),
        )
        assert book.eta == 7.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PricingConfig(eta=0.0)
        with pytest.raises(ValueError):
            PricingConfig(min_ratio=1.0)
        with pytest.raises(ValueError):
            PricingConfig(horizon_slack=0.0)


class TestIncrementalCalibrator:
    """The reused calibrator must be bit-equal to a per-round full rescan."""

    def _books_equal(self, a: PriceBook, b: PriceBook) -> None:
        assert a.u_min == b.u_min  # exact — no approx; parity is the contract
        assert a.u_max == b.u_max
        assert a.eta == b.eta

    def test_matches_full_rescan_across_rounds(self, small_cluster, matrix):
        """Arrivals, progress, and completions between rounds all land on
        the same book a from-scratch calibration would produce."""
        utility = NormalizedThroughputUtility()
        incremental = PriceCalibrator(PricingConfig())
        jobs = [
            queued(make_job(0, "resnet18", workers=2, epochs=2)),
            queued(make_job(1, "resnet50", workers=4, epochs=1)),
        ]
        late = queued(make_job(2, "cyclegan", workers=1, epochs=1))

        def round_at(queue, now):
            state = small_cluster.fresh_state()
            got = incremental.calibrate(queue, matrix, utility, state, now)
            want = PriceBook.calibrate(
                jobs=queue, matrix=matrix, utility=utility,
                state=small_cluster.fresh_state(), now=now,
            )
            self._books_equal(got, want)

        round_at(jobs, 0.0)
        round_at(jobs, 60.0)  # unchanged queue, later clock
        jobs[0].iterations_done = 0.5 * jobs[0].job.total_iterations
        round_at(jobs, 120.0)  # one job progressed
        round_at(jobs + [late], 180.0)  # arrival
        jobs[1].iterations_done = float(jobs[1].job.total_iterations)
        round_at([jobs[0], late], 240.0)  # completion leaves the queue

    def test_dirty_counts_only_changed_jobs(self, small_cluster, matrix):
        utility = NormalizedThroughputUtility()
        calib = PriceCalibrator(PricingConfig())
        jobs = [
            queued(make_job(0, "resnet18", workers=2, epochs=2)),
            queued(make_job(1, "resnet50", workers=4, epochs=1)),
        ]
        state = small_cluster.fresh_state()
        calib.calibrate(jobs, matrix, utility, state, 0.0)
        assert calib.last_jobs == 2
        assert calib.last_dirty == 2  # cold start: everything recomputed

        calib.calibrate(jobs, matrix, utility, state, 60.0)
        assert calib.last_dirty == 0  # remaining work unchanged -> O(delta)=0

        jobs[0].iterations_done = 10.0
        calib.calibrate(jobs, matrix, utility, state, 120.0)
        assert calib.last_dirty == 1  # only the job that progressed

        late = queued(make_job(2, "cyclegan", workers=1, epochs=1))
        calib.calibrate(jobs + [late], matrix, utility, state, 180.0)
        assert calib.last_dirty == 1  # only the arrival

    def test_reset_forgets_cached_records(self, small_cluster, matrix):
        utility = NormalizedThroughputUtility()
        calib = PriceCalibrator(PricingConfig())
        jobs = [queued(make_job(0, "resnet18", workers=2, epochs=2))]
        state = small_cluster.fresh_state()
        calib.calibrate(jobs, matrix, utility, state, 0.0)
        calib.reset()
        calib.calibrate(jobs, matrix, utility, state, 60.0)
        assert calib.last_dirty == 1  # cold again after reset
