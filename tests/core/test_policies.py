"""Unit tests for the objective factories."""

import pytest

from repro.core.policies import OBJECTIVES, hadar_for_objective
from repro.core.utility import (
    FinishTimeFairnessUtility,
    MakespanUtility,
    NormalizedThroughputUtility,
)


class TestFactory:
    def test_jct(self):
        sched = hadar_for_objective("jct")
        assert isinstance(sched.config.utility, NormalizedThroughputUtility)

    def test_makespan(self):
        sched = hadar_for_objective("makespan")
        assert isinstance(sched.config.utility, MakespanUtility)

    def test_ftf(self):
        sched = hadar_for_objective("ftf")
        assert isinstance(sched.config.utility, FinishTimeFairnessUtility)

    def test_unknown(self):
        with pytest.raises(ValueError, match="jct"):
            hadar_for_objective("latency")

    def test_objectives_constant_consistent(self):
        for obj in OBJECTIVES:
            assert hadar_for_objective(obj).name == "hadar"

    def test_base_config_preserved(self):
        from repro.core import HadarConfig
        from repro.core.dp import DPConfig

        base = HadarConfig(dp=DPConfig(queue_limit=3))
        sched = hadar_for_objective("jct", base_config=base)
        assert sched.config.dp.queue_limit == 3
