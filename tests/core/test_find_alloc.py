"""Unit tests for FIND_ALLOC."""

import pytest

from repro.cluster.allocation import Allocation
from repro.core.find_alloc import find_alloc
from repro.core.pricing import PriceBook
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job


def queued(job):
    rt = JobRuntime(job=job)
    rt.state = JobState.QUEUED
    return rt


NO_DELAY = lambda rt, alloc: 0.0  # noqa: E731
TEN_S = lambda rt, alloc: 10.0  # noqa: E731


@pytest.fixture
def utility():
    return NormalizedThroughputUtility()


def prices_for(jobs, cluster, matrix, utility):
    return PriceBook.calibrate(
        jobs=jobs, matrix=matrix, utility=utility,
        state=cluster.fresh_state(), now=0.0,
    )


class TestBasicSelection:
    def test_prefers_fastest_type_when_idle(
        self, no_comm_cluster, matrix, utility
    ):
        rt = queued(make_job(0, "resnet50", workers=2))
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), prices, matrix,
            no_comm_cluster, utility, 0.0, NO_DELAY,
        )
        assert cand is not None
        assert cand.allocation.gpu_types == {"V100"}
        assert cand.allocation.total_workers == 2

    def test_gang_size_always_exact(self, no_comm_cluster, matrix, utility):
        for w in (1, 2, 4):
            rt = queued(make_job(0, "resnet18", workers=w))
            prices = prices_for([rt], no_comm_cluster, matrix, utility)
            cand = find_alloc(
                rt, no_comm_cluster.fresh_state(), prices, matrix,
                no_comm_cluster, utility, 0.0, NO_DELAY,
            )
            assert cand is not None
            assert cand.allocation.total_workers == w

    def test_returns_none_when_nothing_fits(
        self, no_comm_cluster, matrix, utility
    ):
        rt = queued(make_job(0, "resnet18", workers=2))
        state = no_comm_cluster.fresh_state()
        # Drain every slot.
        for slot, free in list(state.free_slots()):
            state.allocate(Allocation({slot: free}))
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        assert (
            find_alloc(rt, state, prices, matrix, no_comm_cluster, utility,
                       0.0, NO_DELAY)
            is None
        )

    def test_mixed_gang_when_fast_types_scarce(
        self, no_comm_cluster, matrix, utility
    ):
        """Hadar's signature move: top up a gang with slower types."""
        rt = queued(make_job(0, "resnet18", workers=6))
        state = no_comm_cluster.fresh_state()
        # Take 3 of the 4 V100s: no 6-gang of V100s possible (and no type
        # has 6 devices), so the gang must mix.
        state.allocate(Allocation({(0, "V100"): 2, (1, "V100"): 1}))
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, state, prices, matrix, no_comm_cluster, utility, 0.0, NO_DELAY
        )
        assert cand is not None
        assert len(cand.allocation.gpu_types) >= 2

    def test_rate_is_bottleneck_times_gang(
        self, no_comm_cluster, matrix, utility
    ):
        rt = queued(make_job(0, "resnet18", workers=2))
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), prices, matrix,
            no_comm_cluster, utility, 0.0, NO_DELAY,
        )
        assert cand is not None
        slowest = min(matrix.rate("resnet18", t) for t in cand.allocation.gpu_types)
        assert cand.rate == pytest.approx(slowest * 2)


class TestStickiness:
    def test_current_allocation_kept_when_equivalent(
        self, no_comm_cluster, matrix, utility
    ):
        """With a reallocation penalty, keeping the current gang wins ties."""
        rt = queued(make_job(0, "resnet18", workers=2))
        rt.state = JobState.RUNNING
        rt.allocation = Allocation({(1, "V100"): 2})  # already on V100s
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), prices, matrix,
            no_comm_cluster, utility, 3600.0, TEN_S,
        )
        assert cand is not None
        assert cand.allocation == rt.allocation

    def test_upgrade_worth_the_delay(self, no_comm_cluster, matrix, utility):
        """A K80→V100 move pays 10 s but saves hours: it must move."""
        rt = queued(make_job(0, "resnet50", workers=2, epochs=2))
        rt.state = JobState.RUNNING
        rt.allocation = Allocation({(0, "K80"): 1, (2, "K80"): 1})
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), prices, matrix,
            no_comm_cluster, utility, 3600.0, TEN_S,
        )
        assert cand is not None
        assert cand.allocation != rt.allocation
        assert cand.allocation.gpu_types == {"V100"}


class TestPayoffFilter:
    def test_saturated_prices_block_admission(
        self, no_comm_cluster, matrix, utility
    ):
        """At U_max prices everywhere, payoffs go non-positive (line 33)."""
        rt = queued(make_job(0, "resnet18", workers=1))
        book = prices_for([rt], no_comm_cluster, matrix, utility)
        # Force saturation: a synthetic book where U_min == U_max == huge.
        huge = {t: 1e12 for t in ("V100", "P100", "K80")}
        saturated = PriceBook(u_min=dict(huge), u_max=dict(huge), eta=book.eta)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), saturated, matrix,
            no_comm_cluster, utility, 0.0, NO_DELAY,
        )
        assert cand is None

    def test_positive_payoff_on_idle_cluster(
        self, no_comm_cluster, matrix, utility
    ):
        rt = queued(make_job(0, "cyclegan", workers=1))
        prices = prices_for([rt], no_comm_cluster, matrix, utility)
        cand = find_alloc(
            rt, no_comm_cluster.fresh_state(), prices, matrix,
            no_comm_cluster, utility, 0.0, NO_DELAY,
        )
        assert cand is not None
        assert cand.payoff > 0
        assert cand.utility == pytest.approx(cand.payoff + cand.cost)


class TestCommAwareness:
    def test_consolidation_preferred_for_chatty_models(
        self, small_cluster, matrix, utility
    ):
        """With the comm model on, a single-server gang beats an equally
        fast cross-server one."""
        rt = queued(make_job(0, "resnet18", workers=2))
        prices = prices_for([rt], small_cluster, matrix, utility)
        cand = find_alloc(
            rt, small_cluster.fresh_state(), prices, matrix,
            small_cluster, utility, 0.0, NO_DELAY,
        )
        assert cand is not None
        assert cand.allocation.is_consolidated
