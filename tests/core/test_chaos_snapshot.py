"""Chaos satellite for the checkpointable engine: interrupt a run at
multiple points, throw the engine away, restore from the serialized
snapshot, run to completion — the schedule fingerprint must be
byte-identical to the uninterrupted run.

Every scenario runs with the full observer stack attached (fault
injection, decision tracer, invariant sanitizer, metrics registry):
an attribute any of those layers mutates but the snapshot misses shows
up here as a digest mismatch, not as a subtle drift in production.
The no-attachment restored runs are additionally pinned against the
committed goldens in ``golden_hotpath.json`` — restore must not merely
be self-consistent, it must reproduce the recorded schedules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.sanitizer import InvariantSanitizer
from repro.cluster.cluster import simulated_cluster
from repro.faults import FaultModel
from repro.obs import DecisionTracer, MetricsRegistry
from repro.sim.engine import SimulationEngine
from repro.sim.snapshot import SnapshotCodec
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

from tests.core._hotpath_fingerprint import (
    NUM_JOBS,
    SCHEDULER_NAMES,
    SEEDS,
    digest,
    fingerprint,
    make_scheduler,
)

GOLDEN = json.loads(
    (Path(__file__).with_name("golden_hotpath.json")).read_text(encoding="utf-8")
)

#: Interrupt fractions of the run's total event count — early (scheduler
#: caches still cold) and late (deep into completions and faults).
CUT_FRACTIONS = (1, 2)  # numerators over 3: T//3 and 2T//3


def build_engine(name: str, seed: int, *, chaos: bool) -> SimulationEngine:
    """One scenario engine; ``chaos=True`` attaches the observer stack.

    Every call builds the full stack from scratch — engines under test
    and their uninterrupted references must never share mutable parts.
    """
    kwargs = {}
    if chaos:
        kwargs = dict(
            faults=FaultModel(
                node_mtbf_h=6.0,
                gpu_mtbf_h=120.0,
                mttr_s=900.0,
                partition_mtbf_h=12.0,
                partition_duration_s=1200.0,
                failure_domains=2,
                degraded_mtbf_h=8.0,
                degraded_factor=0.6,
                degraded_duration_s=1800.0,
                healing_window_s=600.0,
                healing_factor=0.7,
                storage_mtbf_h=24.0,
                storage_tiers=2,
                seed=seed,
            ),
            tracer=DecisionTracer(sink=[]),
            sanitizer=InvariantSanitizer(mode="collect"),
            metrics=MetricsRegistry(),
        )
    return SimulationEngine(
        cluster=simulated_cluster(),
        trace=generate_philly_trace(
            PhillyTraceConfig(num_jobs=NUM_JOBS, seed=seed)
        ),
        scheduler=make_scheduler(name),
        **kwargs,
    )


def run_interrupted(name: str, seed: int, cut: int, *, chaos: bool):
    """Step to the cut, serialize, discard, restore, run to completion."""
    engine = build_engine(name, seed, chaos=chaos)
    engine.start()
    for _ in range(cut):
        if not engine.step():
            break
    blob = SnapshotCodec().dumps(engine.snapshot())
    del engine  # the restored engine must not lean on the original

    restored = build_engine(name, seed, chaos=chaos)
    restored.restore(SnapshotCodec().loads(blob))
    return restored.run()


def total_steps(name: str, seed: int, *, chaos: bool) -> int:
    engine = build_engine(name, seed, chaos=chaos)
    engine.start()
    steps = 0
    while engine.step():
        steps += 1
    engine.stop()
    return steps


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_kill_restore_is_byte_identical_under_chaos(name: str, seed: int):
    reference = build_engine(name, seed, chaos=True).run()
    want = digest(fingerprint(reference))
    steps = total_steps(name, seed, chaos=True)
    assert steps > 10
    for numerator in CUT_FRACTIONS:
        cut = steps * numerator // 3
        result = run_interrupted(name, seed, cut, chaos=True)
        assert digest(fingerprint(result)) == want, (
            f"{name}/{seed}: restored run diverged after snapshot at "
            f"step {cut}/{steps}"
        )
        assert repr(result.end_time) == repr(reference.end_time)
        assert len(result.completed) == len(reference.completed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_kill_restore_reproduces_goldens(name: str, seed: int):
    """Plain restored runs must land on the committed golden schedules."""
    golden = GOLDEN[f"{name}/{seed}"]
    steps = total_steps(name, seed, chaos=False)
    cut = steps // 2
    result = run_interrupted(name, seed, cut, chaos=False)
    assert digest(fingerprint(result)) == golden["sha256"]
    assert repr(result.makespan()) == golden["makespan"]
    assert len(result.completed) == golden["completed"]
