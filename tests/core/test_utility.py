"""Unit tests for the utility functions."""

import pytest

from repro.core.utility import (
    EffectiveThroughputUtility,
    FinishTimeFairnessUtility,
    MakespanUtility,
    NormalizedThroughputUtility,
)
from repro.sim.progress import JobRuntime
from repro.workload.throughput import default_throughput_matrix

from tests.conftest import make_job


class TestEffectiveThroughput:
    def test_paper_definition(self):
        u = EffectiveThroughputUtility()
        job = make_job(epochs=2, iters_per_epoch=500)
        # E·N / jct.
        assert u(job, 100.0) == pytest.approx(10.0)

    def test_decreasing_in_jct(self):
        u = EffectiveThroughputUtility()
        job = make_job()
        assert u(job, 10.0) > u(job, 20.0)

    def test_weight(self):
        job = make_job(epochs=1, iters_per_epoch=100)
        assert EffectiveThroughputUtility(weight=2.0)(job, 10.0) == pytest.approx(20.0)

    def test_invalid_jct(self):
        with pytest.raises(ValueError):
            EffectiveThroughputUtility()(make_job(), 0.0)


class TestNormalizedThroughput:
    def test_w_over_jct(self):
        u = NormalizedThroughputUtility()
        job = make_job(workers=4)
        assert u(job, 8.0) == pytest.approx(0.5)

    def test_density_is_model_agnostic(self):
        """Payoff density 1/jct: equal-JCT jobs tie regardless of model."""
        u = NormalizedThroughputUtility()
        fast = make_job(0, "resnet18", workers=2)
        slow = make_job(1, "resnet50", workers=2)
        assert u(fast, 100.0) == pytest.approx(u(slow, 100.0))

    def test_density_prefers_shorter(self):
        u = NormalizedThroughputUtility()
        job = make_job(workers=1)
        assert u(job, 60.0) > u(job, 3600.0)


class TestMakespan:
    @pytest.fixture
    def utility(self, matrix):
        return MakespanUtility(matrix=matrix)

    def test_decreasing_in_jct_per_job(self, utility):
        job = make_job()
        assert utility(job, 10.0) > utility(job, 20.0)

    def test_longest_remaining_ranks_first(self, utility, matrix):
        """LPT: with equal JCT estimates, more remaining work → more utility
        per worker."""
        short = JobRuntime(job=make_job(0, "resnet18", epochs=1))
        long = JobRuntime(job=make_job(1, "resnet18", epochs=50))
        jct = 3600.0
        assert utility.value_for(long, jct, 0.0) > utility.value_for(short, jct, 0.0)

    def test_value_for_uses_remaining(self, utility):
        rt = JobRuntime(job=make_job(epochs=10))
        fresh = utility.value_for(rt, 100.0, 0.0)
        rt.iterations_done = rt.job.total_iterations * 0.9
        nearly_done = utility.value_for(rt, 100.0, 0.0)
        assert nearly_done < fresh


class TestFinishTimeFairness:
    @pytest.fixture
    def utility(self, matrix):
        return FinishTimeFairnessUtility(matrix=matrix)

    def test_isolated_duration_uses_best_type(self, utility, matrix):
        job = make_job(model="resnet50", workers=1, epochs=1, iters_per_epoch=100)
        expected = 100.0 / (1 * matrix.max_rate("resnet50"))
        assert utility.isolated_duration(job) == pytest.approx(expected)

    def test_share_validation(self, matrix):
        with pytest.raises(ValueError):
            FinishTimeFairnessUtility(matrix=matrix, isolated_share=0.0)

    def test_decreasing_in_jct_per_job(self, utility):
        job = make_job()
        assert utility(job, 10.0) > utility(job, 20.0)

    def test_drifted_job_gains_weight(self, utility):
        """The same job, evaluated later without progress, matters more."""
        rt = JobRuntime(job=make_job(epochs=5))
        early = utility.value_for(rt, 7200.0, now=0.0)
        late = utility.value_for(rt, 7200.0, now=36000.0)
        assert late > early
