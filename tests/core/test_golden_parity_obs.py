"""Observability must be a pure observer.

Re-runs the golden hot-path scenarios with a live DecisionTracer and
MetricsRegistry attached and requires the *same* schedule fingerprints
as ``tests/core/test_hotpath_parity.py`` — tracing and metrics may read
scheduler state but must never perturb a single decision.  The traces
produced along the way must also be schema-valid end to end.
"""

import json
from pathlib import Path

import pytest

from repro.obs import DecisionTracer, MetricsRegistry, validate_trace

from tests.core._hotpath_fingerprint import (
    SCHEDULER_NAMES,
    SEEDS,
    digest,
    fingerprint,
    run_scenario,
)

GOLDEN_PATH = Path(__file__).with_name("golden_hotpath.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_tracing_and_metrics_preserve_schedules(name, seed):
    sink: list[dict] = []
    tracer = DecisionTracer(sink=sink)
    metrics = MetricsRegistry()
    result = run_scenario(
        name, seed, engine_kwargs={"tracer": tracer, "metrics": metrics}
    )

    golden = GOLDEN[f"{name}/{seed}"]
    assert digest(fingerprint(result)) == golden["sha256"], (
        f"{name}/seed={seed}: attaching the tracer/metrics changed the "
        f"schedule — observability must not influence decisions"
    )
    assert repr(result.makespan()) == golden["makespan"]
    assert len(result.completed) == golden["completed"]

    # The by-product trace is schema-valid and complete.
    kinds = [kind for _, kind in validate_trace(sink)]
    assert kinds[0] == "meta" and kinds[-1] == "summary"
    assert kinds.count("round") == result.scheduling_invocations

    # Metrics landed in the result snapshot with matching aggregates.
    rounds_series = result.metrics["repro_engine_rounds_total"]["series"]
    assert rounds_series[0]["value"] == result.scheduling_invocations
    completed_series = result.metrics["repro_jobs_completed_total"]["series"]
    assert completed_series[0]["value"] == len(result.completed)


def test_disabled_tracer_also_preserves_schedules():
    name, seed = "hadar", SEEDS[0]
    result = run_scenario(
        name, seed,
        engine_kwargs={"tracer": DecisionTracer(sink=[], enabled=False)},
    )
    assert digest(fingerprint(result)) == GOLDEN[f"{name}/{seed}"]["sha256"]
