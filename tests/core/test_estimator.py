"""Unit tests for the throughput estimator and profiling wrapper."""

import pytest

from repro.cluster.allocation import Allocation
from repro.core import HadarScheduler, ProfilingScheduler, ThroughputEstimator
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.sim.progress import JobRuntime, JobState
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestEstimator:
    def test_prior_is_optimistic(self):
        est = ThroughputEstimator(optimistic_rate=10.0)
        assert est.rate("resnet50", "K80") == 10.0
        assert est.observations("resnet50", "K80") == 0

    def test_first_observation_replaces_prior(self):
        est = ThroughputEstimator()
        est.observe("resnet50", "K80", 0.2)
        assert est.rate("resnet50", "K80") == pytest.approx(0.2)

    def test_ewma_blends(self):
        est = ThroughputEstimator(smoothing=0.5)
        est.observe("m", "V100", 2.0)
        est.observe("m", "V100", 4.0)
        assert est.rate("m", "V100") == pytest.approx(3.0)
        assert est.observations("m", "V100") == 2

    def test_nonpositive_observation_ignored(self):
        est = ThroughputEstimator()
        est.observe("m", "V100", 0.0)
        assert est.observations("m", "V100") == 0

    def test_observe_gang_attributes_bottleneck(self):
        est = ThroughputEstimator()
        est.observe("m", "V100", 10.0)
        est.observe("m", "K80", 1.0)
        rt = JobRuntime(job=make_job(model="resnet18", workers=3))
        alloc = Allocation({(0, "V100"): 2, (0, "K80"): 1})
        # Gang advanced 360 iters in 120 s with 3 workers → 1 it/s/worker,
        # attributed to the believed-slowest type (K80).
        est.observe_gang(rt, alloc, delta_iters=360.0, delta_seconds=120.0)
        assert est.observations("resnet18", "K80") == 1
        assert est.observations("resnet18", "V100") == 0

    def test_short_windows_skipped(self):
        est = ThroughputEstimator(min_observation_s=30.0)
        rt = JobRuntime(job=make_job())
        alloc = Allocation({(0, "V100"): 1})
        est.observe_gang(rt, alloc, delta_iters=10.0, delta_seconds=5.0)
        assert est.observations("resnet18", "V100") == 0

    def test_matrix_export(self):
        est = ThroughputEstimator(optimistic_rate=7.0)
        est.observe("m", "V100", 3.0)
        m = est.matrix(["m"], ["V100", "K80"])
        assert m.rate("m", "V100") == pytest.approx(3.0)
        assert m.rate("m", "K80") == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputEstimator(optimistic_rate=0.0)
        with pytest.raises(ValueError):
            ThroughputEstimator(smoothing=0.0)
        with pytest.raises(ValueError):
            ThroughputEstimator(min_observation_s=-1.0)

    def test_reset(self):
        est = ThroughputEstimator()
        est.observe("m", "V100", 1.0)
        est.reset()
        assert est.observations("m", "V100") == 0


class TestProfilingScheduler:
    def test_wraps_name_and_contract(self):
        wrapped = ProfilingScheduler(HadarScheduler())
        assert wrapped.name == "hadar+profiling"
        assert wrapped.round_based is True
        assert wrapped.reacts_to_events is False

    def test_completes_and_converges(self, no_comm_cluster, matrix):
        """Profiled Hadar finishes everything and its estimates approach
        the true rates for the types it exercised."""
        trace = Trace(
            [
                make_job(0, "resnet50", workers=2, epochs=2),
                make_job(1, "resnet18", workers=2, epochs=8),
            ]
        )
        wrapped = ProfilingScheduler(HadarScheduler())
        result = simulate(
            no_comm_cluster, trace, wrapped, matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        assert result.all_completed
        est = wrapped.estimator
        observed = [
            (m, t)
            for (m, t), n in est._counts.items()  # noqa: SLF001 - test introspection
            if n > 0
        ]
        assert observed, "profiling must have produced measurements"
        for model, type_name in observed:
            true = matrix.rate(model, type_name)
            assert est.rate(model, type_name) == pytest.approx(true, rel=0.2)

    def test_profiled_close_to_oracle(self, no_comm_cluster, matrix, philly_trace_small):
        """Scheduling on estimates costs little vs ground-truth rates."""
        oracle = simulate(
            no_comm_cluster, philly_trace_small, HadarScheduler(), matrix=matrix
        )
        profiled = simulate(
            no_comm_cluster,
            philly_trace_small,
            ProfilingScheduler(HadarScheduler()),
            matrix=matrix,
        )
        assert profiled.all_completed
        from repro.metrics.jct import jct_stats

        assert jct_stats(profiled).mean <= 1.5 * jct_stats(oracle).mean

    def test_reset_clears_everything(self):
        wrapped = ProfilingScheduler(HadarScheduler())
        wrapped.estimator.observe("m", "V100", 1.0)
        wrapped._last_seen[0] = (0.0, 0.0, Allocation({(0, "V100"): 1}))
        wrapped.reset()
        assert wrapped.estimator.observations("m", "V100") == 0
        assert not wrapped._last_seen
