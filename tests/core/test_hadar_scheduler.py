"""Unit and behavioural tests for the Hadar scheduler."""

import pytest

from repro.core import HadarConfig, HadarScheduler
from repro.core.dp import DPConfig
from repro.sim.checkpoint import NoOverheadCheckpoint
from repro.sim.engine import simulate
from repro.workload.trace import Trace

from tests.conftest import make_job


class TestScheduling:
    def test_simple_trace_completes(self, no_comm_cluster, matrix, tiny_trace):
        result = simulate(
            no_comm_cluster, tiny_trace, HadarScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        assert result.all_completed
        assert result.scheduler_name == "hadar"

    def test_uses_fast_types_first(self, no_comm_cluster, matrix):
        """A lone resnet50 job must land on V100s, its 10×-faster type."""
        trace = Trace([make_job(0, "resnet50", workers=2, epochs=1)])
        result = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[0]
        expected = trace[0].total_iterations / (2 * matrix.rate("resnet50", "V100"))
        # Finish time == one-round-aligned ideal V100 runtime.
        assert rt.finish_time == pytest.approx(expected, rel=1e-6)

    def test_deterministic(self, no_comm_cluster, matrix, philly_trace_small):
        a = simulate(no_comm_cluster, philly_trace_small, HadarScheduler(), matrix=matrix)
        b = simulate(no_comm_cluster, philly_trace_small, HadarScheduler(), matrix=matrix)
        assert a.jcts() == b.jcts()

    def test_alpha_exposed_after_scheduling(self, no_comm_cluster, matrix, tiny_trace):
        scheduler = HadarScheduler()
        simulate(no_comm_cluster, tiny_trace, scheduler, matrix=matrix)
        assert scheduler.last_alpha >= 1.0
        assert scheduler.last_prices is not None

    def test_reset_clears_state(self):
        scheduler = HadarScheduler()
        scheduler.last_alpha = 5.0
        scheduler.reset()
        assert scheduler.last_alpha == 1.0
        assert scheduler.last_prices is None

    def test_no_reallocate_running_mode(self, no_comm_cluster, matrix, tiny_trace):
        config = HadarConfig(reallocate_running=False)
        result = simulate(
            no_comm_cluster, tiny_trace, HadarScheduler(config), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        assert result.all_completed
        # Running jobs are pinned: no preemptions ever.
        assert all(rt.preemptions == 0 for rt in result.runtimes.values())

    def test_most_rounds_change_free(self, no_comm_cluster, matrix):
        """Stickiness: a lone job must not bounce between placements."""
        trace = Trace([make_job(0, "resnet18", workers=2, epochs=40)])
        result = simulate(no_comm_cluster, trace, HadarScheduler(), matrix=matrix)
        rt = result.runtimes[0]
        assert rt.preemptions == 0
        assert rt.allocation_changes == 1  # the initial placement only

    def test_greedy_config_passthrough(self, no_comm_cluster, matrix, tiny_trace):
        config = HadarConfig(dp=DPConfig(queue_limit=0))
        result = simulate(
            no_comm_cluster, tiny_trace, HadarScheduler(config), matrix=matrix
        )
        assert result.all_completed


class TestTaskLevelHeterogeneity:
    def test_mixes_types_when_blocked_otherwise(self, no_comm_cluster, matrix):
        """The paper's headline capability: a 6-GPU gang on a cluster where
        no single type has 6 devices free."""
        trace = Trace([make_job(0, "resnet18", workers=6, epochs=1)])
        result = simulate(
            no_comm_cluster, trace, HadarScheduler(), matrix=matrix,
            checkpoint=NoOverheadCheckpoint(),
        )
        rt = result.runtimes[0]
        assert rt.finish_time is not None
        # It ran — which no single-type scheduler could do on this cluster
        # (max 4 of any type) — and the engine enforced the gang size.
        assert rt.allocation_changes >= 1
