"""Schedule fingerprints for the hot-path golden-parity suite.

A *fingerprint* is a canonical, JSON-able digest of everything a
scheduler decided during one simulation: every job's placement history
(time + exact gang), preemption/JCT accounting, and the round counters.
Floats are rendered with ``repr`` so the digest only matches on
bit-identical results — the round-scoped caches must be
semantics-preserving, not merely approximately equal.

The golden file ``tests/core/golden_hotpath.json`` was captured from the
pre-``RoundContext`` implementation; ``capture_goldens`` regenerates it
(only do that deliberately, with a justification in the PR).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.baselines import GavelScheduler, TiresiasScheduler
from repro.cluster.cluster import simulated_cluster
from repro.core import HadarScheduler
from repro.sim.engine import simulate
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationResult

SEEDS = (1, 2, 3)
NUM_JOBS = 14
SCHEDULER_NAMES = ("hadar", "gavel", "tiresias")


def make_scheduler(name: str, **hadar_kwargs):
    """Fresh scheduler instance per run (schedulers carry round state)."""
    if name == "hadar":
        from repro.core.scheduler import HadarConfig

        if hadar_kwargs:
            return HadarScheduler(HadarConfig(**hadar_kwargs))
        return HadarScheduler()
    if name == "gavel":
        return GavelScheduler()
    if name == "tiresias":
        return TiresiasScheduler()
    raise ValueError(f"unknown scheduler {name!r}")


def run_scenario(
    name: str, seed: int, engine_kwargs: dict | None = None, **hadar_kwargs
) -> "SimulationResult":
    """One parity scenario; ``engine_kwargs`` flow to :func:`simulate`
    (the observability-parity suite attaches ``tracer=``/``metrics=``
    here and expects the same fingerprints)."""
    cluster = simulated_cluster()
    trace = generate_philly_trace(PhillyTraceConfig(num_jobs=NUM_JOBS, seed=seed))
    return simulate(
        cluster, trace, make_scheduler(name, **hadar_kwargs), **(engine_kwargs or {})
    )


def fingerprint(result: "SimulationResult") -> dict:
    """Canonical digest of one simulation's scheduling decisions."""
    jobs = {}
    for job_id in sorted(result.runtimes):
        rt = result.runtimes[job_id]
        jobs[str(job_id)] = {
            "finish": repr(rt.finish_time),
            "preemptions": rt.preemptions,
            "allocation_changes": rt.allocation_changes,
            "rounds_scheduled": rt.rounds_scheduled,
            "overhead": repr(rt.overhead_seconds),
            "history": [
                [repr(t), sorted(
                    [n, ty, c] for (n, ty), c in alloc.placements.items()
                )]
                for t, alloc in rt.history
            ],
        }
    return {
        "scheduler": result.scheduler_name,
        "end_time": repr(result.end_time),
        "rounds_with_change": result.rounds_with_change,
        "scheduling_invocations": result.scheduling_invocations,
        "jobs": jobs,
    }


def digest(fp: dict) -> str:
    blob = json.dumps(fp, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def capture_goldens() -> dict:
    """Golden map ``"scheduler/seed" -> {sha256, makespan, completed}``."""
    out: dict[str, dict] = {}
    for name in SCHEDULER_NAMES:
        for seed in SEEDS:
            result = run_scenario(name, seed)
            fp = fingerprint(result)
            out[f"{name}/{seed}"] = {
                "sha256": digest(fp),
                "makespan": repr(result.makespan()),
                "completed": len(result.completed),
            }
    return out


if __name__ == "__main__":  # pragma: no cover - capture shim
    from pathlib import Path

    golden = Path(__file__).with_name("golden_hotpath.json")
    golden.write_text(json.dumps(capture_goldens(), indent=2) + "\n")
    print(f"wrote {golden}")
