"""Unit tests for the DP_allocation dual subroutine."""

import pytest

from repro.core.dp import DPAllocator, DPConfig
from repro.core.pricing import PriceBook
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job

NO_DELAY = lambda rt, alloc: 0.0  # noqa: E731


def queued(job):
    rt = JobRuntime(job=job)
    rt.state = JobState.QUEUED
    return rt


def allocator_for(jobs, cluster, matrix, config=None):
    utility = NormalizedThroughputUtility()
    prices = PriceBook.calibrate(
        jobs=jobs, matrix=matrix, utility=utility,
        state=cluster.fresh_state(), now=0.0,
    )
    return DPAllocator(
        prices=prices, matrix=matrix, cluster=cluster, utility=utility,
        now=0.0, delay_estimator=NO_DELAY, config=config or DPConfig(),
    )


class TestExactDP:
    def test_everything_fits_everything_admitted(self, no_comm_cluster, matrix):
        jobs = [queued(make_job(i, "resnet18", workers=1)) for i in range(3)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix)
        chosen = alloc.allocate(jobs, no_comm_cluster.fresh_state())
        assert set(chosen) == {0, 1, 2}

    def test_capacity_respected_under_contention(self, no_comm_cluster, matrix):
        # 9 GPUs total; ask for 4 × 4 = 16.
        jobs = [queued(make_job(i, "resnet18", workers=4)) for i in range(4)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix)
        state = no_comm_cluster.fresh_state()
        chosen = alloc.allocate(jobs, state)
        assert 1 <= len(chosen) <= 2
        assert state.total_used() == 4 * len(chosen)

    def test_state_mutated_with_result(self, no_comm_cluster, matrix):
        jobs = [queued(make_job(0, "resnet18", workers=2))]
        alloc = allocator_for(jobs, no_comm_cluster, matrix)
        state = no_comm_cluster.fresh_state()
        chosen = alloc.allocate(jobs, state)
        assert state.total_used() == sum(
            c.allocation.total_workers for c in chosen.values()
        )

    def test_empty_queue(self, no_comm_cluster, matrix):
        alloc = allocator_for(
            [queued(make_job(0))], no_comm_cluster, matrix
        )
        assert alloc.allocate([], no_comm_cluster.fresh_state()) == {}

    def test_disjoint_allocations(self, no_comm_cluster, matrix):
        jobs = [queued(make_job(i, "resnet18", workers=2)) for i in range(4)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix)
        chosen = alloc.allocate(jobs, no_comm_cluster.fresh_state())
        probe = no_comm_cluster.fresh_state()
        for cand in chosen.values():
            probe.allocate(cand.allocation)  # raises on overlap


class TestGreedyFallback:
    def test_large_queue_uses_greedy(self, no_comm_cluster, matrix):
        config = DPConfig(queue_limit=2)
        jobs = [queued(make_job(i, "resnet18", workers=1)) for i in range(6)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix, config)
        chosen = alloc.allocate(jobs, no_comm_cluster.fresh_state())
        assert len(chosen) == 6  # all fit on 9 GPUs

    def test_greedy_only_mode(self, no_comm_cluster, matrix):
        config = DPConfig(queue_limit=0)
        jobs = [queued(make_job(i, "resnet18", workers=4)) for i in range(3)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix, config)
        state = no_comm_cluster.fresh_state()
        chosen = alloc.allocate(jobs, state)
        assert len(chosen) >= 1
        assert state.total_used() == 4 * len(chosen)

    def test_greedy_matches_exact_on_easy_instance(self, no_comm_cluster, matrix):
        """When everything fits, DP and greedy admit identical job sets."""
        jobs = [queued(make_job(i, "cyclegan", workers=1)) for i in range(4)]
        exact = allocator_for(jobs, no_comm_cluster, matrix, DPConfig(queue_limit=10))
        greedy = allocator_for(jobs, no_comm_cluster, matrix, DPConfig(queue_limit=0))
        chosen_exact = exact.allocate(jobs, no_comm_cluster.fresh_state())
        chosen_greedy = greedy.allocate(jobs, no_comm_cluster.fresh_state())
        assert set(chosen_exact) == set(chosen_greedy)

    def test_exact_no_worse_than_greedy(self, no_comm_cluster, matrix):
        """The DP's total payoff must dominate the greedy's."""
        jobs = [
            queued(make_job(0, "resnet18", workers=4)),
            queued(make_job(1, "resnet50", workers=4)),
            queued(make_job(2, "transformer", workers=2)),
            queued(make_job(3, "cyclegan", workers=2)),
        ]
        exact = allocator_for(jobs, no_comm_cluster, matrix, DPConfig(queue_limit=10))
        greedy = allocator_for(jobs, no_comm_cluster, matrix, DPConfig(queue_limit=0))
        payoff_exact = sum(
            c.payoff
            for c in exact.allocate(jobs, no_comm_cluster.fresh_state()).values()
        )
        payoff_greedy = sum(
            c.payoff
            for c in greedy.allocate(jobs, no_comm_cluster.fresh_state()).values()
        )
        assert payoff_exact >= payoff_greedy - 1e-9


class TestCostBranchObjective:
    def test_cost_branch_runs(self, no_comm_cluster, matrix):
        config = DPConfig(branch_objective="cost")
        jobs = [queued(make_job(i, "resnet18", workers=2)) for i in range(3)]
        alloc = allocator_for(jobs, no_comm_cluster, matrix, config)
        chosen = alloc.allocate(jobs, no_comm_cluster.fresh_state())
        # The literal objective still returns a capacity-feasible plan.
        probe = no_comm_cluster.fresh_state()
        for cand in chosen.values():
            probe.allocate(cand.allocation)


class TestConfigValidation:
    def test_bad_values(self):
        with pytest.raises(ValueError):
            DPConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            DPConfig(state_limit=0)
        with pytest.raises(ValueError):
            DPConfig(branch_objective="magic")
