"""Golden-parity suite for the round-scoped allocation engine.

The round caches (``RoundContext`` price/candidate/result layers plus the
incremental ``ClusterState.key``) are pure performance work: every test
here pins the cached fast path to **byte-identical** scheduling decisions
against ``tests/core/golden_hotpath.json``, a fingerprint file captured
from the pre-``RoundContext`` implementation, and against the live
``round_caching=False`` reference mode.

Also covers the unit-level cache contracts: Eq. (5) price memoization
keyed on free counts (so ``allocate``/``release`` "invalidate" exactly
the touched slots), the O(delta) incremental state key, and the shared
``FIND_ALLOC`` result cache tracking state mutation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core.dp import DPConfig
from repro.core.find_alloc import cached_find_alloc, find_alloc
from repro.core.pricing import PriceBook, PricingConfig
from repro.core.round_context import RoundContext
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState

from tests.conftest import make_job
from tests.core._hotpath_fingerprint import (
    SCHEDULER_NAMES,
    SEEDS,
    digest,
    fingerprint,
    run_scenario,
)

GOLDEN_PATH = Path(__file__).with_name("golden_hotpath.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

# Each simulation takes seconds; share runs across the assertions below.
_RESULTS: dict[tuple, object] = {}


def _run(name: str, seed: int, reference: bool = False):
    key = (name, seed, reference)
    if key not in _RESULTS:
        kwargs = {"dp": DPConfig(round_caching=False)} if reference else {}
        _RESULTS[key] = run_scenario(name, seed, **kwargs)
    return _RESULTS[key]


# -- golden parity: cached fast path ------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_cached_path_matches_golden(name: str, seed: int) -> None:
    """The shipped (caching) implementation reproduces the pre-RoundContext
    schedules bit-for-bit, for Hadar and both baselines."""
    result = _run(name, seed)
    golden = GOLDEN[f"{name}/{seed}"]
    assert digest(fingerprint(result)) == golden["sha256"]
    assert repr(result.makespan()) == golden["makespan"]
    assert len(result.completed) == golden["completed"]


# -- golden parity: reference mode --------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_reference_mode_matches_golden(seed: int) -> None:
    """``round_caching=False`` runs the same search with every cache layer
    disabled and must land on the identical schedule (only Hadar exercises
    the DP hot path, so only Hadar has a reference mode)."""
    result = _run("hadar", seed, reference=True)
    assert digest(fingerprint(result)) == GOLDEN[f"hadar/{seed}"]["sha256"]


# -- golden parity: calibration modes ------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_reference_calibration_matches_golden(seed: int) -> None:
    """``PricingConfig(incremental=False)`` rebuilds the Eq. 6-8 price book
    from scratch every round; the shipped incremental calibrator (covered by
    the cached-path tests above) must be byte-identical to it, so both modes
    pin to the same golden digests."""
    key = ("hadar", seed, "full-rescan-calibration")
    if key not in _RESULTS:
        _RESULTS[key] = run_scenario(
            "hadar", seed, pricing=PricingConfig(incremental=False)
        )
    result = _RESULTS[key]
    assert digest(fingerprint(result)) == GOLDEN[f"hadar/{seed}"]["sha256"]


# -- cache effectiveness -------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_candidate_evals_reduced_at_least_3x(seed: int) -> None:
    """The ISSUE's headline target: >=3x fewer cold candidate costings."""
    cached = _run("hadar", seed).hotpath_stats
    reference = _run("hadar", seed, reference=True).hotpath_stats
    assert cached["candidate_evals"] * 3 <= reference["candidate_evals"]
    # Logical FIND_ALLOC demand is identical; only the work done differs.
    assert cached["find_alloc_calls"] == reference["find_alloc_calls"]
    assert cached["find_alloc_runs"] <= reference["find_alloc_runs"]


def test_cache_layers_actually_engage() -> None:
    cached = _run("hadar", SEEDS[0]).hotpath_stats
    reference = _run("hadar", SEEDS[0], reference=True).hotpath_stats
    for counter in ("result_hits", "candidate_hits", "price_hits"):
        assert cached[counter] > 0, counter
        assert reference[counter] == 0, counter


# -- unit: price cache keyed on free counts ------------------------------------


def _make_prices(state: ClusterState) -> PriceBook:
    # Bounds sized so a small gang's payoff is positive on an idle
    # cluster (per-worker utilities here are ~0.06) yet prices still
    # rise visibly with occupancy.
    types = sorted({t for (_, t) in state.slots})
    return PriceBook(
        u_min={t: 1e-3 for t in types},
        u_max={t: 0.05 for t in types},
        eta=1.0,
    )


def _make_ctx(
    state, matrix, cluster, prices=None, caching: bool = True
) -> RoundContext:
    return RoundContext(
        prices=prices if prices is not None else _make_prices(state),
        matrix=matrix,
        cluster=cluster,
        utility=NormalizedThroughputUtility(),
        now=0.0,
        delay_estimator=lambda rt, new: 10.0,
        state=state,
        caching=caching,
    )


class TestPriceCache:
    def test_matches_pricebook_at_every_occupancy(self, small_cluster, matrix):
        """ctx.price(slot, free) equals the book's state-based price for
        every reachable free count of every slot."""
        state = ClusterState.from_cluster(small_cluster)
        prices = _make_prices(state)
        ctx = _make_ctx(state, matrix, small_cluster, prices=prices)
        for node_id, type_name in state.slots:
            cap = state.capacity(node_id, type_name)
            for free in range(cap + 1):
                probe = ClusterState.from_cluster(small_cluster)
                probe.allocate(
                    Allocation.from_pairs([(node_id, type_name, cap - free)])
                )
                expected = prices.price(node_id, type_name, probe)
                assert ctx.price((node_id, type_name), free) == expected

    def test_allocate_release_invalidate_by_key_change(
        self, small_cluster, matrix
    ):
        """Mutating the state changes the free count — the cache key — so
        the context serves fresh prices for touched slots and cached ones
        for everything else, with no explicit invalidation hook."""
        state = ClusterState.from_cluster(small_cluster)
        prices = _make_prices(state)
        ctx = _make_ctx(state, matrix, small_cluster, prices=prices)
        slot = (0, "V100")
        idle = ctx.price(slot, state.free(*slot))
        assert idle == prices.price(0, "V100", state)

        gang = Allocation.from_pairs([(0, "V100", 2)])
        state.allocate(gang)
        busy = ctx.price(slot, state.free(*slot))
        assert busy == prices.price(0, "V100", state)
        assert busy > idle  # Eq. (5) prices rise with occupancy

        evals = ctx.stats.price_evals
        state.release(gang)
        # Back at the original free count: the key matches again, so the
        # idle price is served from cache (a hit, not a recomputation).
        assert ctx.price(slot, state.free(*slot)) == idle
        assert ctx.stats.price_evals == evals
        assert ctx.stats.price_hits >= 1

    def test_reference_mode_never_caches(self, small_cluster, matrix):
        state = ClusterState.from_cluster(small_cluster)
        ctx = _make_ctx(state, matrix, small_cluster, caching=False)
        slot = (0, "V100")
        first = ctx.price(slot, 2)
        assert ctx.price(slot, 2) == first
        assert ctx.stats.price_evals == 2
        assert ctx.stats.price_hits == 0


# -- unit: incremental ClusterState.key ----------------------------------------


class TestIncrementalStateKey:
    def _reference_key(self, state: ClusterState) -> tuple[int, ...]:
        """The pre-optimization definition: sort the slots, read the frees."""
        return tuple(
            state.free(node_id, type_name)
            for node_id, type_name in sorted(state.slots)
        )

    def test_tracks_allocate_and_release(self, small_cluster):
        state = ClusterState.from_cluster(small_cluster)
        assert state.key() == self._reference_key(state)
        moves = [
            Allocation.from_pairs([(0, "V100", 2), (0, "K80", 1)]),
            Allocation.from_pairs([(1, "P100", 1)]),
            Allocation.from_pairs([(2, "P100", 2), (2, "K80", 1)]),
        ]
        for alloc in moves:
            state.allocate(alloc)
            assert state.key() == self._reference_key(state)
        for alloc in reversed(moves):
            state.release(alloc)
            assert state.key() == self._reference_key(state)

    def test_copies_diverge_independently(self, small_cluster):
        state = ClusterState.from_cluster(small_cluster)
        state.allocate(Allocation.from_pairs([(0, "V100", 1)]))
        parent_key = state.key()
        clone = state.copy()
        assert clone.key() == parent_key
        clone.allocate(Allocation.from_pairs([(1, "V100", 2)]))
        assert state.key() == parent_key  # parent unaffected
        assert clone.key() == self._reference_key(clone)
        assert clone.key() != parent_key

    def test_key_is_a_stable_snapshot(self, small_cluster):
        """key() returns a frozen tuple — later mutation must not alter a
        previously returned key (DP memo entries rely on this)."""
        state = ClusterState.from_cluster(small_cluster)
        before = state.key()
        snapshot = tuple(before)
        state.allocate(Allocation.from_pairs([(0, "V100", 2)]))
        assert before == snapshot
        assert state.key() != before


# -- unit: shared FIND_ALLOC result cache --------------------------------------


def _runtime(job_id: int = 0, workers: int = 2) -> JobRuntime:
    rt = JobRuntime(job=make_job(job_id, "resnet18", workers=workers))
    rt.state = JobState.QUEUED
    return rt


class TestResultCache:
    def test_repeat_call_is_a_hit_with_identical_result(
        self, small_cluster, matrix
    ):
        state = ClusterState.from_cluster(small_cluster)
        ctx = _make_ctx(state, matrix, small_cluster)
        rt = _runtime()
        first = cached_find_alloc(ctx, rt, state)
        runs = ctx.stats.find_alloc_runs
        second = cached_find_alloc(ctx, rt, state)
        assert second is first  # served from the result cache, same object
        assert ctx.stats.find_alloc_runs == runs
        assert ctx.stats.result_hits == 1

    def test_state_mutation_changes_the_key_and_reruns(
        self, small_cluster, matrix
    ):
        """After allocate() the state key differs, so the cache cannot serve
        the stale entry — and the fresh search agrees with reference mode."""
        state = ClusterState.from_cluster(small_cluster)
        prices = _make_prices(state)
        ctx = _make_ctx(state, matrix, small_cluster, prices=prices)
        rt = _runtime()
        before = cached_find_alloc(ctx, rt, state)
        assert before is not None

        state.allocate(Allocation.from_pairs([(0, "V100", 2), (1, "V100", 2)]))
        runs = ctx.stats.find_alloc_runs
        after = cached_find_alloc(ctx, rt, state)
        assert ctx.stats.find_alloc_runs == runs + 1  # genuine rerun
        reference = find_alloc(
            rt,
            state,
            prices,
            matrix,
            small_cluster,
            NormalizedThroughputUtility(),
            0.0,
            lambda _rt, _new: 10.0,
        )
        if after is None:
            assert reference is None
        else:
            assert reference is not None
            assert after.allocation == reference.allocation
            assert after.payoff == reference.payoff
            assert after.cost == reference.cost
