#!/usr/bin/env python3
"""A tour of Hadar's theory (Sec. III-D) on a live workload.

Calibrates the dual price book for a queue, prints the per-type price
bounds and the competitive ratio 2α of Theorem 2, and numerically checks
the three structural properties the proof needs (price boundaries,
monotonicity, the differential allocation-cost relationship).

Run:  python examples/theory_tour.py
"""

from repro import PhillyTraceConfig, default_throughput_matrix, generate_philly_trace, simulated_cluster
from repro.core import HadarScheduler
from repro.core.pricing import PriceBook
from repro.core.utility import NormalizedThroughputUtility
from repro.sim.progress import JobRuntime, JobState
from repro.theory import (
    check_allocation_cost_relationship,
    check_price_boundaries,
    check_price_monotonicity,
    competitive_bound,
)


def main() -> None:
    cluster = simulated_cluster()
    matrix = default_throughput_matrix()
    trace = generate_philly_trace(PhillyTraceConfig(num_jobs=24, seed=13))

    queue = []
    for job in trace:
        rt = JobRuntime(job=job)
        rt.state = JobState.QUEUED
        queue.append(rt)

    book = PriceBook.calibrate(
        jobs=queue,
        matrix=matrix,
        utility=NormalizedThroughputUtility(),
        state=cluster.fresh_state(),
        now=0.0,
    )

    print("Calibrated price bounds (Eqs. 6-7):")
    for r in sorted(book.u_max):
        print(f"  {r:6s} U_min = {book.u_min[r]:.3e}   U_max = {book.u_max[r]:.3e}")
    print(f"  η = {book.eta:.3f}")

    alpha = book.alpha()
    print(f"\nCompetitive factor α = max_r(1, ln U_max/U_min) = {alpha:.3f}")
    print(f"Theorem 2 guarantee: total utility ≥ OPT / {competitive_bound(alpha):.3f}")

    print("\nStructural checks of the price function (Lemma 3 / Def. 2):")
    for r in sorted(book.u_max):
        cap = cluster.capacity(r)
        checks = {
            "boundaries": check_price_boundaries(book, r, cap),
            "monotonicity": check_price_monotonicity(book, r, cap),
            "allocation-cost": check_allocation_cost_relationship(book, r, cap),
        }
        status = "  ".join(f"{k}: {'ok' if v else 'FAIL'}" for k, v in checks.items())
        print(f"  {r:6s} {status}")

    # α as the scheduler actually experiences it, round by round.
    from repro import simulate

    scheduler = HadarScheduler()
    simulate(cluster, trace.head(8), scheduler)
    print(f"\nα of the last live scheduling round: {scheduler.last_alpha:.3f}")


if __name__ == "__main__":
    main()
