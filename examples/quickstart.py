#!/usr/bin/env python3
"""Quickstart: schedule a small DNN-training workload with Hadar.

Builds the paper's simulated cluster (15 nodes; 20 each of V100 / P100 /
K80), generates a 40-job synthetic Microsoft-trace workload, runs the
Hadar scheduler against Gavel, and prints the headline metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    GavelScheduler,
    HadarScheduler,
    PhillyTraceConfig,
    default_throughput_matrix,
    finish_time_fairness,
    generate_philly_trace,
    jct_stats,
    simulate,
    simulated_cluster,
    utilization_summary,
)


def main() -> None:
    cluster = simulated_cluster()
    print(f"Cluster: {cluster}")

    trace = generate_philly_trace(
        PhillyTraceConfig(num_jobs=40, arrival_pattern="static", seed=7)
    )
    print(f"Workload: {trace}\n")

    matrix = default_throughput_matrix()
    print(f"{'scheduler':10s} {'mean JCT':>10s} {'median':>10s} "
          f"{'makespan':>10s} {'util':>7s} {'FTF':>7s}")
    for scheduler in (HadarScheduler(), GavelScheduler()):
        result = simulate(cluster, trace, scheduler)
        stats = jct_stats(result)
        util = utilization_summary(result, contended=True)
        ftf = finish_time_fairness(result, matrix)
        print(
            f"{scheduler.name:10s} {stats.mean_hours:9.2f}h {stats.median_hours:9.2f}h "
            f"{result.makespan() / 3600:9.2f}h {util.overall:6.1%} {ftf.mean:7.2f}"
        )

    print(
        "\nLower is better everywhere; Hadar's task-level heterogeneous "
        "gangs win on JCT and fairness."
    )


if __name__ == "__main__":
    main()
