#!/usr/bin/env python3
"""The AWS prototype experiment (Sec. IV-B, Table III, Fig. 10).

Eight single-GPU instances (2×T4, 2×K520, 2×K80, 2×V100) running ten
jobs from the Table II model zoo, with checkpoint costs modelled from
each model's checkpoint size over the instances' SSDs (Table IV
calibration).

Run:  python examples/prototype_cluster.py
"""

from repro import prototype_cluster
from repro.experiments.prototype import prototype_trace, run_prototype


def main() -> None:
    cluster = prototype_cluster()
    trace = prototype_trace()
    print(f"Cluster: {cluster}")
    print("Workload:")
    for job in trace:
        print(
            f"  job {job.job_id}: {job.model.name:12s} W={job.num_workers} "
            f"E={job.epochs}"
        )

    results = run_prototype()
    print("\nTable III — average JCT and makespan (hours):")
    print(results.table3.render())

    print("\nFig. 10 — GPU utilization over contended windows:")
    print(results.fig10.render(float_fmt="{:.1%}"))

    for kind in ("physical", "simulated"):
        gain = results.table3.value(f"gavel/{kind}", "jct_h") / results.table3.value(
            f"hadar/{kind}", "jct_h"
        )
        print(f"\n[{kind}] Hadar JCT gain over Gavel: {gain:.2f}× (paper: 2.3×)")


if __name__ == "__main__":
    main()
