#!/usr/bin/env python3
"""Expressing other scheduling objectives — and writing your own.

Sec. III-A: Hadar's optimization framework is objective-agnostic; the
utility function is the policy.  This example

1. runs the three built-in objectives (average JCT, makespan,
   finish-time fairness) on one workload and shows each winning its own
   metric, and
2. defines a custom *deadline-aware* utility from scratch and plugs it
   into the unchanged primal-dual machinery.

Run:  python examples/custom_policy.py
"""

from dataclasses import dataclass

from repro import (
    HadarScheduler,
    PhillyTraceConfig,
    default_throughput_matrix,
    finish_time_fairness,
    generate_philly_trace,
    jct_stats,
    simulate,
    simulated_cluster,
)
from repro.core import HadarConfig, hadar_for_objective
from repro.core.utility import Utility
from repro.workload.job import Job


@dataclass(frozen=True)
class DeadlineUtility(Utility):
    """Value completing a job before ``deadline_s`` after its arrival.

    Full value inside the deadline, decaying harmonically beyond it —
    the dual prices then admit at-risk jobs first.
    """

    deadline_s: float = 12 * 3600.0
    scale: float = 1.0

    def value(self, job: Job, jct: float) -> float:
        if jct <= self.deadline_s:
            return self.scale * job.num_workers
        return self.scale * job.num_workers * self.deadline_s / jct


def main() -> None:
    cluster = simulated_cluster()
    trace = generate_philly_trace(PhillyTraceConfig(num_jobs=36, seed=4))
    matrix = default_throughput_matrix()

    schedulers = {
        "jct": hadar_for_objective("jct"),
        "makespan": hadar_for_objective("makespan"),
        "ftf": hadar_for_objective("ftf"),
        "deadline(12h)": HadarScheduler(HadarConfig(utility=DeadlineUtility())),
    }

    print(f"{'objective':14s} {'mean JCT':>10s} {'makespan':>10s} {'FTF':>7s} "
          f"{'≤12h (%)':>9s}")
    results = {}
    for name, scheduler in schedulers.items():
        result = simulate(cluster, trace, scheduler)
        results[name] = result
        stats = jct_stats(result)
        ftf = finish_time_fairness(result, matrix)
        met = sum(1 for j in result.jcts() if j <= 12 * 3600) / len(trace)
        print(
            f"{name:14s} {stats.mean_hours:9.2f}h {result.makespan() / 3600:9.2f}h "
            f"{ftf.mean:7.2f} {met:8.1%}"
        )

    print(
        "\nEach objective wins its own column — the same scheduler, pricing "
        "and DP subroutine; only U_j(·) changed."
    )


if __name__ == "__main__":
    main()
