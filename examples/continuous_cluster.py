#!/usr/bin/env python3
"""Online scheduling under continuous (Poisson) job arrivals.

Simulates a production-like day: jobs stream into the 60-GPU cluster at a
configurable rate and Hadar schedules them online, reacting to arrivals,
completions, and stragglers.  Compares against Gavel and Tiresias and
reports the Fig. 8-style min/mean/max JCT band.

Run:  python examples/continuous_cluster.py [jobs_per_hour]
"""

import sys

from repro import (
    GavelScheduler,
    HadarScheduler,
    PhillyTraceConfig,
    TiresiasScheduler,
    generate_philly_trace,
    jct_stats,
    simulate,
    simulated_cluster,
)


def main(jobs_per_hour: float = 45.0) -> None:
    cluster = simulated_cluster()
    trace = generate_philly_trace(
        PhillyTraceConfig(
            num_jobs=50,
            arrival_pattern="continuous",
            jobs_per_hour=jobs_per_hour,
            seed=21,
        )
    )
    print(
        f"{len(trace)} jobs arriving at λ={jobs_per_hour:.0f}/h over "
        f"{trace.horizon / 3600:.1f} h on {cluster}\n"
    )

    print(f"{'scheduler':10s} {'min JCT':>9s} {'mean JCT':>9s} {'max JCT':>9s} "
          f"{'band':>9s} {'queue wait':>11s}")
    for scheduler in (HadarScheduler(), GavelScheduler(), TiresiasScheduler()):
        result = simulate(cluster, trace, scheduler)
        stats = jct_stats(result)
        band = (stats.max - stats.min) / 3600
        print(
            f"{scheduler.name:10s} {stats.min / 3600:8.2f}h {stats.mean_hours:8.2f}h "
            f"{stats.max / 3600:8.2f}h {band:8.2f}h "
            f"{stats.mean_total_waiting / 3600:10.2f}h"
        )

    print(
        "\nHadar holds the tightest completion-time band (Fig. 8) and the "
        "shortest queuing delay."
    )


if __name__ == "__main__":
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0
    main(rate)
