#!/usr/bin/env python3
"""The paper's Fig. 1 motivation example, end to end.

Three jobs on {2×V100, 3×P100, 1×K80}: J1 wants 3 GPUs (80 epochs), J2
wants 2 (30 epochs), J3 wants 2 (50 epochs).  Gavel must keep each gang
on one device type; Hadar mixes J1 across two V100s and the K80, lifting
its throughput to 30 epochs/round and cutting the average JCT.

Run:  python examples/motivation_example.py
"""

from repro.experiments.motivation import run_motivation_example, toy_setup


def main() -> None:
    cluster, trace, matrix = toy_setup()
    print(f"Cluster: {cluster}")
    for job in trace:
        print(
            f"  J{job.job_id + 1}: wants {job.num_workers} GPUs, "
            f"{job.epochs} epochs"
        )

    print("\nPer-worker throughput (epochs/round):")
    for model in matrix.models():
        row = {t: round(matrix.rate(model, t) * 360.0, 2) for t in ("V100", "P100", "K80")}
        print(f"  {model}: {row}")

    outcomes = run_motivation_example()
    print("\nOutcome (average epochs/round per job; paper: Hadar 26.27/15/10,"
          " Gavel 20/10/10):")
    for name in ("hadar", "gavel"):
        o = outcomes[name]
        tp = {f"J{k + 1}": round(v, 2) for k, v in sorted(o.avg_round_throughput.items())}
        print(f"  {name:6s}: {tp}   mean JCT = {o.mean_jct_rounds:.2f} rounds")

    improvement = outcomes["gavel"].mean_jct_rounds / outcomes["hadar"].mean_jct_rounds
    print(f"\nHadar average-JCT improvement: {improvement:.2f}× (paper ≈ 1.2×)")


if __name__ == "__main__":
    main()
