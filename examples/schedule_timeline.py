#!/usr/bin/env python3
"""Visualize a schedule as a text Gantt chart.

Runs Hadar and Tiresias on a small contended workload and prints each
schedule: rows are jobs, columns time buckets, letters the GPU type of
the gang (``*`` marks Hadar's mixed-type gangs — the capability the
baselines lack).  Also demonstrates decision recording and replay.

Run:  python examples/schedule_timeline.py
"""

from repro import (
    HadarScheduler,
    PhillyTraceConfig,
    TiresiasScheduler,
    generate_philly_trace,
    simulate,
    simulated_cluster,
)
from repro.metrics import render_gantt
from repro.sim import RecordingScheduler, ReplayScheduler


def main() -> None:
    cluster = simulated_cluster()
    trace = generate_philly_trace(
        PhillyTraceConfig(num_jobs=14, arrival_pattern="static", seed=9)
    )

    for scheduler in (HadarScheduler(), TiresiasScheduler()):
        result = simulate(cluster, trace, scheduler)
        print(f"\n=== {scheduler.name} ===")
        print(render_gantt(result, width=72, max_jobs=14))

    # Record / replay: capture Hadar's decisions and re-execute verbatim.
    recorder = RecordingScheduler(HadarScheduler())
    original = simulate(cluster, trace, recorder)
    replayed = simulate(cluster, trace, ReplayScheduler(recorder.decisions))
    identical = original.jcts() == replayed.jcts()
    print(f"\nRecorded {len(recorder.decisions)} decisions; "
          f"replay decision-identical: {identical}")


if __name__ == "__main__":
    main()
