"""Reject-and-repair guard between schedulers and the cluster state.

Every decision a scheduler returns passes through a
:class:`DecisionValidator` before the engine applies it.  In ``strict``
mode (the default, and the engine's historical behaviour) any malformed
entry raises :class:`~repro.sim.interface.SchedulerProtocolError` — a
buggy scheduler fails loudly.  In ``repair`` mode (selected automatically
when fault injection is attached) the offending entry is *dropped*
instead: the job is re-queued rather than corrupting cluster state, and a
typed :class:`DecisionRejected` outcome records what happened — so
Gavel/Tiresias survive failure rounds even if their plans momentarily
reference capacity a fault just removed.

The checks, in order per entry: known job id, not completed, arrived,
gang size 0 or exactly ``W_j`` (constraint 1e), then a joint fit of every
gang against a probe of *surviving* capacity (constraint 1d).  Capacity
misfits are classified against the nominal inventory: ``nonexistent_gpu``
(slot was never in the cluster), ``failed_gpu`` (slot capacity currently
reduced by a fault), ``occupied_gpu`` (free devices exhausted by earlier
entries of the same decision), or ``overcommit`` (more devices than the
slot ever had).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.cluster.allocation import Allocation
from repro.sim.interface import SchedulerProtocolError, validate_gang
from repro.sim.progress import JobRuntime, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.state import ClusterState

__all__ = ["DecisionRejected", "DecisionValidator", "REJECT_REASONS"]

REJECT_REASONS = (
    "unknown_job",      # job id absent from this run
    "completed_job",    # non-empty allocation for a finished job
    "not_arrived",      # allocation before the job's arrival event
    "bad_gang",         # worker count neither 0 nor W_j
    "nonexistent_gpu",  # placement on a slot the cluster never had
    "failed_gpu",       # placement exceeds surviving (fault-reduced) capacity
    "occupied_gpu",     # free devices exhausted by earlier gangs this round
    "overcommit",       # placement exceeds even nominal capacity
)


@dataclass(frozen=True, slots=True)
class DecisionRejected:
    """One rejected decision entry (typed outcome, never an exception)."""

    job_id: int
    reason: str
    detail: str
    repaired: bool
    """True when the entry was dropped and the job safely re-queued —
    repair mode always repairs; the field exists so consumers can assert
    "zero unrepaired rejections" uniformly."""

    def as_record(self) -> dict:
        return {
            "job_id": self.job_id,
            "reason": self.reason,
            "detail": self.detail,
            "repaired": self.repaired,
        }


class DecisionValidator:
    """Validates one decision map per round; strict or repair mode."""

    def __init__(self, mode: str = "strict"):
        if mode not in ("strict", "repair"):
            raise ValueError(f"mode must be 'strict' or 'repair', got {mode!r}")
        self.mode = mode
        self.rejections: list[DecisionRejected] = []
        """Every rejection over the run (repair mode only)."""
        self.last_rejections: list[DecisionRejected] = []
        """Rejections of the most recent :meth:`check` call."""

    @property
    def unrepaired(self) -> list[DecisionRejected]:
        return [r for r in self.rejections if not r.repaired]

    def check(
        self,
        target: Mapping[int, Allocation],
        runtimes: Mapping[int, JobRuntime],
        probe: "ClusterState",
        nominal: Optional[Mapping[tuple[int, str], int]] = None,
    ) -> dict[int, Allocation]:
        """Validate ``target`` and return the (possibly repaired) decision.

        ``probe`` must be a fresh state at *surviving* capacity; it is
        consumed (gangs are allocated into it for the joint check).
        ``nominal`` maps slots to as-built capacity, used only to
        classify capacity misfits in repair mode.
        """
        self.last_rejections = []
        entries: dict[int, Allocation] = {}
        for job_id, alloc in target.items():
            rt = runtimes.get(job_id)
            if rt is None:
                self._reject(job_id, "unknown_job",
                             f"unknown job id {job_id} in decision")
                continue
            if rt.state is JobState.COMPLETE and alloc:
                self._reject(job_id, "completed_job",
                             f"scheduler allocated completed job {job_id}")
                continue
            if rt.state is JobState.PENDING and alloc:
                self._reject(
                    job_id, "not_arrived",
                    f"scheduler allocated job {job_id} before its arrival",
                )
                continue
            try:
                validate_gang(rt.job, alloc)
            except ValueError as exc:
                self._reject(job_id, "bad_gang", str(exc))
                continue
            entries[job_id] = alloc
        # Joint capacity check against surviving capacity, decision order.
        repaired: dict[int, Allocation] = {}
        for job_id, alloc in entries.items():
            if not alloc:
                repaired[job_id] = alloc
                continue
            if not probe.can_fit(alloc):
                self._reject(
                    job_id,
                    self._capacity_reason(alloc, probe, nominal),
                    f"decision overcommits capacity at job {job_id}: {alloc}",
                )
                continue
            probe.allocate(alloc)
            repaired[job_id] = alloc
        return repaired

    # ------------------------------------------------------------ internals --
    def _reject(self, job_id: int, reason: str, detail: str) -> None:
        if self.mode == "strict":
            raise SchedulerProtocolError(detail)
        rejection = DecisionRejected(
            job_id=job_id, reason=reason, detail=detail, repaired=True
        )
        self.last_rejections.append(rejection)
        self.rejections.append(rejection)

    @staticmethod
    def _capacity_reason(
        alloc: Allocation,
        probe: "ClusterState",
        nominal: Optional[Mapping[tuple[int, str], int]],
    ) -> str:
        for slot, count in sorted(alloc.placements.items()):
            node_id, type_name = slot
            cap = probe.capacity(node_id, type_name)
            if count > cap:
                if nominal is None:
                    return "failed_gpu"
                built = nominal.get(slot, 0)
                if built == 0:
                    return "nonexistent_gpu"
                if count > built:
                    return "overcommit"
                return "failed_gpu"
        for slot, count in sorted(alloc.placements.items()):
            if count > probe.free(*slot):
                return "occupied_gpu"
        return "overcommit"  # pragma: no cover - can_fit failed some other way
