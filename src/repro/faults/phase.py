"""The fault phase — applies failure/recovery events to the live run.

Dispatch target for :attr:`~repro.sim.events.EventKind.FAULT` events in
the engine loop.  On a failure it

1. works out how many devices each touched slot loses (all surviving
   devices for a node-level failure, ``count`` clamped to surviving
   capacity for a device failure);
2. preempts every running gang holding devices the failure needs freed —
   victims are selected in job-id order — and **rolls each back to its
   last checkpoint**: ``iterations_done`` returns to
   ``checkpoint_iterations`` (lost progress = work since the last save,
   the crash-restart semantics of :mod:`repro.sim.checkpoint`), the job
   re-queues, and its ``generation``/``alloc_epoch`` both bump so
   outstanding completion predictions and straggler events for the dead
   gang go stale in the kernel;
3. removes the failed devices from :class:`~repro.cluster.state.ClusterState`
   capacity, so Eq. 5 pricing and every scheduler's planning state see
   the reduced cluster; and
4. records exactly what was taken under the event's ``fault_id``, so the
   paired recovery restores precisely those devices (never exceeding
   nominal capacity even when failure windows overlap).

The phase also keeps the live ``failed`` mask handed to
:class:`~repro.sim.interface.SchedulerContext` and the counters the
engine publishes as ``repro_faults_total`` / ``repro_rollback_seconds_total``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.allocation import EMPTY_ALLOCATION
from repro.faults.model import FAIL, FaultModel, FaultSchedule
from repro.sim.progress import JobRuntime, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import InvariantSanitizer
    from repro.cluster.cluster import Cluster
    from repro.cluster.state import ClusterState
    from repro.sim.progress import ProgressLedger

__all__ = ["FaultPhase"]


class FaultPhase:
    """Applies a pre-generated :class:`FaultSchedule` to the running sim."""

    def __init__(
        self,
        model: FaultModel,
        cluster: "Cluster",
        *,
        max_time: Optional[float] = None,
        sanitizer: Optional["InvariantSanitizer"] = None,
        emit: Optional[Callable[[dict], None]] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.schedule: FaultSchedule = model.build_schedule(cluster, max_time)
        self.sanitizer = sanitizer
        self.emit = emit
        """Trace sink (``DecisionTracer.emit`` when tracing is live)."""
        self.failed: dict[tuple[int, str], int] = {}
        """Devices currently lost to faults, per slot — the mask behind
        :attr:`SchedulerContext.failed`."""
        self._taken: dict[int, dict[tuple[int, str], int]] = {}
        """fault_id → devices that failure actually removed per slot."""
        self.stats: dict[str, int] = {
            "node_faults": 0,
            "gpu_faults": 0,
            "permanent_faults": 0,
            "recoveries": 0,
            "gangs_preempted": 0,
            "rollbacks": 0,
        }
        self.rollback_seconds = 0.0
        self.rollback_iterations = 0.0

    @property
    def capacity_lost(self) -> int:
        """Devices currently failed across the cluster."""
        return sum(self.failed.values())

    # ------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """The live fault position: failed mask, open windows, counters.

        The :class:`FaultSchedule` itself is *not* captured — it is a pure
        function of ``(model, cluster, max_time)`` via per-node seeded
        streams, so a restored phase regenerates the identical schedule at
        construction (waived in the REP012 ``SnapshotSpec``), and the
        kernel snapshot already holds which fault events are still
        outstanding.
        """
        return {
            "failed": [
                [node_id, type_name, count]
                for (node_id, type_name), count in self.failed.items()
            ],
            "taken": [
                [
                    fault_id,
                    [[n, t, c] for (n, t), c in slots.items()],
                ]
                for fault_id, slots in self._taken.items()
            ],
            "stats": dict(self.stats),
            "rollback_seconds": self.rollback_seconds,
            "rollback_iterations": self.rollback_iterations,
        }

    def load_state_dict(self, state: dict) -> None:
        self.failed = {
            (int(n), str(t)): int(c) for n, t, c in state["failed"]
        }
        self._taken = {
            int(fault_id): {(int(n), str(t)): int(c) for n, t, c in slots}
            for fault_id, slots in state["taken"]
        }
        self.stats = {str(k): int(v) for k, v in state["stats"].items()}
        self.rollback_seconds = float(state["rollback_seconds"])
        self.rollback_iterations = float(state["rollback_iterations"])

    # ------------------------------------------------------------- dispatch --
    def apply(
        self,
        index: int,
        ledger: "ProgressLedger",
        state: "ClusterState",
        now: float,
    ) -> bool:
        """Apply schedule event ``index``; True if any gang was preempted."""
        event = self.schedule.events[index]
        if event.kind == FAIL:
            return self._apply_failure(event, ledger, state, now)
        self._apply_recovery(event, state, now)
        return False

    def _apply_failure(self, event, ledger, state, now) -> bool:
        # Surviving devices each slot loses (overlapping faults clamp here).
        want: dict[tuple[int, str], int] = {}
        if event.is_node_level:
            for slot in state.slots:
                if slot[0] == event.node_id:
                    cap = state.capacity(*slot)
                    if cap > 0:
                        want[slot] = cap
        else:
            slot = (event.node_id, event.gpu_type)
            cap = state.capacity(*slot)
            if cap > 0:
                want[slot] = min(event.count, cap)

        victims: list[JobRuntime] = []
        deficits = self._deficits(want, state)
        if deficits:
            for rt in sorted(
                ledger.runtimes.values(), key=lambda r: r.job_id
            ):
                if rt.state is not JobState.RUNNING or not rt.allocation:
                    continue
                if any(s in deficits for s in rt.allocation.placements):
                    self._rollback(rt, state, now, event.fault_id)
                    victims.append(rt)
                    deficits = self._deficits(want, state)
                    if not deficits:
                        break
        assert not self._deficits(want, state), "fault left devices busy"

        for slot, count in sorted(want.items()):
            state.fail(slot[0], slot[1], count)
            self.failed[slot] = self.failed.get(slot, 0) + count
        if not event.permanent:
            self._taken[event.fault_id] = want

        scope = "node" if event.is_node_level else "gpu"
        self.stats["node_faults" if event.is_node_level else "gpu_faults"] += 1
        if event.permanent:
            self.stats["permanent_faults"] += 1
        if self.emit is not None:
            self.emit({
                "kind": "gpu_failed",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "scope": scope,
                "permanent": event.permanent,
                "slots": [
                    [slot[0], slot[1], count]
                    for slot, count in sorted(want.items())
                ],
                "preempted": [rt.job_id for rt in victims],
            })
        return bool(victims)

    def _apply_recovery(self, event, state, now) -> None:
        taken = self._taken.pop(event.fault_id, {})
        for slot, count in sorted(taken.items()):
            state.restore(slot[0], slot[1], count)
            left = self.failed.get(slot, 0) - count
            if left > 0:
                self.failed[slot] = left
            else:
                self.failed.pop(slot, None)
        self.stats["recoveries"] += 1
        if self.emit is not None:
            self.emit({
                "kind": "gpu_recovered",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "slots": [
                    [slot[0], slot[1], count]
                    for slot, count in sorted(taken.items())
                ],
            })

    # ------------------------------------------------------------- rollback --
    def _rollback(
        self, rt: JobRuntime, state: "ClusterState", now: float, fault_id: int
    ) -> None:
        """Crash-restart ``rt``: re-queue and roll back to its checkpoint."""
        remaining_before = rt.remaining_iterations
        lost_iters = max(0.0, rt.iterations_done - rt.checkpoint_iterations)
        lost_seconds = lost_iters / rt.rate if rt.rate > 0 else 0.0
        state.release(rt.allocation)
        rt.allocation = EMPTY_ALLOCATION
        rt.state = JobState.QUEUED
        rt.iterations_done = rt.checkpoint_iterations
        rt.rate = 0.0
        rt.slowdown = 1.0  # the degraded workers died with the gang
        rt.preemptions += 1
        rt.failures += 1
        rt.rollbacks += 1
        rt.rollback_seconds += lost_seconds
        rt.rollback_iterations += lost_iters
        # Outstanding completion predictions and straggler events both
        # belong to the dead gang: bump both staleness counters.
        rt.generation += 1
        rt.alloc_epoch += 1
        rt.record_placement(now, EMPTY_ALLOCATION)
        self.stats["gangs_preempted"] += 1
        self.stats["rollbacks"] += 1
        self.rollback_seconds += lost_seconds
        self.rollback_iterations += lost_iters
        if self.sanitizer is not None:
            self.sanitizer.check_rollback(
                rt, remaining_before, now=now, fault_id=fault_id
            )
        if self.emit is not None:
            self.emit({
                "kind": "job_rollback",
                "t": now,
                "job_id": rt.job_id,
                "fault_id": fault_id,
                "lost_iterations": lost_iters,
                "lost_seconds": lost_seconds,
            })

    @staticmethod
    def _deficits(
        want: dict[tuple[int, str], int], state: "ClusterState"
    ) -> dict[tuple[int, str], int]:
        """Slots where fewer devices are free than the failure must take."""
        out = {}
        for slot, count in want.items():
            short = count - state.free(*slot)
            if short > 0:
                out[slot] = short
        return out
