"""The fault phase — applies failure/recovery events to the live run.

Dispatch target for :attr:`~repro.sim.events.EventKind.FAULT` events in
the engine loop.  On a failure it

1. works out how many devices each touched slot loses (all surviving
   devices for a node-level failure, ``count`` clamped to surviving
   capacity for a device failure);
2. preempts every running gang holding devices the failure needs freed —
   victims are selected in job-id order — and **rolls each back to its
   last checkpoint**: ``iterations_done`` returns to
   ``checkpoint_iterations`` (lost progress = work since the last save,
   the crash-restart semantics of :mod:`repro.sim.checkpoint`), the job
   re-queues, and its ``generation``/``alloc_epoch`` both bump so
   outstanding completion predictions and straggler events for the dead
   gang go stale in the kernel;
3. removes the failed devices from :class:`~repro.cluster.state.ClusterState`
   capacity, so Eq. 5 pricing and every scheduler's planning state see
   the reduced cluster; and
4. records exactly what was taken under the event's ``fault_id``, so the
   paired recovery restores precisely those devices (never exceeding
   nominal capacity even when failure windows overlap).

The failure-domain extension adds four more event families:

* **PARTITION / PARTITION_HEAL** — a failure domain drops off the
  network.  Gangs *spanning* the boundary stall (rate → 0, the
  synchronization barrier never completes) or preempt+rollback per
  ``partition_policy``; gangs fully inside the cut keep running.  The
  isolated nodes' free capacity disappears from planning through
  :attr:`unreachable_nodes` → ``SchedulerContext.unreachable`` (Eq. 5
  prices rise because ``fresh_state`` hides the capacity), while the
  live cluster state keeps its devices — nothing physically failed.
* **DEGRADE / DEGRADE_END** — a node throttles to ``rate_factor``
  without evicting; every running gang touching it slows to the min
  factor across its nodes (the straggler-barrier physics of
  :mod:`repro.sim.stragglers`, composed via
  :func:`repro.sim.stragglers.compose_rate`).  Post-recovery healing
  windows reuse exactly this path: a RECOVER carrying
  ``rate_factor < 1`` opens a degrade window closed by a pre-scheduled
  DEGRADE_END sharing its ``fault_id``.
* **STORAGE** — a checkpoint-storage tier loses its data: every
  unfinished job on the tier (``job_id % storage_tiers``) has its
  ``checkpoint_iterations`` invalidated to zero; running gangs
  crash-restart through the ordinary rollback path (to iteration 0),
  queued jobs lose their accrued progress on the spot.

Live reload (:meth:`reload`) splices a new :class:`FaultModel` into the
running timeline at ``now``: the new spec's schedule is drawn fresh,
rebased to non-colliding fault ids, and only its future events enter
the kernel (tagged with a schedule *epoch*).  Old-epoch events still in
the heap resolve deterministically at pop time: window-openers from a
superseded spec are dropped, window-closers apply iff their window is
still open — so a failure that already happened always recovers, and
the splice point fully determines the merged timeline.

The phase also keeps the live ``failed`` mask handed to
:class:`~repro.sim.interface.SchedulerContext` and the counters the
engine publishes as ``repro_faults_total`` / ``repro_rollback_seconds_total``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.allocation import EMPTY_ALLOCATION
from repro.faults.model import (
    DEGRADE,
    DEGRADE_END,
    FAIL,
    PARTITION,
    PARTITION_HEAL,
    RECOVER,
    STORAGE,
    FaultModel,
    FaultSchedule,
)
from repro.sim.progress import JobRuntime, JobState
from repro.sim.stragglers import compose_rate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import InvariantSanitizer
    from repro.cluster.cluster import Cluster
    from repro.cluster.state import ClusterState
    from repro.core.throughput import ThroughputMatrix
    from repro.sim.kernel import EventKernel
    from repro.sim.progress import ProgressLedger

__all__ = ["FaultPhase"]

#: Event kinds that open a fault window (dropped when their schedule
#: epoch has been superseded by a reload).
_OPENERS = (FAIL, PARTITION, DEGRADE, STORAGE)


class FaultPhase:
    """Applies a pre-generated :class:`FaultSchedule` to the running sim."""

    def __init__(
        self,
        model: FaultModel,
        cluster: "Cluster",
        *,
        max_time: Optional[float] = None,
        sanitizer: Optional["InvariantSanitizer"] = None,
        emit: Optional[Callable[[dict], None]] = None,
        matrix: Optional["ThroughputMatrix"] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.matrix = matrix
        """Throughput matrix for recomputing gang rates on degrade /
        partition-heal (the engine always wires it)."""
        self._max_time = max_time
        # Epoch 0 is the construction-time schedule; each live reload
        # appends a rebased schedule and becomes the current epoch.
        # (``schedule`` is a property over epoch 0 so tests that inject a
        # hand-built schedule stay supported.)
        self._schedules: list[FaultSchedule] = [
            model.build_schedule(cluster, max_time)
        ]
        self._fault_id_limit = 1 + max(
            (ev.fault_id for ev in self.schedule.events), default=-1
        )
        self._reloads: list[list] = []
        """``[time, spec]`` per live reload, in order — enough to replay
        the exact schedule stack on restore."""
        self.sanitizer = sanitizer
        self.emit = emit
        """Trace sink (``DecisionTracer.emit`` when tracing is live)."""
        self.failed: dict[tuple[int, str], int] = {}
        """Devices currently lost to faults, per slot — the mask behind
        :attr:`SchedulerContext.failed`."""
        self._taken: dict[int, dict[tuple[int, str], int]] = {}
        """fault_id → devices that failure actually removed per slot."""
        self._partitions: dict[int, tuple[int, ...]] = {}
        """fault_id → isolated node group of each active partition."""
        self._stalled: dict[int, set[int]] = {}
        """job_id → partition fault_ids currently stalling that gang."""
        self._degraded: dict[int, dict[int, float]] = {}
        """node_id → {fault_id: rate_factor} of active degrade windows
        (DEGRADE events and post-recovery healing windows alike)."""
        self.stats: dict[str, int] = {
            "node_faults": 0,
            "gpu_faults": 0,
            "permanent_faults": 0,
            "recoveries": 0,
            "gangs_preempted": 0,
            "rollbacks": 0,
            "partitions": 0,
            "partition_heals": 0,
            "gangs_stalled": 0,
            "degraded_windows": 0,
            "storage_losses": 0,
            "stale_fault_events": 0,
        }
        self.rollback_seconds = 0.0
        self.rollback_iterations = 0.0

    @property
    def schedule(self) -> FaultSchedule:
        """The epoch-0 (construction-time) fault schedule."""
        return self._schedules[0]

    @schedule.setter
    def schedule(self, value: FaultSchedule) -> None:
        self._schedules[0] = value
        self._fault_id_limit = max(
            self._fault_id_limit,
            1 + max((ev.fault_id for ev in value.events), default=-1),
        )

    @property
    def capacity_lost(self) -> int:
        """Devices currently failed across the cluster."""
        return sum(self.failed.values())

    @property
    def epoch(self) -> int:
        """The current schedule epoch (0 until the first live reload)."""
        return len(self._schedules) - 1

    @property
    def unreachable_nodes(self) -> frozenset[int]:
        """Nodes isolated by currently-active partitions — hidden from
        planning via :attr:`SchedulerContext.unreachable`."""
        if not self._partitions:
            return frozenset()
        out: set[int] = set()
        for nodes in self._partitions.values():
            out.update(nodes)
        return frozenset(out)

    @property
    def stalled_jobs(self) -> frozenset[int]:
        """Jobs currently stalled by a partition (rate pinned to 0)."""
        return frozenset(self._stalled)

    # ------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """The live fault position: failed mask, open windows, counters.

        The :class:`FaultSchedule` stack itself is *not* captured — epoch
        0 is a pure function of ``(model, cluster, max_time)`` via
        per-node seeded streams and each reload epoch replays from its
        recorded ``[time, spec]`` pair, so a restored phase regenerates
        the identical schedules at load (waived in the REP012
        ``SnapshotSpec``), and the kernel snapshot already holds which
        fault events are still outstanding.
        """
        return {
            "failed": [
                [node_id, type_name, count]
                for (node_id, type_name), count in self.failed.items()
            ],
            "taken": [
                [
                    fault_id,
                    [[n, t, c] for (n, t), c in slots.items()],
                ]
                for fault_id, slots in self._taken.items()
            ],
            "stats": dict(self.stats),
            "rollback_seconds": self.rollback_seconds,
            "rollback_iterations": self.rollback_iterations,
            "partitions": [
                [fault_id, list(nodes)]
                for fault_id, nodes in self._partitions.items()
            ],
            "stalled": [
                [job_id, sorted(fault_ids)]
                for job_id, fault_ids in self._stalled.items()
            ],
            "degraded": [
                [node_id, [[fid, factor] for fid, factor in entry.items()]]
                for node_id, entry in self._degraded.items()
            ],
            "reloads": [[t, spec] for t, spec in self._reloads],
        }

    def load_state_dict(self, state: dict) -> None:
        self.failed = {
            (int(n), str(t)): int(c) for n, t, c in state["failed"]
        }
        self._taken = {
            int(fault_id): {(int(n), str(t)): int(c) for n, t, c in slots}
            for fault_id, slots in state["taken"]
        }
        stats = {str(k): int(v) for k, v in state["stats"].items()}
        # Additive keys default to zero so pre-domain snapshots load.
        for key in self.stats:
            stats.setdefault(key, 0)
        self.stats = stats
        self.rollback_seconds = float(state["rollback_seconds"])
        self.rollback_iterations = float(state["rollback_iterations"])
        self._partitions = {
            int(fault_id): tuple(int(n) for n in nodes)
            for fault_id, nodes in state.get("partitions", [])
        }
        self._stalled = {
            int(job_id): {int(f) for f in fault_ids}
            for job_id, fault_ids in state.get("stalled", [])
        }
        self._degraded = {
            int(node_id): {int(f): float(x) for f, x in entry}
            for node_id, entry in state.get("degraded", [])
        }
        # Replay the reload stack: rebuild each spliced schedule exactly
        # (the kernel snapshot holds the already-pushed events).
        self._schedules = [self.schedule]
        self._fault_id_limit = 1 + max(
            (ev.fault_id for ev in self.schedule.events), default=-1
        )
        self._reloads = []
        for t, spec in state.get("reloads", []):
            self._splice(str(spec))
            self._reloads.append([float(t), str(spec)])

    # ------------------------------------------------------- live reload --
    def _splice(self, spec: str) -> FaultSchedule:
        """Build, rebase, and stack the schedule for ``spec``; the new
        epoch's fault ids continue past every earlier epoch's."""
        model = FaultModel.from_spec(spec)
        schedule = model.build_schedule(self.cluster, self._max_time)
        base = self._fault_id_limit
        events = tuple(
            replace(ev, fault_id=ev.fault_id + base)
            for ev in schedule.events
        )
        self._schedules.append(FaultSchedule(events=events))
        self._fault_id_limit = base + 1 + max(
            (ev.fault_id for ev in schedule.events), default=-1
        )
        self.model = model
        return self._schedules[-1]

    def reload(self, spec: str, kernel: "EventKernel", now: float) -> dict:
        """Splice fault spec ``spec`` into the running timeline at ``now``.

        Only the new schedule's strictly-future events enter the kernel,
        tagged ``[epoch, index]``; the superseded epochs' future openers
        are dropped at pop time while their still-open windows close
        normally.  Returns the splice summary for the trace record.
        """
        schedule = self._splice(spec)
        epoch = self.epoch
        pushed = 0
        for index, ev in enumerate(schedule.events):
            if ev.time > now:
                kernel.push_fault(ev.time, [epoch, index])
                pushed += 1
        self._reloads.append([now, spec])
        return {"epoch": epoch, "events": pushed, "spec": spec}

    # ------------------------------------------------------------- dispatch --
    def apply(
        self,
        payload,
        ledger: "ProgressLedger",
        state: "ClusterState",
        now: float,
    ) -> bool:
        """Apply the fault event behind ``payload``; True if capacity or
        any gang's allocation changed (a plain ``int`` payload indexes
        epoch 0, ``[epoch, index]`` a reloaded schedule)."""
        if isinstance(payload, int):
            epoch, index = 0, payload
        else:
            epoch, index = int(payload[0]), int(payload[1])
        event = self._schedules[epoch].events[index]
        kind = event.kind
        # Reload splice semantics: openers from a superseded spec are
        # dropped; closers apply only while their window is still open
        # (a closer whose opener was spliced away closes nothing).
        if kind in _OPENERS:
            if epoch != self.epoch:
                self.stats["stale_fault_events"] += 1
                return False
        elif not self._window_open(event):
            self.stats["stale_fault_events"] += 1
            return False
        if kind == FAIL:
            return self._apply_failure(event, ledger, state, now)
        if kind == RECOVER:
            self._apply_recovery(event, ledger, state, now)
            return False
        if kind == PARTITION:
            return self._apply_partition(event, ledger, state, now)
        if kind == PARTITION_HEAL:
            self._apply_partition_heal(event, ledger, now)
            return False
        if kind == DEGRADE:
            self._apply_degrade(event, ledger, now)
            return False
        if kind == DEGRADE_END:
            self._apply_degrade_end(event, ledger, now)
            return False
        if kind == STORAGE:
            return self._apply_storage(event, ledger, state, now)
        raise ValueError(f"unknown fault event kind {kind!r}")

    def _window_open(self, event) -> bool:
        """Whether a window-closing event still has a window to close."""
        if event.kind == RECOVER:
            return event.fault_id in self._taken
        if event.kind == PARTITION_HEAL:
            return event.fault_id in self._partitions
        if event.kind == DEGRADE_END:
            return event.fault_id in self._degraded.get(event.node_id, {})
        return True

    def _apply_failure(self, event, ledger, state, now) -> bool:
        # Surviving devices each slot loses (overlapping faults clamp here).
        want: dict[tuple[int, str], int] = {}
        if event.is_node_level:
            for slot in state.slots:
                if slot[0] == event.node_id:
                    cap = state.capacity(*slot)
                    if cap > 0:
                        want[slot] = cap
        else:
            slot = (event.node_id, event.gpu_type)
            cap = state.capacity(*slot)
            if cap > 0:
                want[slot] = min(event.count, cap)

        victims: list[JobRuntime] = []
        deficits = self._deficits(want, state)
        if deficits:
            for rt in sorted(
                ledger.runtimes.values(), key=lambda r: r.job_id
            ):
                if rt.state is not JobState.RUNNING or not rt.allocation:
                    continue
                if any(s in deficits for s in rt.allocation.placements):
                    self._rollback(rt, state, now, event.fault_id)
                    victims.append(rt)
                    deficits = self._deficits(want, state)
                    if not deficits:
                        break
        assert not self._deficits(want, state), "fault left devices busy"

        for slot, count in sorted(want.items()):
            state.fail(slot[0], slot[1], count)
            self.failed[slot] = self.failed.get(slot, 0) + count
        if not event.permanent:
            self._taken[event.fault_id] = want

        scope = "node" if event.is_node_level else "gpu"
        self.stats["node_faults" if event.is_node_level else "gpu_faults"] += 1
        if event.permanent:
            self.stats["permanent_faults"] += 1
        if self.emit is not None:
            self.emit({
                "kind": "gpu_failed",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "scope": scope,
                "permanent": event.permanent,
                "slots": [
                    [slot[0], slot[1], count]
                    for slot, count in sorted(want.items())
                ],
                "preempted": [rt.job_id for rt in victims],
            })
        return bool(victims)

    def _apply_recovery(self, event, ledger, state, now) -> None:
        taken = self._taken.pop(event.fault_id, {})
        for slot, count in sorted(taken.items()):
            state.restore(slot[0], slot[1], count)
            left = self.failed.get(slot, 0) - count
            if left > 0:
                self.failed[slot] = left
            else:
                self.failed.pop(slot, None)
        self.stats["recoveries"] += 1
        if self.emit is not None:
            self.emit({
                "kind": "gpu_recovered",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "slots": [
                    [slot[0], slot[1], count]
                    for slot, count in sorted(taken.items())
                ],
            })
        if event.rate_factor < 1.0 and event.heal_s > 0:
            # Healing window: the repaired host is back but throttled —
            # the same degrade machinery, closed by the pre-scheduled
            # DEGRADE_END sharing this fault_id.
            entry = self._degraded.setdefault(event.node_id, {})
            entry[event.fault_id] = event.rate_factor
            self.stats["degraded_windows"] += 1
            jobs = self._retune_node(event.node_id, ledger, now)
            if self.emit is not None:
                self.emit({
                    "kind": "node_degraded",
                    "t": now,
                    "fault_id": event.fault_id,
                    "node": event.node_id,
                    "factor": event.rate_factor,
                    "healing": True,
                    "jobs": jobs,
                })

    # ----------------------------------------------------------- partitions --
    def _apply_partition(self, event, ledger, state, now) -> bool:
        self._partitions[event.fault_id] = event.nodes
        self.stats["partitions"] += 1
        cut = set(event.nodes)
        stalled: list[int] = []
        victims: list[int] = []
        for rt in sorted(ledger.runtimes.values(), key=lambda r: r.job_id):
            if rt.state is not JobState.RUNNING or not rt.allocation:
                continue
            placed = {node_id for node_id, _ in rt.allocation.placements}
            if placed & cut and placed - cut:
                # Only gangs *spanning* the boundary lose their barrier;
                # gangs fully inside the cut keep training locally.
                if self.model.partition_policy == "preempt":
                    self._rollback(rt, state, now, event.fault_id)
                    victims.append(rt.job_id)
                else:
                    self._stall(rt, event.fault_id, ledger)
                    stalled.append(rt.job_id)
        if self.emit is not None:
            self.emit({
                "kind": "network_partition",
                "t": now,
                "fault_id": event.fault_id,
                "domain": event.domain,
                "nodes": list(event.nodes),
                "policy": self.model.partition_policy,
                "stalled": stalled,
                "preempted": victims,
            })
        return bool(victims)

    def _stall(self, rt: JobRuntime, fault_id: int, ledger) -> None:
        """Pin a spanning gang's rate to zero until the partition heals
        (the allocation is kept — nothing physically failed)."""
        newly = not self._stalled.get(rt.job_id)
        if rt.job_id not in self._stalled:
            self._stalled[rt.job_id] = set()
        self._stalled[rt.job_id].add(fault_id)
        rt.rate = 0.0
        # The outstanding completion prediction assumed the old rate.
        rt.generation += 1
        ledger.mark_dirty(rt)
        if newly:
            self.stats["gangs_stalled"] += 1

    def _apply_partition_heal(self, event, ledger, now) -> None:
        nodes = self._partitions.pop(event.fault_id)
        self.stats["partition_heals"] += 1
        resumed: list[int] = []
        for job_id in sorted(self._stalled):
            if event.fault_id not in self._stalled[job_id]:
                continue
            self._stalled[job_id].discard(event.fault_id)
            if self._stalled[job_id]:
                continue  # still cut by another partition
            del self._stalled[job_id]
            rt = ledger.runtimes.get(job_id)
            if rt is not None:
                self._retune_job(rt, ledger, now)
                resumed.append(job_id)
        if self.emit is not None:
            self.emit({
                "kind": "partition_healed",
                "t": now,
                "fault_id": event.fault_id,
                "domain": event.domain,
                "nodes": list(nodes),
                "resumed": resumed,
            })

    # ----------------------------------------------------------- degrading --
    def _apply_degrade(self, event, ledger, now) -> None:
        entry = self._degraded.setdefault(event.node_id, {})
        entry[event.fault_id] = event.rate_factor
        self.stats["degraded_windows"] += 1
        jobs = self._retune_node(event.node_id, ledger, now)
        if self.emit is not None:
            self.emit({
                "kind": "node_degraded",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "factor": event.rate_factor,
                "jobs": jobs,
            })

    def _apply_degrade_end(self, event, ledger, now) -> None:
        self._degraded[event.node_id].pop(event.fault_id, None)
        if not self._degraded[event.node_id]:
            del self._degraded[event.node_id]
        jobs = self._retune_node(event.node_id, ledger, now)
        if self.emit is not None:
            self.emit({
                "kind": "node_degraded",
                "t": now,
                "fault_id": event.fault_id,
                "node": event.node_id,
                "factor": 1.0,
                "ended": True,
                "jobs": jobs,
            })

    def node_factor(self, node_id: int) -> float:
        """The effective rate factor of ``node_id`` — the min across its
        active degrade windows (1.0 when healthy)."""
        entry = self._degraded.get(node_id)
        if not entry:
            return 1.0
        return min(entry.values())

    def gang_factor(self, rt: JobRuntime) -> float:
        """A gang runs at its slowest worker: min node factor across its
        placement nodes (the synchronization-barrier physics)."""
        factor = 1.0
        for node_id, _ in rt.allocation.placements:
            entry = self._degraded.get(node_id)
            if entry:
                factor = min(factor, min(entry.values()))
        return factor

    def _retune_job(self, rt: JobRuntime, ledger, now: float) -> None:
        """Recompute a running gang's rate from the current topology:
        realized rate × straggler slowdown × degrade factor, or zero
        while a partition stalls it."""
        if rt.state is not JobState.RUNNING or not rt.allocation:
            return
        from repro.sim.interface import realized_rate

        base = realized_rate(rt.job, rt.allocation, self.matrix, self.cluster)
        if rt.job_id in self._stalled:
            rt.rate = 0.0
        else:
            rt.rate = compose_rate(
                base, rt.slowdown, self.gang_factor(rt)
            )
            if self.sanitizer is not None:
                self.sanitizer.check_degraded_rate(
                    rt, compose_rate(base, rt.slowdown), now=now
                )
        rt.generation += 1
        ledger.mark_dirty(rt)

    def _retune_node(self, node_id: int, ledger, now: float) -> list[int]:
        """Retune every running gang with a worker on ``node_id``."""
        jobs: list[int] = []
        for rt in sorted(ledger.runtimes.values(), key=lambda r: r.job_id):
            if rt.state is not JobState.RUNNING or not rt.allocation:
                continue
            if any(n == node_id for n, _ in rt.allocation.placements):
                self._retune_job(rt, ledger, now)
                jobs.append(rt.job_id)
        return jobs

    def note_placement(self, rt: JobRuntime) -> None:
        """Post-placement hook from ``SchedulerPhase.apply``: fresh
        workers clear any stall (the gang moved), then the new placement
        picks up the live topology — degraded nodes throttle it, and a
        placement spanning an active partition stalls immediately (only
        reachable via the kept-capacity edge case documented on
        ``SchedulerContext.fresh_state``)."""
        self._stalled.pop(rt.job_id, None)
        if not rt.allocation:
            return
        placed = {node_id for node_id, _ in rt.allocation.placements}
        for fault_id, members in sorted(self._partitions.items()):
            cut = set(members)
            if placed & cut and placed - cut:
                self._stalled.setdefault(rt.job_id, set()).add(fault_id)
        if rt.job_id in self._stalled:
            rt.rate = 0.0
            self.stats["gangs_stalled"] += 1
            return
        factor = self.gang_factor(rt)
        if factor < 1.0:
            rt.rate = compose_rate(rt.rate, factor)

    # ------------------------------------------------------------- storage --
    def _apply_storage(self, event, ledger, state, now) -> bool:
        tiers = max(1, self.model.storage_tiers)
        victims: list[int] = []
        queued_hit: list[int] = []
        lost_total = 0.0
        for rt in sorted(ledger.runtimes.values(), key=lambda r: r.job_id):
            if rt.job_id % tiers != event.tier:
                continue
            if rt.state is JobState.COMPLETE:
                continue
            if rt.iterations_done <= 0 and rt.checkpoint_iterations <= 0:
                continue  # nothing saved, nothing lost
            if rt.state is JobState.RUNNING and rt.allocation:
                lost_total += rt.iterations_done
                rt.checkpoint_iterations = 0.0
                self._rollback(rt, state, now, event.fault_id)
                victims.append(rt.job_id)
            else:
                # Queued with progress: the checkpoint it would resume
                # from is gone — it restarts from iteration zero.
                remaining_before = rt.remaining_iterations
                lost = rt.iterations_done
                lost_total += lost
                rt.checkpoint_iterations = 0.0
                rt.iterations_done = 0.0
                rt.rollbacks += 1
                rt.rollback_iterations += lost
                self.stats["rollbacks"] += 1
                self.rollback_iterations += lost
                if self.sanitizer is not None:
                    self.sanitizer.check_rollback(
                        rt, remaining_before, now=now,
                        fault_id=event.fault_id,
                    )
                if self.emit is not None:
                    self.emit({
                        "kind": "job_rollback",
                        "t": now,
                        "job_id": rt.job_id,
                        "fault_id": event.fault_id,
                        "lost_iterations": lost,
                        "lost_seconds": 0.0,
                    })
                queued_hit.append(rt.job_id)
        self.stats["storage_losses"] += 1
        if self.emit is not None:
            self.emit({
                "kind": "storage_lost",
                "t": now,
                "fault_id": event.fault_id,
                "tier": event.tier,
                "jobs": victims + queued_hit,
                "lost_iterations": lost_total,
            })
        return bool(victims)

    # ------------------------------------------------------------- rollback --
    def _rollback(
        self, rt: JobRuntime, state: "ClusterState", now: float, fault_id: int
    ) -> None:
        """Crash-restart ``rt``: re-queue and roll back to its checkpoint."""
        remaining_before = rt.remaining_iterations
        lost_iters = max(0.0, rt.iterations_done - rt.checkpoint_iterations)
        lost_seconds = lost_iters / rt.rate if rt.rate > 0 else 0.0
        state.release(rt.allocation)
        rt.allocation = EMPTY_ALLOCATION
        rt.state = JobState.QUEUED
        rt.iterations_done = rt.checkpoint_iterations
        rt.rate = 0.0
        rt.slowdown = 1.0  # the degraded workers died with the gang
        rt.preemptions += 1
        rt.failures += 1
        rt.rollbacks += 1
        rt.rollback_seconds += lost_seconds
        rt.rollback_iterations += lost_iters
        # Outstanding completion predictions and straggler events both
        # belong to the dead gang: bump both staleness counters.
        rt.generation += 1
        rt.alloc_epoch += 1
        rt.record_placement(now, EMPTY_ALLOCATION)
        self._stalled.pop(rt.job_id, None)  # the stalled gang is gone
        self.stats["gangs_preempted"] += 1
        self.stats["rollbacks"] += 1
        self.rollback_seconds += lost_seconds
        self.rollback_iterations += lost_iters
        if self.sanitizer is not None:
            self.sanitizer.check_rollback(
                rt, remaining_before, now=now, fault_id=fault_id
            )
        if self.emit is not None:
            self.emit({
                "kind": "job_rollback",
                "t": now,
                "job_id": rt.job_id,
                "fault_id": fault_id,
                "lost_iterations": lost_iters,
                "lost_seconds": lost_seconds,
            })

    @staticmethod
    def _deficits(
        want: dict[tuple[int, str], int], state: "ClusterState"
    ) -> dict[tuple[int, str], int]:
        """Slots where fewer devices are free than the failure must take."""
        out = {}
        for slot, count in want.items():
            short = count - state.free(*slot)
            if short > 0:
                out[slot] = short
        return out
