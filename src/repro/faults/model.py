"""Seeded GPU/node failure and recovery processes.

The model is *pre-generated*: :meth:`FaultModel.build_schedule` draws the
entire failure/recovery timeline up front from per-node seeded RNG
streams, so the fault sequence is a pure function of ``(model, cluster
inventory)`` — independent of anything the scheduler decides and
therefore identical across schedulers and across repeated runs with the
same seed (the property the resilience experiment and the chaos CI gate
rely on).

Two Poisson processes run per node:

* a **node-level** process (``node_mtbf_h``) whose failures take every
  surviving device attached to the node (correlated failure — a host,
  PSU, or ToR loss);
* a **device-level** process (``gpu_mtbf_h`` per device, so a node's
  hazard rate scales with its device count) whose failures take one GPU,
  chosen capacity-weighted among the node's types.

Failures repair after an exponential MTTR (``mttr_s``) unless drawn
permanent (``permanent_fraction``), in which case the capacity never
returns.  Each failure and its recovery share a ``fault_id`` so the
:class:`~repro.faults.phase.FaultPhase` can restore exactly the devices
that failure actually removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

__all__ = ["FaultEvent", "FaultModel", "FaultSchedule", "FAIL", "RECOVER"]

FAIL = "fail"
RECOVER = "recover"

_HOUR_S = 3600.0


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One failure or recovery occurrence in a :class:`FaultSchedule`.

    ``gpu_type is None`` marks a node-level (correlated) failure taking
    every surviving device on the node; otherwise exactly ``count``
    devices of that type fail (clamped to surviving capacity at apply
    time).  A recovery references its failure through ``fault_id``.
    """

    time: float
    node_id: int
    gpu_type: Optional[str]
    kind: str  # FAIL | RECOVER
    fault_id: int
    permanent: bool = False
    count: int = 1

    @property
    def is_node_level(self) -> bool:
        return self.gpu_type is None


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """The full pre-generated fault timeline, sorted deterministically."""

    events: tuple[FaultEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def failures(self) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == FAIL)

    @property
    def recoveries(self) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == RECOVER)


@dataclass(frozen=True, slots=True)
class FaultModel:
    """Failure-injection parameters (all zeros ⇒ no faults, empty schedule)."""

    node_mtbf_h: float = 0.0
    """Mean time between *node-level* failures per node, hours (0 = off)."""
    gpu_mtbf_h: float = 0.0
    """Mean time between failures per *device*, hours (0 = off); a node
    with ``n`` devices fails single GPUs at ``n / gpu_mtbf_h`` per hour."""
    mttr_s: float = 600.0
    """Mean time to repair (exponential), seconds."""
    permanent_fraction: float = 0.0
    """Probability a failure is permanent (capacity never returns)."""
    seed: int = 0
    """Root seed; each node derives an independent substream from it."""
    horizon_s: float = 30 * 24 * 3600.0
    """Generation horizon; failures past it are not drawn."""

    def __post_init__(self) -> None:
        if self.node_mtbf_h < 0 or self.gpu_mtbf_h < 0:
            raise ValueError("MTBF values must be non-negative (0 disables)")
        if self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in [0, 1]")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")

    @property
    def enabled(self) -> bool:
        """Whether any failure process is active."""
        return self.node_mtbf_h > 0 or self.gpu_mtbf_h > 0

    # ------------------------------------------------------------- parsing --
    @classmethod
    def from_spec(cls, spec: str) -> "FaultModel":
        """Parse the CLI's ``key=value,key=value`` fault spec.

        Keys: ``node_mtbf_h``, ``gpu_mtbf_h``, ``mttr_s`` (or ``mttr_min``),
        ``permanent``, ``seed``, ``horizon_h`` (or ``horizon_s``).  Example::

            --faults "node_mtbf_h=24,mttr_min=10,seed=7"
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key in ("node_mtbf_h", "gpu_mtbf_h", "mttr_s", "permanent",
                       "horizon_s", "horizon_h", "mttr_min"):
                num = float(value)
                if key == "mttr_min":
                    kwargs["mttr_s"] = num * 60.0
                elif key == "horizon_h":
                    kwargs["horizon_s"] = num * _HOUR_S
                elif key == "permanent":
                    kwargs["permanent_fraction"] = num
                else:
                    kwargs[key] = num
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; expected one of "
                    "node_mtbf_h, gpu_mtbf_h, mttr_s, mttr_min, permanent, "
                    "seed, horizon_h, horizon_s"
                )
        return cls(**kwargs)

    # ---------------------------------------------------------- generation --
    def build_schedule(
        self, cluster: "Cluster", max_time: Optional[float] = None
    ) -> FaultSchedule:
        """Draw the full fault timeline for ``cluster``.

        Deterministic and decision-order-independent: node ``i``'s events
        come from ``default_rng([seed, i, stream])``, so they do not
        depend on other nodes, on the scheduler, or on call order.
        """
        horizon = self.horizon_s
        if max_time is not None:
            horizon = min(horizon, max_time)
        raw: list[FaultEvent] = []
        if self.enabled:
            fault_id = 0
            for node in sorted(cluster.nodes, key=lambda n: n.node_id):
                slots = sorted(node.gpus.items())
                num_devices = sum(count for _, count in slots)
                if num_devices == 0:
                    continue
                if self.node_mtbf_h > 0:
                    rng = np.random.default_rng([self.seed, node.node_id, 0])
                    fault_id = self._draw_process(
                        raw, rng, horizon,
                        mtbf_s=self.node_mtbf_h * _HOUR_S,
                        node_id=node.node_id,
                        slots=None,
                        fault_id=fault_id,
                    )
                if self.gpu_mtbf_h > 0:
                    rng = np.random.default_rng([self.seed, node.node_id, 1])
                    fault_id = self._draw_process(
                        raw, rng, horizon,
                        mtbf_s=self.gpu_mtbf_h * _HOUR_S / num_devices,
                        node_id=node.node_id,
                        slots=slots,
                        fault_id=fault_id,
                    )
        raw.sort(key=lambda ev: (
            ev.time, 0 if ev.kind == FAIL else 1, ev.node_id, ev.fault_id
        ))
        return FaultSchedule(events=tuple(raw))

    def _draw_process(
        self,
        out: list[FaultEvent],
        rng: np.random.Generator,
        horizon: float,
        *,
        mtbf_s: float,
        node_id: int,
        slots: Optional[list[tuple[str, int]]],
        fault_id: int,
    ) -> int:
        """One renewal process: fail → (maybe) recover → next failure."""
        t = 0.0
        while True:
            t += float(rng.exponential(mtbf_s))
            if t >= horizon:
                return fault_id
            if slots is None:
                gpu_type = None  # node-level: takes everything attached
            else:
                weights = np.array([c for _, c in slots], dtype=float)
                pick = int(rng.choice(len(slots), p=weights / weights.sum()))
                gpu_type = slots[pick][0]
            permanent = bool(
                self.permanent_fraction > 0
                and rng.random() < self.permanent_fraction
            )
            out.append(FaultEvent(
                time=t, node_id=node_id, gpu_type=gpu_type, kind=FAIL,
                fault_id=fault_id, permanent=permanent,
            ))
            if permanent:
                # The process keeps its own clock but this capacity is
                # gone; for node-level processes nothing is left to fail.
                fault_id += 1
                if slots is None:
                    return fault_id
                continue
            repair = t + max(float(rng.exponential(self.mttr_s)), 1e-9)
            if repair < horizon:
                out.append(FaultEvent(
                    time=repair, node_id=node_id, gpu_type=gpu_type,
                    kind=RECOVER, fault_id=fault_id,
                ))
                t = repair
                fault_id += 1
            else:
                return fault_id + 1
