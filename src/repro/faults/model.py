"""Seeded GPU/node failure, partition, degrade, and storage processes.

The model is *pre-generated*: :meth:`FaultModel.build_schedule` draws the
entire failure/recovery timeline up front from per-node seeded RNG
streams, so the fault sequence is a pure function of ``(model, cluster
inventory)`` — independent of anything the scheduler decides and
therefore identical across schedulers and across repeated runs with the
same seed (the property the resilience experiment and the chaos CI gate
rely on).

Independent processes, each on its own RNG substream:

* a **node-level** process (``node_mtbf_h``, stream ``[seed, node, 0]``)
  whose failures take every surviving device attached to the node
  (correlated failure — a host, PSU, or ToR loss);
* a **device-level** process (``gpu_mtbf_h`` per device, stream
  ``[seed, node, 1]``, so a node's hazard rate scales with its device
  count) whose failures take one GPU, chosen capacity-weighted among the
  node's types;
* a **degraded-mode** process (``degraded_mtbf_h``, stream
  ``[seed, node, 2]``) that throttles a node's rate without evicting —
  the :data:`DEGRADE` kind, ended by a paired :data:`DEGRADE_END`;
* a **failure-domain partition** process (``partition_mtbf_h`` per
  domain, stream ``[seed, domain, 3]``) emitting :data:`PARTITION`
  events that isolate one seeded rack/switch group
  (:meth:`FaultModel.domains`) from the rest of the cluster, healed by a
  paired :data:`PARTITION_HEAL`;
* a **checkpoint-storage** process (``storage_mtbf_h`` per tier, stream
  ``[seed, tier, 4]``) emitting :data:`STORAGE` events that destroy a
  storage tier's saved checkpoints (no recovery pair — the data is gone).

Node failures repair after an exponential MTTR (``mttr_s``) unless drawn
permanent (``permanent_fraction``), in which case the capacity never
returns.  With ``healing_window_s > 0`` a node-level recovery is not
binary-healthy: the repaired node runs at a seeded reduced rate
(``rate_factor`` on the RECOVER event) for a healing window closed by a
pre-scheduled :data:`DEGRADE_END`.  Each failure and its recovery share
a ``fault_id`` so the :class:`~repro.faults.phase.FaultPhase` can
restore exactly the devices that failure actually removed.

Every new process draws from a stream disjoint from the original two,
and all new draws are gated on their knobs — with every new kind
disabled the schedule is byte-identical to the pre-domain model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

__all__ = [
    "FaultEvent",
    "FaultModel",
    "FaultSchedule",
    "FAIL",
    "RECOVER",
    "PARTITION",
    "PARTITION_HEAL",
    "DEGRADE",
    "DEGRADE_END",
    "STORAGE",
]

FAIL = "fail"
RECOVER = "recover"
PARTITION = "partition"
PARTITION_HEAL = "partition_heal"
DEGRADE = "degrade"
DEGRADE_END = "degrade_end"
STORAGE = "storage"

#: Deterministic same-timestamp ordering: failures before recoveries
#: (the original rule), then topology events, then throttles, then
#: storage losses.
_KIND_PRIORITY = {
    FAIL: 0,
    RECOVER: 1,
    PARTITION: 2,
    PARTITION_HEAL: 3,
    DEGRADE: 4,
    DEGRADE_END: 5,
    STORAGE: 6,
}

_HOUR_S = 3600.0


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One occurrence in a :class:`FaultSchedule`.

    For FAIL/RECOVER, ``gpu_type is None`` marks a node-level
    (correlated) failure taking every surviving device on the node;
    otherwise exactly ``count`` devices of that type fail (clamped to
    surviving capacity at apply time).  A recovery references its
    failure through ``fault_id``; a RECOVER with ``rate_factor < 1``
    opens a healing window (the node runs throttled for ``heal_s``,
    closed by a DEGRADE_END sharing the ``fault_id``).

    PARTITION/PARTITION_HEAL isolate/reconnect failure domain
    ``domain`` (node ids in ``nodes``); DEGRADE/DEGRADE_END throttle a
    node by ``rate_factor``; STORAGE destroys checkpoint tier ``tier``.
    """

    time: float
    node_id: int
    gpu_type: Optional[str]
    kind: str  # FAIL | RECOVER | PARTITION | PARTITION_HEAL | DEGRADE | ...
    fault_id: int
    permanent: bool = False
    count: int = 1
    domain: int = -1
    nodes: tuple[int, ...] = ()
    rate_factor: float = 1.0
    heal_s: float = 0.0
    tier: int = -1

    @property
    def is_node_level(self) -> bool:
        return self.gpu_type is None


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """The full pre-generated fault timeline, sorted deterministically."""

    events: tuple[FaultEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def failures(self) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == FAIL)

    @property
    def recoveries(self) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == RECOVER)


@dataclass(frozen=True, slots=True)
class FaultModel:
    """Failure-injection parameters (all zeros ⇒ no faults, empty schedule)."""

    node_mtbf_h: float = 0.0
    """Mean time between *node-level* failures per node, hours (0 = off)."""
    gpu_mtbf_h: float = 0.0
    """Mean time between failures per *device*, hours (0 = off); a node
    with ``n`` devices fails single GPUs at ``n / gpu_mtbf_h`` per hour."""
    mttr_s: float = 600.0
    """Mean time to repair (exponential), seconds."""
    permanent_fraction: float = 0.0
    """Probability a failure is permanent (capacity never returns)."""
    seed: int = 0
    """Root seed; each node derives an independent substream from it."""
    horizon_s: float = 30 * 24 * 3600.0
    """Generation horizon; failures past it are not drawn."""
    partition_mtbf_h: float = 0.0
    """Mean time between network partitions *per failure domain*, hours
    (0 = off; requires ``failure_domains >= 2`` when on)."""
    partition_duration_s: float = 900.0
    """Mean partition duration (exponential), seconds."""
    failure_domains: int = 0
    """Rack/switch groups the nodes split into (seeded round-robin over
    a permutation, see :meth:`domains`); 0 = no domain topology."""
    partition_policy: str = "stall"
    """What happens to gangs spanning a partition boundary: ``stall``
    (rate → 0 until the heal) or ``preempt`` (crash-restart rollback)."""
    degraded_mtbf_h: float = 0.0
    """Mean time between degraded-mode onsets per node, hours (0 = off)."""
    degraded_factor: float = 0.5
    """Degraded-node rate-factor floor; each onset draws its factor
    uniform(``degraded_factor``, 1)."""
    degraded_duration_s: float = 1800.0
    """Mean degraded-window duration (exponential), seconds."""
    healing_window_s: float = 0.0
    """Mean post-recovery healing window (exponential), seconds; 0 means
    repaired nodes return binary-healthy (the pre-domain behaviour)."""
    healing_factor: float = 0.7
    """Healing-node rate-factor floor; each node-level recovery draws
    uniform(``healing_factor``, 1) when healing windows are on."""
    storage_mtbf_h: float = 0.0
    """Mean time between checkpoint-storage losses *per tier*, hours
    (0 = off)."""
    storage_tiers: int = 1
    """Checkpoint storage tiers; job ``j`` checkpoints to tier
    ``j % storage_tiers``."""

    def __post_init__(self) -> None:
        if self.node_mtbf_h < 0 or self.gpu_mtbf_h < 0:
            raise ValueError("MTBF values must be non-negative (0 disables)")
        if self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in [0, 1]")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if (self.partition_mtbf_h < 0 or self.degraded_mtbf_h < 0
                or self.storage_mtbf_h < 0):
            raise ValueError("MTBF values must be non-negative (0 disables)")
        if self.partition_duration_s <= 0 or self.degraded_duration_s <= 0:
            raise ValueError("partition/degraded durations must be positive")
        if self.partition_mtbf_h > 0 and self.failure_domains < 2:
            raise ValueError(
                "partitions need failure_domains >= 2 (a lone domain has "
                "no boundary to cut)"
            )
        if self.failure_domains < 0:
            raise ValueError("failure_domains must be non-negative")
        if self.partition_policy not in ("stall", "preempt"):
            raise ValueError(
                "partition_policy must be 'stall' or 'preempt', got "
                f"{self.partition_policy!r}"
            )
        if not 0.0 < self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be in (0, 1)")
        if not 0.0 < self.healing_factor < 1.0:
            raise ValueError("healing_factor must be in (0, 1)")
        if self.healing_window_s < 0:
            raise ValueError("healing_window_s must be non-negative")
        if self.storage_tiers < 1:
            raise ValueError("storage_tiers must be at least 1")

    @property
    def enabled(self) -> bool:
        """Whether any failure process is active."""
        return (self.node_mtbf_h > 0 or self.gpu_mtbf_h > 0
                or self.partition_mtbf_h > 0 or self.degraded_mtbf_h > 0
                or self.storage_mtbf_h > 0)

    # ------------------------------------------------------------- parsing --
    _FLOAT_KEYS = (
        "node_mtbf_h", "gpu_mtbf_h", "mttr_s", "permanent",
        "horizon_s", "horizon_h", "mttr_min",
        "partition_mtbf_h", "partition_duration_s", "partition_duration_min",
        "degraded_mtbf_h", "degraded_factor", "degraded_duration_s",
        "healing_window_s", "healing_factor", "storage_mtbf_h",
    )
    _INT_KEYS = ("seed", "failure_domains", "storage_tiers")
    _STR_KEYS = ("partition_policy",)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultModel":
        """Parse the CLI's ``key=value,key=value`` fault spec.

        Keys: ``node_mtbf_h``, ``gpu_mtbf_h``, ``mttr_s`` (or
        ``mttr_min``), ``permanent``, ``seed``, ``horizon_h`` (or
        ``horizon_s``), plus the failure-domain knobs
        ``partition_mtbf_h``, ``partition_duration_s`` (or ``_min``),
        ``failure_domains``, ``partition_policy``, the degraded-mode
        knobs ``degraded_mtbf_h``, ``degraded_factor``,
        ``degraded_duration_s``, ``healing_window_s``,
        ``healing_factor``, and the checkpoint-storage knobs
        ``storage_mtbf_h``, ``storage_tiers``.  Example::

            --faults "node_mtbf_h=24,mttr_min=10,seed=7"
            --faults "partition_mtbf_h=6,failure_domains=3,seed=7"
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key in cls._FLOAT_KEYS:
                num = float(value)
                if key == "mttr_min":
                    kwargs["mttr_s"] = num * 60.0
                elif key == "horizon_h":
                    kwargs["horizon_s"] = num * _HOUR_S
                elif key == "permanent":
                    kwargs["permanent_fraction"] = num
                elif key == "partition_duration_min":
                    kwargs["partition_duration_s"] = num * 60.0
                else:
                    kwargs[key] = num
            elif key in cls._INT_KEYS:
                kwargs[key] = int(value)
            elif key in cls._STR_KEYS:
                kwargs[key] = value
            else:
                known = ", ".join(
                    sorted(cls._FLOAT_KEYS + cls._INT_KEYS + cls._STR_KEYS)
                )
                raise ValueError(
                    f"unknown fault spec key {key!r}; expected one of {known}"
                )
        return cls(**kwargs)

    # ---------------------------------------------------------- topology --
    def domains(self, cluster: "Cluster") -> tuple[tuple[int, ...], ...]:
        """The seeded failure-domain topology: ``failure_domains`` groups
        of node ids, a round-robin split of a seeded permutation (stream
        ``[seed, 0, 5]``) — a stable function of (seed, inventory) so a
        restored run reconstructs the identical racks."""
        if self.failure_domains <= 0:
            return ()
        node_ids = sorted(n.node_id for n in cluster.nodes)
        rng = np.random.default_rng([self.seed, 0, 5])
        perm = [node_ids[i] for i in rng.permutation(len(node_ids))]
        return tuple(
            tuple(sorted(perm[i::self.failure_domains]))
            for i in range(self.failure_domains)
        )

    # ---------------------------------------------------------- generation --
    def build_schedule(
        self, cluster: "Cluster", max_time: Optional[float] = None
    ) -> FaultSchedule:
        """Draw the full fault timeline for ``cluster``.

        Deterministic and decision-order-independent: node ``i``'s events
        come from ``default_rng([seed, i, stream])``, so they do not
        depend on other nodes, on the scheduler, or on call order.  The
        new processes (degrade/partition/storage) draw in separate loops
        *after* the node loop, so enabling them never renumbers the
        fail/recover ``fault_id`` sequence.
        """
        horizon = self.horizon_s
        if max_time is not None:
            horizon = min(horizon, max_time)
        raw: list[FaultEvent] = []
        if self.enabled:
            fault_id = 0
            nodes = sorted(cluster.nodes, key=lambda n: n.node_id)
            for node in nodes:
                slots = sorted(node.gpus.items())
                num_devices = sum(count for _, count in slots)
                if num_devices == 0:
                    continue
                if self.node_mtbf_h > 0:
                    rng = np.random.default_rng([self.seed, node.node_id, 0])
                    fault_id = self._draw_process(
                        raw, rng, horizon,
                        mtbf_s=self.node_mtbf_h * _HOUR_S,
                        node_id=node.node_id,
                        slots=None,
                        fault_id=fault_id,
                    )
                if self.gpu_mtbf_h > 0:
                    rng = np.random.default_rng([self.seed, node.node_id, 1])
                    fault_id = self._draw_process(
                        raw, rng, horizon,
                        mtbf_s=self.gpu_mtbf_h * _HOUR_S / num_devices,
                        node_id=node.node_id,
                        slots=slots,
                        fault_id=fault_id,
                    )
            if self.degraded_mtbf_h > 0:
                for node in nodes:
                    if sum(node.gpus.values()) == 0:
                        continue
                    rng = np.random.default_rng([self.seed, node.node_id, 2])
                    fault_id = self._draw_degrades(
                        raw, rng, horizon, node_id=node.node_id,
                        fault_id=fault_id,
                    )
            if self.partition_mtbf_h > 0:
                for domain_id, members in enumerate(self.domains(cluster)):
                    rng = np.random.default_rng([self.seed, domain_id, 3])
                    fault_id = self._draw_partitions(
                        raw, rng, horizon, domain_id=domain_id,
                        members=members, fault_id=fault_id,
                    )
            if self.storage_mtbf_h > 0:
                for tier in range(self.storage_tiers):
                    rng = np.random.default_rng([self.seed, tier, 4])
                    fault_id = self._draw_storage(
                        raw, rng, horizon, tier=tier, fault_id=fault_id,
                    )
        raw.sort(key=lambda ev: (
            ev.time, _KIND_PRIORITY[ev.kind], ev.node_id, ev.fault_id
        ))
        return FaultSchedule(events=tuple(raw))

    def _draw_process(
        self,
        out: list[FaultEvent],
        rng: np.random.Generator,
        horizon: float,
        *,
        mtbf_s: float,
        node_id: int,
        slots: Optional[list[tuple[str, int]]],
        fault_id: int,
    ) -> int:
        """One renewal process: fail → (maybe) recover → next failure."""
        t = 0.0
        while True:
            t += float(rng.exponential(mtbf_s))
            if t >= horizon:
                return fault_id
            if slots is None:
                gpu_type = None  # node-level: takes everything attached
            else:
                weights = np.array([c for _, c in slots], dtype=float)
                pick = int(rng.choice(len(slots), p=weights / weights.sum()))
                gpu_type = slots[pick][0]
            permanent = bool(
                self.permanent_fraction > 0
                and rng.random() < self.permanent_fraction
            )
            out.append(FaultEvent(
                time=t, node_id=node_id, gpu_type=gpu_type, kind=FAIL,
                fault_id=fault_id, permanent=permanent,
            ))
            if permanent:
                # The process keeps its own clock but this capacity is
                # gone; for node-level processes nothing is left to fail.
                fault_id += 1
                if slots is None:
                    return fault_id
                continue
            repair = t + max(float(rng.exponential(self.mttr_s)), 1e-9)
            if repair < horizon:
                rate_factor = 1.0
                heal_s = 0.0
                # Healing windows are node-level only: the repaired host
                # comes back throttled (uniform floor..1) for an
                # exponential window.  The extra draws happen only when
                # the knob is on, keeping disabled schedules
                # byte-identical.
                if slots is None and self.healing_window_s > 0:
                    rate_factor = float(
                        rng.uniform(self.healing_factor, 1.0)
                    )
                    heal_s = max(
                        float(rng.exponential(self.healing_window_s)), 1e-9
                    )
                out.append(FaultEvent(
                    time=repair, node_id=node_id, gpu_type=gpu_type,
                    kind=RECOVER, fault_id=fault_id,
                    rate_factor=rate_factor, heal_s=heal_s,
                ))
                if heal_s > 0 and repair + heal_s < horizon:
                    out.append(FaultEvent(
                        time=repair + heal_s, node_id=node_id, gpu_type=None,
                        kind=DEGRADE_END, fault_id=fault_id,
                    ))
                t = repair
                fault_id += 1
            else:
                return fault_id + 1

    def _draw_degrades(
        self,
        out: list[FaultEvent],
        rng: np.random.Generator,
        horizon: float,
        *,
        node_id: int,
        fault_id: int,
    ) -> int:
        """Throttle renewal process: degrade → degrade_end → next."""
        t = 0.0
        while True:
            t += float(rng.exponential(self.degraded_mtbf_h * _HOUR_S))
            if t >= horizon:
                return fault_id
            factor = float(rng.uniform(self.degraded_factor, 1.0))
            end = t + max(
                float(rng.exponential(self.degraded_duration_s)), 1e-9
            )
            out.append(FaultEvent(
                time=t, node_id=node_id, gpu_type=None, kind=DEGRADE,
                fault_id=fault_id, rate_factor=factor,
            ))
            if end >= horizon:
                # Degraded to the end of the run; no closing event.
                return fault_id + 1
            out.append(FaultEvent(
                time=end, node_id=node_id, gpu_type=None, kind=DEGRADE_END,
                fault_id=fault_id,
            ))
            t = end
            fault_id += 1

    def _draw_partitions(
        self,
        out: list[FaultEvent],
        rng: np.random.Generator,
        horizon: float,
        *,
        domain_id: int,
        members: tuple[int, ...],
        fault_id: int,
    ) -> int:
        """Partition renewal process for one failure domain."""
        t = 0.0
        while True:
            t += float(rng.exponential(self.partition_mtbf_h * _HOUR_S))
            if t >= horizon:
                return fault_id
            heal = t + max(
                float(rng.exponential(self.partition_duration_s)), 1e-9
            )
            out.append(FaultEvent(
                time=t, node_id=-1, gpu_type=None, kind=PARTITION,
                fault_id=fault_id, domain=domain_id, nodes=members,
            ))
            if heal >= horizon:
                # Partitioned to the end of the run; no heal event.
                return fault_id + 1
            out.append(FaultEvent(
                time=heal, node_id=-1, gpu_type=None, kind=PARTITION_HEAL,
                fault_id=fault_id, domain=domain_id, nodes=members,
            ))
            t = heal
            fault_id += 1

    def _draw_storage(
        self,
        out: list[FaultEvent],
        rng: np.random.Generator,
        horizon: float,
        *,
        tier: int,
        fault_id: int,
    ) -> int:
        """Checkpoint-storage loss process for one tier (no recovery —
        destroyed checkpoint data does not come back)."""
        t = 0.0
        while True:
            t += float(rng.exponential(self.storage_mtbf_h * _HOUR_S))
            if t >= horizon:
                return fault_id
            out.append(FaultEvent(
                time=t, node_id=-1, gpu_type=None, kind=STORAGE,
                fault_id=fault_id, tier=tier,
            ))
            fault_id += 1
