"""Fault injection and resilience: failure model, fault phase, validator.

The subsystem has three parts (see ``docs/robustness.md``):

* :class:`FaultModel` / :class:`FaultSchedule` — seeded, pre-generated
  fault processes: GPU/node failure+recovery (MTBF/MTTR, correlated
  node failures, optional permanent failures), failure-domain network
  partitions, degraded-mode throttling windows (including post-recovery
  healing), and checkpoint-storage losses;
* :class:`FaultPhase` — applies those events inside the engine loop:
  capacity drops out of the cluster state, hit gangs are preempted and
  rolled back to their last checkpoint, partition-spanning gangs stall
  (or preempt per policy), degraded nodes throttle their gangs without
  evicting, storage losses invalidate checkpoints, recoveries restore
  capacity.  Live reloads (``repro serve``) splice new schedules in as
  epochs;
* :class:`DecisionValidator` / :class:`DecisionRejected` — the
  reject-and-repair guard that keeps every scheduler's decisions feasible
  against surviving capacity.

Attach a model with ``simulate(..., faults=FaultModel(...))`` or
``repro.cli simulate --faults "node_mtbf_h=24,mttr_min=10,seed=7"``.
"""

from repro.faults.model import (
    DEGRADE,
    DEGRADE_END,
    FAIL,
    PARTITION,
    PARTITION_HEAL,
    RECOVER,
    STORAGE,
    FaultEvent,
    FaultModel,
    FaultSchedule,
)
from repro.faults.phase import FaultPhase
from repro.faults.validator import REJECT_REASONS, DecisionRejected, DecisionValidator

__all__ = [
    "FAIL",
    "RECOVER",
    "PARTITION",
    "PARTITION_HEAL",
    "DEGRADE",
    "DEGRADE_END",
    "STORAGE",
    "FaultEvent",
    "FaultModel",
    "FaultSchedule",
    "FaultPhase",
    "REJECT_REASONS",
    "DecisionRejected",
    "DecisionValidator",
]
