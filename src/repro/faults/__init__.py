"""Fault injection and resilience: failure model, fault phase, validator.

The subsystem has three parts (see ``docs/robustness.md``):

* :class:`FaultModel` / :class:`FaultSchedule` — seeded, pre-generated
  GPU/node failure+recovery processes (MTBF/MTTR, correlated node
  failures, optional permanent failures);
* :class:`FaultPhase` — applies those events inside the engine loop:
  capacity drops out of the cluster state, hit gangs are preempted and
  rolled back to their last checkpoint, recoveries restore capacity;
* :class:`DecisionValidator` / :class:`DecisionRejected` — the
  reject-and-repair guard that keeps every scheduler's decisions feasible
  against surviving capacity.

Attach a model with ``simulate(..., faults=FaultModel(...))`` or
``repro.cli simulate --faults "node_mtbf_h=24,mttr_min=10,seed=7"``.
"""

from repro.faults.model import FAIL, RECOVER, FaultEvent, FaultModel, FaultSchedule
from repro.faults.phase import FaultPhase
from repro.faults.validator import REJECT_REASONS, DecisionRejected, DecisionValidator

__all__ = [
    "FAIL",
    "RECOVER",
    "FaultEvent",
    "FaultModel",
    "FaultSchedule",
    "FaultPhase",
    "REJECT_REASONS",
    "DecisionRejected",
    "DecisionValidator",
]
