"""Machines (servers) holding typed GPU inventories."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.gpu import gpu_type

__all__ = ["Node"]


@dataclass(frozen=True, slots=True)
class Node:
    """One server in the cluster.

    A node owns a fixed inventory of accelerators, e.g. ``{"V100": 4}`` for
    a homogeneous 4-GPU box or ``{"V100": 2, "K80": 2}`` for a mixed one.
    Nodes are immutable; all transient occupancy lives in
    :class:`repro.cluster.state.ClusterState`.

    Attributes
    ----------
    node_id:
        Dense integer id, unique within a cluster.
    gpus:
        Mapping from GPU-type name to the number of that type installed.
    network_gbps:
        NIC bandwidth used by the cross-server leg of the communication
        model (25 Gbit/s is a typical cloud instance NIC).
    """

    node_id: int
    gpus: Mapping[str, int] = field(default_factory=dict)
    network_gbps: float = 25.0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if self.network_gbps <= 0:
            raise ValueError(f"network_gbps must be positive, got {self.network_gbps}")
        cleaned: dict[str, int] = {}
        for name, count in self.gpus.items():
            gpu_type(name)  # validates the name
            if count < 0:
                raise ValueError(f"negative GPU count for {name!r} on node {self.node_id}")
            if count > 0:
                cleaned[name] = int(count)
        object.__setattr__(self, "gpus", cleaned)

    @property
    def total_gpus(self) -> int:
        """Total number of accelerators installed on this node."""
        return sum(self.gpus.values())

    def count(self, type_name: str) -> int:
        """Number of GPUs of ``type_name`` installed (0 if none)."""
        return self.gpus.get(type_name, 0)

    def has_type(self, type_name: str) -> bool:
        return self.count(type_name) > 0

    def __str__(self) -> str:  # pragma: no cover - repr helper
        inv = ", ".join(f"{n}×{t}" for t, n in sorted(self.gpus.items()))
        return f"Node({self.node_id}: {inv})"
