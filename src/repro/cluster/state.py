"""Mutable free-capacity bookkeeping.

A :class:`ClusterState` tracks, per ``(node, gpu_type)`` slot, how many
devices are free.  Schedulers mutate a state while constructing a round's
allocation (Hadar's DP explores states recursively and therefore relies on
cheap :meth:`ClusterState.copy` and a canonical :meth:`ClusterState.key`
for memoization); the simulation engine keeps one authoritative state for
"what is running right now".

The slot universe is fixed at construction, so the canonical slot order
is computed once and shared by every copy: :meth:`allocate` /
:meth:`release` update the free-count vector in ``O(slots touched)`` and
:meth:`key` never re-sorts — it just freezes (and caches) the maintained
vector.  This is what keeps the DP recursion's per-node memo lookups flat
as the cluster grows (see ``docs/performance.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.cluster.allocation import Allocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

__all__ = ["ClusterState"]


class ClusterState:
    """Free GPU counts per ``(node_id, gpu_type)`` slot.

    The slot list is fixed at construction (from the cluster's inventory);
    only the free counts change.  All mutation goes through
    :meth:`allocate` / :meth:`release`, which enforce capacity invariants.
    """

    __slots__ = ("_capacity", "_free", "_order", "_index", "_vec", "_key_cache")

    def __init__(self, capacity: dict[tuple[int, str], int]):
        for slot, cap in capacity.items():
            if cap < 0:
                raise ValueError(f"negative capacity for slot {slot}")
        self._capacity: dict[tuple[int, str], int] = dict(capacity)
        self._free: dict[tuple[int, str], int] = dict(capacity)
        # Canonical slot order, shared (immutable) across every copy.
        self._order: tuple[tuple[int, str], ...] = tuple(sorted(self._capacity))
        self._index: dict[tuple[int, str], int] = {
            slot: i for i, slot in enumerate(self._order)
        }
        # Free counts in canonical order; maintained incrementally so
        # key() needs no sort (and no dict walk).
        self._vec: list[int] = [self._free[slot] for slot in self._order]
        self._key_cache: Optional[tuple[int, ...]] = tuple(self._vec)

    @classmethod
    def from_cluster(cls, cluster: "Cluster") -> "ClusterState":
        capacity = {
            (node.node_id, type_name): count
            for node in cluster.nodes
            for type_name, count in node.gpus.items()
        }
        return cls(capacity)

    # -- queries ---------------------------------------------------------
    @property
    def slots(self) -> tuple[tuple[int, str], ...]:
        """All ``(node_id, type)`` slots, sorted deterministically."""
        return self._order

    def capacity(self, node_id: int, type_name: str) -> int:
        return self._capacity.get((node_id, type_name), 0)

    def free(self, node_id: int, type_name: str) -> int:
        return self._free.get((node_id, type_name), 0)

    def used(self, node_id: int, type_name: str) -> int:
        return self.capacity(node_id, type_name) - self.free(node_id, type_name)

    def free_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (_, type_name), count in self._free.items():
            out[type_name] = out.get(type_name, 0) + count
        return out

    def used_by_type(self) -> dict[str, int]:
        free = self.free_by_type()
        out: dict[str, int] = {}
        for (_, type_name), cap in self._capacity.items():
            out[type_name] = out.get(type_name, 0) + cap
        return {t: out[t] - free.get(t, 0) for t in out}

    def total_free(self) -> int:
        return sum(self._vec)

    def total_capacity(self) -> int:
        return sum(self._capacity.values())

    def total_used(self) -> int:
        return self.total_capacity() - self.total_free()

    def is_full(self) -> bool:
        """True when no GPU of any type is free."""
        return self.total_free() == 0

    def free_slots(self) -> Iterable[tuple[tuple[int, str], int]]:
        """Yield ``((node_id, type), free_count)`` for slots with free GPUs."""
        vec = self._vec
        for i, slot in enumerate(self._order):
            count = vec[i]
            if count > 0:
                yield slot, count

    # -- mutation ---------------------------------------------------------
    def can_fit(self, allocation: Allocation) -> bool:
        """Whether the placement fits in the currently free devices."""
        return all(
            self._free.get(slot, 0) >= count
            for slot, count in allocation.placements.items()
        )

    def allocate(self, allocation: Allocation) -> None:
        """Claim the devices of ``allocation``; raises if any slot lacks room."""
        if not self.can_fit(allocation):
            raise ValueError(f"allocation does not fit free capacity: {allocation}")
        for slot, count in allocation.placements.items():
            self._free[slot] -= count
            self._vec[self._index[slot]] -= count
        self._key_cache = None

    def release(self, allocation: Allocation) -> None:
        """Return the devices of ``allocation``; raises on over-release."""
        for slot, count in allocation.placements.items():
            cap = self._capacity.get(slot, 0)
            new_free = self._free.get(slot, 0) + count
            if new_free > cap:
                raise ValueError(
                    f"release overflows capacity at slot {slot}: {new_free} > {cap}"
                )
        for slot, count in allocation.placements.items():
            self._free[slot] += count
            self._vec[self._index[slot]] += count
        self._key_cache = None

    # -- fault capacity ---------------------------------------------------
    def fail(self, node_id: int, type_name: str, count: int) -> None:
        """Remove ``count`` *free* devices from the slot's capacity.

        Fault injection preempts any gang touching the slot first, so the
        failed devices are free by the time capacity shrinks.  ``_capacity``
        is shared across :meth:`copy` clones ("immutable by convention"),
        so the first fault on a state rebinds it copy-on-write — DP branch
        copies taken earlier keep seeing the capacity they were born with.
        """
        if count < 0:
            raise ValueError(f"negative fail count {count}")
        if count == 0:
            return
        slot = (node_id, type_name)
        free = self._free.get(slot, 0)
        if count > free:
            raise ValueError(
                f"cannot fail {count} devices at slot {slot}: only {free} free"
            )
        self._capacity = dict(self._capacity)
        self._capacity[slot] -= count
        self._free[slot] = free - count
        self._vec[self._index[slot]] -= count
        self._key_cache = None

    def restore(self, node_id: int, type_name: str, count: int) -> None:
        """Return ``count`` previously failed devices to the slot.

        The caller (the fault phase) restores exactly what the matching
        failure removed, so nominal capacity is never exceeded.
        """
        if count < 0:
            raise ValueError(f"negative restore count {count}")
        if count == 0:
            return
        slot = (node_id, type_name)
        if slot not in self._index:
            raise ValueError(f"cannot restore unknown slot {slot}")
        self._capacity = dict(self._capacity)
        self._capacity[slot] = self._capacity.get(slot, 0) + count
        self._free[slot] = self._free.get(slot, 0) + count
        self._vec[self._index[slot]] += count
        self._key_cache = None

    # -- copies / keys ----------------------------------------------------
    def copy(self) -> "ClusterState":
        clone = ClusterState.__new__(ClusterState)
        clone._capacity = self._capacity  # immutable by convention: shared
        clone._free = dict(self._free)
        clone._order = self._order  # shared: the slot universe never changes
        clone._index = self._index
        clone._vec = list(self._vec)
        clone._key_cache = self._key_cache
        return clone

    def key(self) -> tuple[int, ...]:
        """Canonical hashable snapshot of free counts (for DP memoization)."""
        cached = self._key_cache
        if cached is None:
            cached = self._key_cache = tuple(self._vec)
        return cached

    # -- engine snapshot support ----------------------------------------------
    def state_dict(self) -> dict:
        """Capacity and free counts per slot, in dict insertion order.

        Capacity is part of the state (not just the free counts): fault
        injection shrinks it copy-on-write via :meth:`fail`, so a restored
        state must reproduce the surviving inventory, not the as-built one.
        The list preserves ``_capacity``'s insertion order because
        ``free_by_type``/``used_by_type`` walk the dicts and downstream
        consumers serialize their output order.  The derived members
        (``_vec``/``_key_cache``) rebuild from the two dicts.
        """
        return {
            "slots": [
                [node_id, type_name, cap, self._free[(node_id, type_name)]]
                for (node_id, type_name), cap in self._capacity.items()
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        for node_id, type_name, _cap, _free in state["slots"]:
            if (int(node_id), str(type_name)) not in self._index:
                raise ValueError(
                    f"snapshot references unknown slot {(node_id, type_name)}"
                )
        self._capacity = {
            (int(n), str(t)): int(cap) for n, t, cap, _ in state["slots"]
        }
        self._free = {
            (int(n), str(t)): int(free) for n, t, _, free in state["slots"]
        }
        self._vec = [self._free[slot] for slot in self._order]
        self._key_cache = tuple(self._vec)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterState):
            return NotImplemented
        return self._capacity == other._capacity and self._free == other._free

    def __str__(self) -> str:  # pragma: no cover - repr helper
        by_type = self.free_by_type()
        parts = ", ".join(f"{t}:{c} free" for t, c in sorted(by_type.items()))
        return f"ClusterState({parts})"
