"""Communication-cost model for data-parallel gangs.

Data-parallel DNN training synchronizes gradients once per iteration.  A
gang consolidated on one server exchanges gradients over PCIe/NVLink; a
gang spanning servers pays a ring-allreduce over the (much slower) network
NICs.  The paper folds this into the "communication cost" that
``FIND_ALLOC`` adds to non-consolidated candidate allocations (Algorithm 2
line 27) and that depresses the realized throughput of spread-out gangs.

We model the classic bandwidth-optimal ring allreduce: each of the ``n``
participants sends and receives ``2 (n-1)/n × model_bytes`` over the
bottleneck link, so

    t_allreduce = 2 (n-1)/n × model_bytes / bottleneck_bytes_per_s + latency

The *throughput penalty* of an allocation is then
``t_compute / (t_compute + t_allreduce_extra)`` where
``t_allreduce_extra`` is the additional sync time relative to a
consolidated placement — 1.0 for single-server gangs, < 1 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.allocation import Allocation

__all__ = ["CommunicationModel", "ring_allreduce_seconds"]


def ring_allreduce_seconds(
    model_bytes: float,
    participants: int,
    bandwidth_gbps: float,
    *,
    latency_s: float = 0.0005,
) -> float:
    """Time for one ring allreduce of ``model_bytes`` over ``participants``.

    ``bandwidth_gbps`` is the per-link bottleneck bandwidth in Gbit/s.
    With one participant there is nothing to reduce and the cost is zero.
    """
    if participants <= 1 or model_bytes <= 0:
        return 0.0
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    bytes_per_s = bandwidth_gbps * 1e9 / 8.0
    volume = 2.0 * (participants - 1) / participants * model_bytes
    return volume / bytes_per_s + latency_s * (participants - 1)


@dataclass(frozen=True, slots=True)
class CommunicationModel:
    """Cluster interconnect parameters.

    Attributes
    ----------
    intra_node_gbps:
        Effective per-GPU bandwidth for gradient exchange inside one
        server (PCIe 3.0 x16-ish).
    cross_node_gbps:
        Effective NIC bandwidth between servers.
    latency_s:
        Per-hop latency added per allreduce step.
    enabled:
        When False the model reports zero cost / unit penalty everywhere;
        used by the ablation benchmarks.
    """

    intra_node_gbps: float = 100.0
    cross_node_gbps: float = 25.0
    latency_s: float = 0.0005
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.intra_node_gbps <= 0 or self.cross_node_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    # -- raw sync times ---------------------------------------------------
    def sync_seconds(self, allocation: Allocation, model_bytes: float) -> float:
        """Per-iteration gradient synchronization time for a placement."""
        if not self.enabled or not allocation:
            return 0.0
        n = allocation.total_workers
        if len(allocation.node_ids) <= 1:
            bw = self.intra_node_gbps
        else:
            bw = self.cross_node_gbps
        return ring_allreduce_seconds(model_bytes, n, bw, latency_s=self.latency_s)

    def extra_sync_seconds(self, allocation: Allocation, model_bytes: float) -> float:
        """Sync time *beyond* what a consolidated gang of the same size pays."""
        if not self.enabled or not allocation or allocation.is_consolidated:
            return 0.0
        n = allocation.total_workers
        spread = ring_allreduce_seconds(
            model_bytes, n, self.cross_node_gbps, latency_s=self.latency_s
        )
        packed = ring_allreduce_seconds(
            model_bytes, n, self.intra_node_gbps, latency_s=self.latency_s
        )
        return max(0.0, spread - packed)

    def extra_sync_seconds_n(
        self, workers: int, multi_node: bool, model_bytes: float
    ) -> float:
        """Allocation-free variant of :meth:`extra_sync_seconds`.

        Hot path for the scheduler's candidate search, which knows only
        (gang size, spans-servers?) before materializing an allocation.
        """
        if not self.enabled or not multi_node or workers <= 1:
            return 0.0
        spread = ring_allreduce_seconds(
            model_bytes, workers, self.cross_node_gbps, latency_s=self.latency_s
        )
        packed = ring_allreduce_seconds(
            model_bytes, workers, self.intra_node_gbps, latency_s=self.latency_s
        )
        return max(0.0, spread - packed)

    def throughput_penalty_n(
        self,
        workers: int,
        multi_node: bool,
        model_bytes: float,
        iteration_seconds: float,
    ) -> float:
        """Allocation-free variant of :meth:`throughput_penalty`."""
        extra = self.extra_sync_seconds_n(workers, multi_node, model_bytes)
        if extra <= 0.0:
            return 1.0
        if iteration_seconds <= 0:
            raise ValueError("iteration_seconds must be positive")
        return iteration_seconds / (iteration_seconds + extra)

    # -- throughput penalty -------------------------------------------------
    def throughput_penalty(
        self,
        allocation: Allocation,
        model_bytes: float,
        iteration_seconds: float,
    ) -> float:
        """Multiplier in ``(0, 1]`` applied to a gang's iteration rate.

        ``iteration_seconds`` is the pure-compute time of one iteration at
        the gang's bottleneck device (``1 / x_j(t)``).  Consolidated gangs
        (and disabled models) return exactly 1.0.
        """
        extra = self.extra_sync_seconds(allocation, model_bytes)
        if extra <= 0.0:
            return 1.0
        if iteration_seconds <= 0:
            raise ValueError("iteration_seconds must be positive")
        return iteration_seconds / (iteration_seconds + extra)

    def cost_multiplier(
        self,
        allocation: Allocation,
        model_bytes: float,
        iteration_seconds: float,
    ) -> float:
        """Price-space communication surcharge factor (>= 1).

        A gang slowed to fraction ``p`` of its consolidated rate occupies
        its devices ``1/p`` times longer per unit of work, so its
        effective resource price scales by ``1/p``.  ``FIND_ALLOC`` uses
        ``(multiplier - 1) × base_cost`` as the additive ``comm. cost``
        term of Algorithm 2 line 27.
        """
        p = self.throughput_penalty(allocation, model_bytes, iteration_seconds)
        return 1.0 / p

    @staticmethod
    def disabled() -> "CommunicationModel":
        """A no-op model (zero comm cost; unit penalties)."""
        return CommunicationModel(enabled=False)
