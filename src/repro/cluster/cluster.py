"""The cluster: an immutable collection of nodes, plus standard builders.

Two concrete configurations from the paper are provided:

* :func:`simulated_cluster` — the trace-driven simulation setup
  (Sec. IV-A): 15 nodes, 20 GPUs of each of {V100, P100, K80};
* :func:`prototype_cluster` — the AWS testbed (Sec. IV-B): 8 GPUs across
  single-GPU instances, two each of {T4, K520, K80, V100}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.node import Node
from repro.cluster.state import ClusterState
from repro.cluster.topology import CommunicationModel

__all__ = [
    "Cluster",
    "simulated_cluster",
    "prototype_cluster",
    "homogeneous_node_cluster",
]


@dataclass(frozen=True)
class Cluster:
    """An immutable set of nodes and the interconnect between them.

    All transient occupancy is tracked separately in
    :class:`~repro.cluster.state.ClusterState`; a cluster object can be
    shared freely between schedulers, the simulator and metrics code.
    """

    nodes: Sequence[Node]
    comm: CommunicationModel = field(default_factory=CommunicationModel)

    def __post_init__(self) -> None:
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in cluster: {sorted(ids)}")
        object.__setattr__(self, "nodes", tuple(self.nodes))

    # -- capacity views -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(n.total_gpus for n in self.nodes)

    @property
    def gpu_types(self) -> tuple[str, ...]:
        """All GPU type names present, sorted for deterministic iteration."""
        names = {t for n in self.nodes for t in n.gpus}
        return tuple(sorted(names))

    def node(self, node_id: int) -> Node:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no node with id {node_id}")

    def capacity(self, type_name: str) -> int:
        """Cluster-wide number of GPUs of one type."""
        return sum(n.count(type_name) for n in self.nodes)

    def capacity_by_type(self) -> dict[str, int]:
        return {t: self.capacity(t) for t in self.gpu_types}

    def nodes_with_type(self, type_name: str) -> list[Node]:
        return [n for n in self.nodes if n.has_type(type_name)]

    # -- state ----------------------------------------------------------
    def fresh_state(self) -> ClusterState:
        """A new all-free occupancy tracker for this cluster."""
        return ClusterState.from_cluster(self)

    def __str__(self) -> str:  # pragma: no cover - repr helper
        caps = ", ".join(f"{c}×{t}" for t, c in sorted(self.capacity_by_type().items()))
        return f"Cluster({self.num_nodes} nodes; {caps})"


def homogeneous_node_cluster(
    type_counts: dict[str, int],
    *,
    gpus_per_node: int = 4,
    network_gbps: float = 25.0,
    comm: CommunicationModel | None = None,
) -> Cluster:
    """Build a cluster of single-type nodes.

    ``type_counts`` maps each GPU type to the *total* number of GPUs of
    that type; GPUs are packed ``gpus_per_node`` to a server (the last
    server of a type may be partially filled).
    """
    if gpus_per_node <= 0:
        raise ValueError("gpus_per_node must be positive")
    nodes: list[Node] = []
    node_id = 0
    for type_name, total in sorted(type_counts.items()):
        remaining = int(total)
        if remaining < 0:
            raise ValueError(f"negative GPU count for {type_name!r}")
        while remaining > 0:
            take = min(gpus_per_node, remaining)
            nodes.append(Node(node_id, {type_name: take}, network_gbps=network_gbps))
            node_id += 1
            remaining -= take
    return Cluster(nodes, comm=comm or CommunicationModel())


def simulated_cluster(scale: int = 1, *, comm: CommunicationModel | None = None) -> Cluster:
    """The paper's simulated cluster (Sec. IV-A), optionally scaled.

    At ``scale=1``: 15 nodes and 20 GPUs of each of V100 / P100 / K80,
    i.e. 5 nodes of 4 GPUs per type, 60 GPUs total.  ``scale=k``
    multiplies every type's GPU count by ``k`` (used by the Fig. 7
    scalability experiment, where the cluster grows with the job count).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    counts = {"V100": 20 * scale, "P100": 20 * scale, "K80": 20 * scale}
    return homogeneous_node_cluster(counts, gpus_per_node=4, comm=comm)


def prototype_cluster(*, comm: CommunicationModel | None = None) -> Cluster:
    """The AWS prototype cluster (Sec. IV-B): 8 single-GPU instances.

    Two each of g4dn.xlarge (T4), g2.2xlarge (K520), p2.xlarge (K80) and
    p3.2xlarge (V100).  Every instance is modelled as its own node, so any
    multi-GPU gang necessarily crosses servers — as on the real testbed.
    """
    order: Iterable[str] = ("T4", "T4", "K520", "K520", "K80", "K80", "V100", "V100")
    nodes = [Node(i, {t: 1}, network_gbps=25.0) for i, t in enumerate(order)]
    return Cluster(nodes, comm=comm or CommunicationModel())
