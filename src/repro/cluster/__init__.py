"""Cluster substrate: heterogeneous GPU inventory, placement, and topology.

This package models everything the schedulers need to know about the
physical resources of a deep-learning cluster:

* :mod:`repro.cluster.gpu` — the accelerator catalog (V100, P100, K80, T4,
  K520, ...) with per-device attributes;
* :mod:`repro.cluster.node` — machines holding typed GPU inventories;
* :mod:`repro.cluster.cluster` — the cluster itself plus builders for the
  paper's simulated (15 nodes / 60 GPUs) and prototype (8 GPUs on AWS)
  configurations;
* :mod:`repro.cluster.allocation` — task-level placements: which GPUs of
  which type on which node a job's gang occupies;
* :mod:`repro.cluster.state` — mutable free-capacity bookkeeping used while
  a scheduler builds a round's allocation;
* :mod:`repro.cluster.topology` — the communication-cost model (ring
  allreduce across servers) that penalizes non-consolidated gangs.
"""

from repro.cluster.allocation import Allocation, EMPTY_ALLOCATION
from repro.cluster.cluster import (
    Cluster,
    homogeneous_node_cluster,
    prototype_cluster,
    simulated_cluster,
)
from repro.cluster.gpu import GPU_CATALOG, GPUType, gpu_type
from repro.cluster.node import Node
from repro.cluster.state import ClusterState
from repro.cluster.topology import CommunicationModel, ring_allreduce_seconds

__all__ = [
    "Allocation",
    "EMPTY_ALLOCATION",
    "Cluster",
    "ClusterState",
    "CommunicationModel",
    "GPU_CATALOG",
    "GPUType",
    "Node",
    "gpu_type",
    "homogeneous_node_cluster",
    "prototype_cluster",
    "ring_allreduce_seconds",
    "simulated_cluster",
]
