"""Accelerator catalog.

The paper's simulated cluster mixes NVIDIA V100, P100, and K80 GPUs; the
AWS prototype adds T4 and GRID K520 devices.  Schedulers only ever consume
the *type name* (throughput matrices are keyed by it), but the per-device
attributes recorded here feed two substrates:

* the communication model uses ``pcie_gbps`` for intra-server gradient
  exchange;
* the checkpoint model and documentation use ``memory_gb`` /
  ``peak_fp32_tflops`` to sanity-check that relative throughputs are
  plausible.

Device figures are public datasheet values (approximate where NVIDIA quotes
ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUType", "GPU_CATALOG", "gpu_type", "register_gpu_type"]


@dataclass(frozen=True, slots=True)
class GPUType:
    """A model of accelerator, e.g. an NVIDIA V100.

    Attributes
    ----------
    name:
        Canonical short name used as the key everywhere (``"V100"``).
    memory_gb:
        On-board memory in GiB.
    peak_fp32_tflops:
        Peak single-precision throughput; only used for documentation and
        sanity checks, never by scheduling logic.
    pcie_gbps:
        Host-interconnect bandwidth in Gbit/s (PCIe generation dependent),
        used by the intra-server leg of the communication model.
    release_year:
        Year of introduction; orders device generations in reports.
    """

    name: str
    memory_gb: float
    peak_fp32_tflops: float
    pcie_gbps: float
    release_year: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _catalog() -> dict[str, GPUType]:
    types = [
        # The three types of the paper's simulated cluster.
        GPUType("V100", memory_gb=16.0, peak_fp32_tflops=14.0, pcie_gbps=128.0, release_year=2017),
        GPUType("P100", memory_gb=16.0, peak_fp32_tflops=9.3, pcie_gbps=128.0, release_year=2016),
        GPUType("K80", memory_gb=12.0, peak_fp32_tflops=4.1, pcie_gbps=64.0, release_year=2014),
        # The two extra types of the AWS prototype cluster.
        GPUType("T4", memory_gb=16.0, peak_fp32_tflops=8.1, pcie_gbps=64.0, release_year=2018),
        GPUType("K520", memory_gb=4.0, peak_fp32_tflops=2.4, pcie_gbps=32.0, release_year=2013),
        # Extension type for scalability / sensitivity experiments.
        GPUType("A100", memory_gb=40.0, peak_fp32_tflops=19.5, pcie_gbps=256.0, release_year=2020),
    ]
    return {t.name: t for t in types}


GPU_CATALOG: dict[str, GPUType] = _catalog()


def gpu_type(name: str) -> GPUType:
    """Look up a GPU type by name, raising a helpful error on a typo."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU type {name!r}; known types: {known}") from None


def register_gpu_type(gpu: GPUType, *, overwrite: bool = False) -> None:
    """Add a custom accelerator type to the catalog.

    Downstream users simulating other hardware (TPUs, newer GPUs) register
    it here so that clusters, throughput tables, and reports recognise the
    name.
    """
    if gpu.name in GPU_CATALOG and not overwrite:
        raise ValueError(f"GPU type {gpu.name!r} already registered")
    GPU_CATALOG[gpu.name] = gpu
