"""Task-level placements.

An :class:`Allocation` records, for one job's gang, how many GPUs of each
type on each node the job occupies: a mapping ``(node_id, gpu_type) ->
count``.  This is the object the Hadar/Gavel/Tiresias/YARN schedulers hand
back to the simulation engine and the unit the engine diffs to detect
preemptions.

Hadar's distinguishing capability is exactly that one allocation may span
*multiple GPU types* (task-level heterogeneity); Gavel-style allocations
always use a single type per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["Allocation", "EMPTY_ALLOCATION"]


@dataclass(frozen=True)
class Allocation:
    """Immutable placement of one job's workers.

    Parameters
    ----------
    placements:
        Mapping ``(node_id, gpu_type_name) -> worker count``.  Zero-count
        entries are dropped at construction.
    """

    placements: Mapping[tuple[int, str], int]

    def __post_init__(self) -> None:
        cleaned: dict[tuple[int, str], int] = {}
        for (node_id, type_name), count in self.placements.items():
            if count < 0:
                raise ValueError(
                    f"negative worker count {count} for ({node_id}, {type_name})"
                )
            if count:
                cleaned[(int(node_id), str(type_name))] = int(count)
        object.__setattr__(self, "placements", cleaned)
        # Canonical tuple used for hashing / equality / memoization keys.
        object.__setattr__(
            self, "_key", tuple(sorted(cleaned.items()))
        )

    # -- identity ------------------------------------------------------
    def __hash__(self) -> int:
        return hash(self._key)  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._key == other._key  # type: ignore[attr-defined]

    def __bool__(self) -> bool:
        return bool(self.placements)

    def __iter__(self) -> Iterator[tuple[tuple[int, str], int]]:
        return iter(sorted(self.placements.items()))

    # -- views ---------------------------------------------------------
    @property
    def total_workers(self) -> int:
        """Total number of GPUs (== gang size when non-empty)."""
        return sum(self.placements.values())

    @property
    def gpu_types(self) -> frozenset[str]:
        """The set of GPU types this gang touches."""
        return frozenset(t for (_, t) in self.placements)

    @property
    def node_ids(self) -> frozenset[int]:
        """The set of servers this gang touches."""
        return frozenset(n for (n, _) in self.placements)

    @property
    def is_consolidated(self) -> bool:
        """True when all workers sit on a single server (or empty)."""
        return len(self.node_ids) <= 1

    @property
    def is_homogeneous(self) -> bool:
        """True when all workers use one GPU type (or empty).

        Gavel-style (job-level) allocations are always homogeneous;
        Hadar may return heterogeneous ones.
        """
        return len(self.gpu_types) <= 1

    def count_by_type(self) -> dict[str, int]:
        """Workers aggregated per GPU type."""
        out: dict[str, int] = {}
        for (_, type_name), count in self.placements.items():
            out[type_name] = out.get(type_name, 0) + count
        return out

    def count_on_node(self, node_id: int) -> int:
        """Workers placed on a given server."""
        return sum(c for (n, _), c in self.placements.items() if n == node_id)

    # -- algebra ---------------------------------------------------------
    def merged_with(self, other: "Allocation") -> "Allocation":
        """Union of two placements (counts add)."""
        merged = dict(self.placements)
        for key, count in other.placements.items():
            merged[key] = merged.get(key, 0) + count
        return Allocation(merged)

    @staticmethod
    def single(node_id: int, type_name: str, count: int) -> "Allocation":
        """Convenience constructor for a one-entry placement."""
        return Allocation({(node_id, type_name): count})

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[int, str, int]]) -> "Allocation":
        """Build from ``(node_id, type_name, count)`` triples (counts add)."""
        placements: dict[tuple[int, str], int] = {}
        for node_id, type_name, count in pairs:
            key = (node_id, type_name)
            placements[key] = placements.get(key, 0) + count
        return Allocation(placements)

    def __str__(self) -> str:  # pragma: no cover - repr helper
        if not self.placements:
            return "Allocation(<empty>)"
        parts = ", ".join(
            f"node{n}:{c}×{t}" for (n, t), c in sorted(self.placements.items())
        )
        return f"Allocation({parts})"


EMPTY_ALLOCATION = Allocation({})
"""The canonical "job holds no GPUs" placement."""
