"""Gavel's round-based scheduling realization.

Gavel converts its optimal time-fraction matrix ``Y`` into per-round
decisions through a priority matrix: ``priority[j, r] = Y[j, r] /
rounds_received[j, r]`` — a job that has received fewer rounds on a type
than its optimal share owes has higher claim (a job that never ran on a
promised type has effectively infinite priority).  Each round, (job,
type) pairs are served in priority order, each admitted job receiving a
*homogeneous* gang of ``W_j`` type-``r`` devices — the job-level
constraint that Hadar's task-level allocation relaxes, and the reason
Gavel strands capacity when no single type has ``W_j`` devices free.

The allocation matrix is recomputed whenever the set of active jobs
changes (arrivals/completions), mirroring Gavel's "compute allocation on
job events" design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.gavel.policy import AllocationMatrix, max_min_allocation_matrix
from repro.baselines.packing import pack_gang_single_type
from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext

__all__ = ["GavelConfig", "GavelScheduler"]

_UNSERVED_BOOST = 1.0e9
"""Priority multiplier standing in for "infinite" when rounds_received = 0."""


@dataclass(frozen=True, slots=True)
class GavelConfig:
    """Gavel knobs.

    ``solver`` selects the allocation-matrix solver (``"lp"`` exact /
    ``"water-filling"`` approximate); ``min_fraction`` ignores Y entries
    below this threshold when building priorities (LP noise floor).
    """

    solver: str = "lp"
    policy: str = "max-min"
    min_fraction: float = 1e-6

    def __post_init__(self) -> None:
        if self.solver not in {"lp", "water-filling"}:
            raise ValueError(f"unknown solver {self.solver!r}")
        if self.policy not in {"max-min", "max-sum"}:
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.min_fraction < 0:
            raise ValueError("min_fraction must be non-negative")


class GavelScheduler(Scheduler):
    """The paper's closest state-of-the-art baseline."""

    round_based = True
    reacts_to_events = False

    def __init__(self, config: Optional[GavelConfig] = None):
        self.config = config or GavelConfig()
        self._cached_matrix: Optional[AllocationMatrix] = None
        self._cached_key: Optional[tuple] = None
        self._solved_last_round = 0
        self.last_round_stats: dict[str, int] = {}
        """Per-round counters (LP solves vs matrix-cache reuses, priority
        entries, admissions) the engine aggregates into
        ``SimulationResult.hotpath_stats`` and the metrics registry."""

    @property
    def name(self) -> str:
        return "gavel"

    def reset(self) -> None:
        self._cached_matrix = None
        self._cached_key = None
        self._solved_last_round = 0
        self.last_round_stats = {}

    # ---------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """The matrix cache (key + solved ``Y``), for engine snapshots.

        The solved matrix itself is captured — not just the key — so a
        restored run reuses the exact LP solution the uninterrupted run
        would have reused, independent of any solver-level variation.
        ``_solved_last_round``/``last_round_stats`` are per-round
        transients (overwritten before any cross-round read) and waived.
        """
        cached = self._cached_matrix
        return {
            "cached_key": (
                None
                if self._cached_key is None
                else [list(self._cached_key[0]),
                      [[t, c] for t, c in self._cached_key[1]]]
            ),
            "cached_matrix": (
                None
                if cached is None
                else {
                    "job_ids": list(cached.job_ids),
                    "types": list(cached.types),
                    "values": [[float(v) for v in row] for row in cached.values],
                }
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        import numpy as np

        key = state["cached_key"]
        self._cached_key = (
            None
            if key is None
            else (
                tuple(int(j) for j in key[0]),
                tuple((str(t), int(c)) for t, c in key[1]),
            )
        )
        cached = state["cached_matrix"]
        if cached is None:
            self._cached_matrix = None
        else:
            self._cached_matrix = AllocationMatrix(
                job_ids=tuple(int(j) for j in cached["job_ids"]),
                types=tuple(str(t) for t in cached["types"]),
                values=np.asarray(cached["values"], dtype=float).reshape(
                    len(cached["job_ids"]), len(cached["types"])
                ),
            )

    @property
    def last_allocation_matrix(self) -> Optional[AllocationMatrix]:
        """The ``Y`` matrix behind the most recent decision (introspection
        surface for :class:`~repro.analysis.sanitizer.InvariantSanitizer`;
        ``None`` before the first scheduling round)."""
        return self._cached_matrix

    # ------------------------------------------------------------------ API --
    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        active = ctx.active
        if not active:
            self.last_round_stats = {}
            return {}
        self._solved_last_round = 0
        allocation_matrix = self._allocation_matrix(ctx)

        # Priority matrix: optimal share per round actually received.
        entries: list[tuple[float, int, str]] = []
        for rt in active:
            for type_name in allocation_matrix.types:
                y = allocation_matrix.fraction(rt.job_id, type_name)
                if y <= self.config.min_fraction:
                    continue
                received = rt.rounds_by_type.get(type_name, 0)
                if received == 0:
                    priority = y * _UNSERVED_BOOST
                else:
                    priority = y / received
                entries.append((priority, rt.job_id, type_name))
        entries.sort(key=lambda e: (-e[0], e[1], e[2]))

        state = ctx.fresh_state()
        runtimes = {rt.job_id: rt for rt in active}
        target: dict[int, Allocation] = {}
        for _, job_id, type_name in entries:
            if job_id in target:
                continue
            rt = runtimes[job_id]
            gang = pack_gang_single_type(state, rt.job.num_workers, type_name)
            if gang is None:
                continue
            state.allocate(gang)
            target[job_id] = gang
        self.last_round_stats = {
            "jobs_considered": len(active),
            "jobs_admitted": len(target),
            "matrix_solves": self._solved_last_round,
            "priority_entries": len(entries),
        }
        return target

    # ---------------------------------------------------------------- internal --
    def _allocation_matrix(self, ctx: SchedulerContext) -> AllocationMatrix:
        active = ctx.active
        # The LP promises time fractions the round realization must be
        # able to deliver, so it plans against *surviving* capacity —
        # under fault injection the nominal inventory overstates what
        # exists (and the sanitizer's feasibility residual checks the
        # matrix against the surviving counts).  Without faults the two
        # are identical.  A job no type can currently host simply waits
        # this round instead of poisoning the LP.
        state = ctx.fresh_state()
        capacity: dict[str, int] = {}
        for node_id, type_name in state.slots:
            capacity[type_name] = (
                capacity.get(type_name, 0) + state.capacity(node_id, type_name)
            )
        placeable = tuple(
            rt for rt in active
            if any(
                capacity.get(t, 0) >= rt.job.num_workers
                and ctx.matrix.rate(rt.job.model.name, t) > 0
                for t in ctx.cluster.gpu_types
            )
        )
        key = (
            tuple(sorted(rt.job_id for rt in placeable)),
            tuple(sorted(capacity.items())),
        )
        if key != self._cached_key or self._cached_matrix is None:
            self._solved_last_round += 1
            self._cached_matrix = max_min_allocation_matrix(
                jobs=placeable,
                types=ctx.cluster.gpu_types,
                capacity=capacity,
                matrix=ctx.matrix,
                solver=self.config.solver,
                policy=self.config.policy,
            )
            self._cached_key = key
        return self._cached_matrix
