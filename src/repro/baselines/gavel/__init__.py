"""Gavel (OSDI'20) — job-level heterogeneity-aware baseline.

* :mod:`repro.baselines.gavel.policy` — the max-min (LAS) allocation
  matrix optimization over normalized effective throughputs;
* :mod:`repro.baselines.gavel.solver` — an exact LP solver (SciPy HiGHS)
  and an in-repo iterative water-filling approximation used as fallback
  and cross-check;
* :mod:`repro.baselines.gavel.scheduler` — the round-based realization:
  ``priority = Y[j,r] / rounds_received[j,r]`` with homogeneous-type
  gangs.
"""

from repro.baselines.gavel.policy import max_min_allocation_matrix
from repro.baselines.gavel.scheduler import GavelConfig, GavelScheduler
from repro.baselines.gavel.solver import solve_max_min_lp, water_filling_allocation

__all__ = [
    "GavelConfig",
    "GavelScheduler",
    "max_min_allocation_matrix",
    "solve_max_min_lp",
    "water_filling_allocation",
]
