"""Gavel's heterogeneity-aware allocation-matrix policy.

Translates a set of active jobs plus cluster capacities into the max-min
LP of :mod:`repro.baselines.gavel.solver` and back.  The returned
:class:`AllocationMatrix` maps each (job, GPU type) to the optimal
fraction of time the job should spend training on that type — Gavel's
``Y`` matrix, the quantity its round-based scheduler chases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.gavel.solver import (
    solve_max_min_lp,
    solve_max_sum_lp,
    water_filling_allocation,
)
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = ["AllocationMatrix", "max_min_allocation_matrix"]


@dataclass(frozen=True)
class AllocationMatrix:
    """The optimal time-fraction matrix ``Y`` for one set of active jobs."""

    job_ids: tuple[int, ...]
    types: tuple[str, ...]
    values: np.ndarray  # len(job_ids) × len(types)

    def fraction(self, job_id: int, type_name: str) -> float:
        try:
            j = self.job_ids.index(job_id)
            r = self.types.index(type_name)
        except ValueError:
            return 0.0
        return float(self.values[j, r])

    def row(self, job_id: int) -> dict[str, float]:
        j = self.job_ids.index(job_id)
        return {t: float(self.values[j, r]) for r, t in enumerate(self.types)}


def max_min_allocation_matrix(
    jobs: Sequence[JobRuntime],
    types: Sequence[str],
    capacity: Mapping[str, int],
    matrix: ThroughputMatrix,
    *,
    solver: str = "lp",
    policy: str = "max-min",
) -> AllocationMatrix:
    """Solve Gavel's allocation policy for ``jobs``.

    ``solver`` is ``"lp"`` (exact, SciPy HiGHS) or ``"water-filling"``
    (the in-repo approximation, max-min only).  ``policy`` is
    ``"max-min"`` (LAS, the paper's comparison configuration) or
    ``"max-sum"`` (utilitarian total normalized throughput).
    """
    if solver not in {"lp", "water-filling"}:
        raise ValueError(f"unknown solver {solver!r}")
    if policy not in {"max-min", "max-sum"}:
        raise ValueError(f"unknown policy {policy!r}")
    if policy == "max-sum" and solver != "lp":
        raise ValueError("the max-sum policy requires the LP solver")
    types = tuple(types)
    job_ids = tuple(rt.job_id for rt in jobs)
    if not job_ids:
        return AllocationMatrix(job_ids=(), types=types, values=np.zeros((0, len(types))))

    raw = np.array(
        [[matrix.rate(rt.job.model.name, t) for t in types] for rt in jobs],
        dtype=float,
    )
    # Gang feasibility: a type with fewer devices than W_j can never host
    # the job's (single-type) gang, so its share must be zero — otherwise
    # the LP promises time the round-based realization can never deliver.
    for i, rt in enumerate(jobs):
        for r, t in enumerate(types):
            if capacity.get(t, 0) < rt.job.num_workers:
                raw[i, r] = 0.0
    best = raw.max(axis=1, keepdims=True)
    if np.any(best <= 0):
        bad = [job_ids[int(i)] for i in np.nonzero(best[:, 0] <= 0)[0]]
        raise ValueError(
            f"jobs {bad} cannot be placed on any single GPU type in {types} "
            f"(model unsupported or gang larger than every type's capacity)"
        )
    speeds = raw / best
    workers = np.array([rt.job.num_workers for rt in jobs], dtype=float)
    caps = np.array([capacity.get(t, 0) for t in types], dtype=float)

    if policy == "max-sum":
        values = solve_max_sum_lp(speeds, workers, caps)
    elif solver == "lp":
        values = solve_max_min_lp(speeds, workers, caps)
    else:
        values = water_filling_allocation(speeds, workers, caps)
    return AllocationMatrix(job_ids=job_ids, types=types, values=values)
