"""Solvers for Gavel's max-min allocation problem.

The optimization (Gavel §4.1, LAS/max-min policy):

    max   m
    s.t.  Σ_r Y[j,r] · s[j,r] ≥ m          ∀j   (normalized throughput)
          Σ_r Y[j,r]          ≤ 1          ∀j   (time-fraction budget)
          Σ_j Y[j,r] · W_j    ≤ C_r        ∀r   (type capacity)
          0 ≤ Y[j,r] ≤ 1

with ``s[j,r] = X[j,r] / max_r X[j,r]`` the job-normalized speed.

:func:`solve_max_min_lp` solves it exactly with SciPy's HiGHS backend.
:func:`water_filling_allocation` is an in-repo iterative approximation
(progressive filling): repeatedly give a small slice of the currently
most-deprived job's best remaining device type.  It needs no LP machinery
and serves as a fallback and as an independent cross-check in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "solve_max_min_lp",
    "solve_max_sum_lp",
    "water_filling_allocation",
    "min_scaled_throughput",
]


def _validate(speeds: np.ndarray, workers: np.ndarray, capacity: np.ndarray) -> None:
    if speeds.ndim != 2:
        raise ValueError("speeds must be a 2-D (jobs × types) array")
    num_jobs, num_types = speeds.shape
    if workers.shape != (num_jobs,):
        raise ValueError("workers must have one entry per job")
    if capacity.shape != (num_types,):
        raise ValueError("capacity must have one entry per type")
    if np.any(speeds < 0):
        raise ValueError("speeds must be non-negative")
    if np.any(workers <= 0):
        raise ValueError("workers must be positive")
    if np.any(capacity < 0):
        raise ValueError("capacity must be non-negative")
    if np.any(speeds.max(axis=1) <= 0):
        bad = np.nonzero(speeds.max(axis=1) <= 0)[0]
        raise ValueError(f"jobs {bad.tolist()} run on no device type")


def min_scaled_throughput(
    allocation: np.ndarray, speeds: np.ndarray
) -> float:
    """The max-min objective value of an allocation matrix."""
    return float(np.min(np.sum(allocation * speeds, axis=1)))


def solve_max_min_lp(
    speeds: np.ndarray,
    workers: np.ndarray,
    capacity: np.ndarray,
) -> np.ndarray:
    """Exact max-min allocation via ``scipy.optimize.linprog`` (HiGHS).

    Returns the ``jobs × types`` matrix ``Y`` of time fractions.
    """
    from scipy.optimize import linprog

    speeds = np.asarray(speeds, dtype=float)
    workers = np.asarray(workers, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    _validate(speeds, workers, capacity)
    num_jobs, num_types = speeds.shape
    n_y = num_jobs * num_types

    # Variables: [Y.flatten(), m]; objective: maximize m.
    c = np.zeros(n_y + 1)
    c[-1] = -1.0

    rows: list[np.ndarray] = []
    rhs: list[float] = []

    # m − Σ_r Y[j,r] s[j,r] ≤ 0  for every job.
    for j in range(num_jobs):
        row = np.zeros(n_y + 1)
        row[j * num_types : (j + 1) * num_types] = -speeds[j]
        row[-1] = 1.0
        rows.append(row)
        rhs.append(0.0)

    # Σ_r Y[j,r] ≤ 1 per job.
    for j in range(num_jobs):
        row = np.zeros(n_y + 1)
        row[j * num_types : (j + 1) * num_types] = 1.0
        rows.append(row)
        rhs.append(1.0)

    # Σ_j W_j Y[j,r] ≤ C_r per type.
    for r in range(num_types):
        row = np.zeros(n_y + 1)
        row[r::num_types][:num_jobs] = workers
        rows.append(row)
        rhs.append(float(capacity[r]))

    bounds = [(0.0, 1.0)] * n_y + [(0.0, None)]
    result = linprog(
        c,
        A_ub=np.vstack(rows),
        b_ub=np.asarray(rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS is reliable on this LP
        raise RuntimeError(f"Gavel LP failed: {result.message}")
    # HiGHS honours bounds only to its primal feasibility tolerance
    # (~1e-7); snap the solution back into the declared [0, 1] domain.
    return np.clip(result.x[:n_y], 0.0, 1.0).reshape(num_jobs, num_types)


def solve_max_sum_lp(
    speeds: np.ndarray,
    workers: np.ndarray,
    capacity: np.ndarray,
) -> np.ndarray:
    """Utilitarian variant: maximize the *sum* of normalized throughputs.

    Gavel's "maximize total throughput" policy family; trades fairness
    for aggregate progress.  Same constraint set as the max-min LP.
    """
    from scipy.optimize import linprog

    speeds = np.asarray(speeds, dtype=float)
    workers = np.asarray(workers, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    _validate(speeds, workers, capacity)
    num_jobs, num_types = speeds.shape
    n_y = num_jobs * num_types

    c = -speeds.flatten()  # maximize Σ Y·s

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for j in range(num_jobs):
        row = np.zeros(n_y)
        row[j * num_types : (j + 1) * num_types] = 1.0
        rows.append(row)
        rhs.append(1.0)
    for r in range(num_types):
        row = np.zeros(n_y)
        row[r::num_types][:num_jobs] = workers
        rows.append(row)
        rhs.append(float(capacity[r]))

    result = linprog(
        c,
        A_ub=np.vstack(rows),
        b_ub=np.asarray(rhs),
        bounds=[(0.0, 1.0)] * n_y,
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS is reliable on this LP
        raise RuntimeError(f"Gavel max-sum LP failed: {result.message}")
    return np.clip(result.x, 0.0, 1.0).reshape(num_jobs, num_types)


def water_filling_allocation(
    speeds: np.ndarray,
    workers: np.ndarray,
    capacity: np.ndarray,
    *,
    step: float = 0.01,
) -> np.ndarray:
    """Iterative progressive-filling approximation of the max-min LP.

    Each iteration grants the currently most-deprived job (smallest
    accumulated normalized throughput) a ``step``-sized slice of one
    device type that still has both capacity and job time-budget left.
    Types are tried in order of the job's **comparative advantage**
    ``s[j,r] / mean_j' s[j',r]`` rather than raw speed: a job that is
    merely *indifferent* between types leaves the contested fast type to
    the jobs that genuinely need it (the AlloX/Gavel matching intuition).
    Converges close to the LP optimum on the instances the cross-check
    tests exercise.
    """
    speeds = np.asarray(speeds, dtype=float)
    workers = np.asarray(workers, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    _validate(speeds, workers, capacity)
    if not 0 < step <= 1:
        raise ValueError("step must be in (0, 1]")

    num_jobs, num_types = speeds.shape
    y = np.zeros((num_jobs, num_types))
    budget = np.ones(num_jobs)  # remaining Σ_r Y[j,r] head-room
    cap = capacity.astype(float).copy()  # remaining worker-capacity per type

    # Type preference per job: comparative advantage first (deterministic
    # tie-break via stable sort).
    column_mean = speeds.mean(axis=0)
    advantage = speeds / np.where(column_mean > 0, column_mean, 1.0)
    pref = np.argsort(-advantage, axis=1, kind="stable")

    max_iters = int(np.ceil(num_jobs / step)) * num_types + num_jobs * num_types
    for _ in range(max_iters):
        scaled = np.sum(y * speeds, axis=1)
        # Most-deprived job that still has budget and a usable type with capacity.
        order = np.argsort(scaled, kind="stable")
        progressed = False
        for j in order:
            if budget[j] <= 1e-12:
                continue
            for r in pref[j]:
                if speeds[j, r] <= 0 or cap[r] <= 1e-12:
                    continue
                delta = min(step, budget[j], cap[r] / workers[j])
                if delta <= 1e-12:
                    continue
                y[j, r] += delta
                budget[j] -= delta
                cap[r] -= delta * workers[j]
                progressed = True
                break
            if progressed:
                break
        if not progressed:
            break
    return y
