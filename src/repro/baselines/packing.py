"""Gang-packing helpers shared by the baselines.

All baselines need to turn "give job j its ``W_j`` workers" into a
concrete :class:`~repro.cluster.allocation.Allocation` against the free
capacity.  Two flavours:

* :func:`pack_gang` — type-blind packing (Tiresias, YARN-CS): any free
  devices, preferring as few servers as possible (consolidation first),
  optionally restricted to device types the model supports;
* :func:`pack_gang_single_type` — Gavel's job-level constraint: all
  ``W_j`` workers on *one* device type, again on as few servers as
  possible.

Both return ``None`` when the gang cannot be packed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState

__all__ = ["pack_gang", "pack_gang_single_type"]


def _take_from_nodes(
    state: ClusterState,
    workers: int,
    allowed_types: Sequence[str],
    type_preference: dict[str, int],
) -> Optional[Allocation]:
    """Fill a gang node-by-node, fullest (w.r.t. allowed types) node first."""
    allowed = set(allowed_types)
    per_node: dict[int, list[tuple[str, int]]] = {}
    for (node_id, type_name), free in state.free_slots():
        if type_name in allowed:
            per_node.setdefault(node_id, []).append((type_name, free))
    if sum(f for slots in per_node.values() for _, f in slots) < workers:
        return None

    # Fullest node first consolidates the gang onto the fewest servers.
    node_order = sorted(
        per_node.items(),
        key=lambda item: (-sum(f for _, f in item[1]), item[0]),
    )
    need = workers
    picks: list[tuple[int, str, int]] = []
    for node_id, slots in node_order:
        slots.sort(key=lambda s: (type_preference.get(s[0], 0), s[0]))
        for type_name, free in slots:
            take = min(free, need)
            if take > 0:
                picks.append((node_id, type_name, take))
                need -= take
            if need == 0:
                break
        if need == 0:
            break
    if need:
        return None
    return Allocation.from_pairs(picks)


def pack_gang(
    state: ClusterState,
    workers: int,
    allowed_types: Optional[Sequence[str]] = None,
    preferred_types: Optional[Sequence[str]] = None,
) -> Optional[Allocation]:
    """Pack ``workers`` devices from the free capacity, type-blind.

    ``allowed_types`` restricts the device types considered (defaults to
    every type present).  ``preferred_types`` orders types within a node
    (earlier = taken first); the default order is alphabetical, i.e.
    genuinely heterogeneity-unaware.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if allowed_types is None:
        allowed_types = sorted({t for (_, t) in state.slots})
    preference = {t: i for i, t in enumerate(preferred_types or [])}
    return _take_from_nodes(state, workers, allowed_types, preference)


def pack_gang_single_type(
    state: ClusterState,
    workers: int,
    type_name: str,
) -> Optional[Allocation]:
    """Pack ``workers`` devices of exactly one type (Gavel's constraint)."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    return _take_from_nodes(state, workers, [type_name], {type_name: 0})
