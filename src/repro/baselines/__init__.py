"""Baseline schedulers the paper compares against.

* :mod:`repro.baselines.gavel` — Gavel (OSDI'20): job-level
  heterogeneity-aware allocation-matrix scheduling (the closest
  state of the art and the paper's main comparison);
* :mod:`repro.baselines.tiresias` — Tiresias (NSDI'19): discretized
  two-queue least-attained-service, heterogeneity-blind;
* :mod:`repro.baselines.yarn` — YARN-CS: the production capacity
  scheduler, FIFO and non-preemptive;
* :mod:`repro.baselines.random_sched` — a seeded random-packing
  scheduler used as a sanity floor in tests and ablations;
* :mod:`repro.baselines.packing` — shared gang-packing helpers.
"""

from repro.baselines.gavel import GavelConfig, GavelScheduler
from repro.baselines.packing import pack_gang, pack_gang_single_type
from repro.baselines.random_sched import RandomScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.baselines.tiresias import TiresiasConfig, TiresiasScheduler
from repro.baselines.yarn import YarnCapacityScheduler, YarnConfig

__all__ = [
    "GavelConfig",
    "GavelScheduler",
    "RandomScheduler",
    "SRTFScheduler",
    "TiresiasConfig",
    "TiresiasScheduler",
    "YarnCapacityScheduler",
    "YarnConfig",
    "pack_gang",
    "pack_gang_single_type",
]
