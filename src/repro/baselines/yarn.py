"""YARN-CS — the production capacity scheduler baseline.

Apache YARN's capacity scheduler, as configured in the paper's
comparison: a single queue, FIFO admission, **non-preemptive** — once a
job starts it holds its devices until completion.  Admission is
event-driven: whenever a job arrives or completes, queued jobs are
scanned in arrival order.

Two admission disciplines are provided:

* ``strict_fifo=False`` (default) — the capacity scheduler's concurrent-
  applications behaviour: every queued job that fits the free capacity
  is started, so small jobs flow around a large blocked head.  This is
  the charitable reading and yields the paper's "highest GPU
  utilization" shape;
* ``strict_fifo=True`` — head-of-line blocking: admission stops at the
  first job that does not fit, the behaviour of a FIFO queue with gang
  reservations.  JCTs degrade far more (toward the paper's 7-15×
  figures) at the cost of utilization; used by the ablation bench.

YARN-CS is heterogeneity-blind: gangs are packed from any free devices
(fullest server first), and mixed-type gangs run at the slowest member's
rate — the placement blindness that dominates its completion times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.packing import pack_gang
from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext

__all__ = ["YarnConfig", "YarnCapacityScheduler"]


@dataclass(frozen=True, slots=True)
class YarnConfig:
    """YARN-CS admission discipline selection."""

    strict_fifo: bool = False


class YarnCapacityScheduler(Scheduler):
    """FIFO, non-preemptive, event-driven capacity scheduler."""

    round_based = False
    reacts_to_events = True

    def __init__(self, config: Optional[YarnConfig] = None):
        self.config = config or YarnConfig()

    @property
    def name(self) -> str:
        return "yarn-cs"

    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        # Running jobs are never touched (non-preemptive).
        target: dict[int, Allocation] = {
            rt.job_id: rt.allocation for rt in ctx.running
        }
        state = ctx.occupied_state()
        for rt in sorted(ctx.waiting, key=lambda r: (r.job.arrival_time, r.job_id)):
            usable = [
                t for t in ctx.cluster.gpu_types
                if ctx.matrix.supports(rt.job.model.name, t)
            ]
            gang = pack_gang(state, rt.job.num_workers, allowed_types=usable)
            if gang is None:
                if self.config.strict_fifo:
                    break  # head-of-line blocking
                continue
            state.allocate(gang)
            target[rt.job_id] = gang
        return target
