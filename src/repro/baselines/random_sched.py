"""A seeded random-packing scheduler.

Not part of the paper's comparison — it is the sanity *floor* used by
tests and ablations: any scheduler worth its name should beat random
placement, and several engine invariants (gang, capacity, progress
conservation) are exercised against its arbitrary-but-valid decisions.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.baselines.packing import pack_gang
from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Shuffle the active jobs, pack gangs until capacity runs out."""

    round_based = True
    reacts_to_events = False

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        return "random"

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    # ---------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """The RNG stream position, so a restored run continues the exact
        shuffle sequence (``bit_generator.state`` is a JSON-able dict)."""
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._rng.bit_generator.state = state["rng"]

    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        active = list(ctx.active)
        if not active:
            return {}
        self._rng.shuffle(active)
        state = ctx.fresh_state()
        target: dict[int, Allocation] = {}
        for rt in active:
            usable = [
                t for t in ctx.cluster.gpu_types
                if ctx.matrix.supports(rt.job.model.name, t)
            ]
            if not usable:
                continue
            # Random per-job type preference keeps placements diverse.
            order = list(usable)
            self._rng.shuffle(order)
            gang = pack_gang(
                state, rt.job.num_workers, allowed_types=usable, preferred_types=order
            )
            if gang is None:
                continue
            state.allocate(gang)
            target[rt.job_id] = gang
        return target
