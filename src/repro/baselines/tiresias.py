"""Tiresias (NSDI'19) — discretized two-queue least-attained-service.

The paper's configuration: "Tiresias is configured with two priority
queues and its PromoteKnob disabled".  Jobs start in the high-priority
queue; once a job's *attained service* (GPU-seconds received) crosses the
queue threshold it is demoted to the low-priority queue for the rest of
its life (no promotion back — the disabled knob).  Within a queue jobs
are served FIFO by arrival.  Scheduling is preemptive and round-based.

Like Gavel, Tiresias places each gang on a single device type (the paper:
"Tiresias also suffers from the same limitation as Gavel" — heterogeneous
spare GPUs stay idle even when their total count would satisfy a queued
job) but, being heterogeneity-blind, it picks the type by availability
rather than by measured speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.packing import pack_gang_single_type
from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext
from repro.sim.progress import JobRuntime

__all__ = ["TiresiasConfig", "TiresiasScheduler"]


@dataclass(frozen=True, slots=True)
class TiresiasConfig:
    """Tiresias knobs.

    ``queue_threshold_gpu_s`` is the attained-service boundary between
    the two discretized queues (the paper's setup uses coarse GPU-time
    thresholds; one GPU-hour separates the short-job queue from the
    rest of our S/M/L/XL mix).
    """

    queue_threshold_gpu_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.queue_threshold_gpu_s <= 0:
            raise ValueError("queue_threshold_gpu_s must be positive")


class TiresiasScheduler(Scheduler):
    """Two-queue discretized LAS, PromoteKnob disabled."""

    round_based = True
    reacts_to_events = False

    def __init__(self, config: Optional[TiresiasConfig] = None):
        self.config = config or TiresiasConfig()
        self._demoted: set[int] = set()
        self.last_round_stats: dict[str, int] = {}
        """Per-round counters (demotions, queue depths, admissions) the
        engine aggregates into ``SimulationResult.hotpath_stats`` and the
        metrics registry — the baseline's side of the uniform
        instrumentation surface Hadar's round context publishes."""

    @property
    def name(self) -> str:
        return "tiresias"

    def reset(self) -> None:
        self._demoted.clear()
        self.last_round_stats = {}

    # ---------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """The one-way demoted set (``last_round_stats`` is a per-round
        transient, waived from snapshots)."""
        return {"demoted": sorted(self._demoted)}

    def load_state_dict(self, state: dict) -> None:
        self._demoted = {int(job_id) for job_id in state["demoted"]}

    @property
    def demoted_jobs(self) -> frozenset[int]:
        """Jobs currently in the low-priority queue (introspection surface
        for :class:`~repro.analysis.sanitizer.InvariantSanitizer`)."""
        return frozenset(self._demoted)

    @property
    def queue_threshold(self) -> float:
        """The attained-service boundary between the two queues."""
        return self.config.queue_threshold_gpu_s

    # ------------------------------------------------------------------ API --
    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        active = list(ctx.active)
        if not active:
            self.last_round_stats = {}
            return {}

        # Demotion is one-way: once over the threshold, always low queue.
        demotions = 0
        for rt in active:
            if (
                rt.attained_service >= self.config.queue_threshold_gpu_s
                and rt.job_id not in self._demoted
            ):
                self._demoted.add(rt.job_id)
                demotions += 1

        def queue_index(rt: JobRuntime) -> int:
            return 1 if rt.job_id in self._demoted else 0

        # Queue 0 first; FIFO by arrival within a queue.
        active.sort(key=lambda rt: (queue_index(rt), rt.job.arrival_time, rt.job_id))

        state = ctx.fresh_state()
        target: dict[int, Allocation] = {}
        for rt in active:
            gang = self._pack_single_type(ctx, state, rt)
            if gang is None:
                continue
            state.allocate(gang)
            target[rt.job_id] = gang
        self.last_round_stats = {
            "jobs_considered": len(active),
            "jobs_admitted": len(target),
            "demotions": demotions,
        }
        return target

    def _pack_single_type(self, ctx, state, rt) -> Allocation | None:
        """A homogeneous gang on whichever type has the most free devices.

        Tiresias predates heterogeneous scheduling: like Gavel it places a
        gang on a single device type ("Tiresias also suffers from the same
        limitation", Sec. IV-A-2), but it picks the type by *availability*,
        not speed — it is heterogeneity-blind.
        """
        best: Allocation | None = None
        best_free = -1
        free_by_type = state.free_by_type()
        for type_name in sorted(ctx.cluster.gpu_types):
            if not ctx.matrix.supports(rt.job.model.name, type_name):
                continue
            free = free_by_type.get(type_name, 0)
            if free < rt.job.num_workers or free <= best_free:
                continue
            gang = pack_gang_single_type(state, rt.job.num_workers, type_name)
            if gang is not None:
                best = gang
                best_free = free
        return best
