"""SRTF — a heterogeneity-aware shortest-remaining-time-first strawman.

Not in the paper's lineup; included as an extension baseline that
separates Hadar's two advantages.  SRTF shares Hadar's *ordering* (it
serves the jobs with the least remaining ideal runtime first, which
minimizes average JCT under preemption) and is heterogeneity-aware in
*placement* (fastest usable type first), but it lacks the dual-price
machinery and only mixes types within the fastest-first greedy fill.
Comparing Hadar against SRTF in the ablation bench isolates what the
primal-dual pricing and DP contribute beyond plain SRPT.
"""

from __future__ import annotations

from typing import Mapping

from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext
from repro.sim.progress import JobRuntime

__all__ = ["SRTFScheduler"]


class SRTFScheduler(Scheduler):
    """Preemptive shortest-remaining-first with fastest-type-first packing."""

    round_based = True
    reacts_to_events = False

    @property
    def name(self) -> str:
        return "srtf"

    def _remaining_ideal(self, rt: JobRuntime, ctx: SchedulerContext) -> float:
        rate = ctx.matrix.max_rate(rt.job.model.name, candidates=ctx.cluster.gpu_types)
        return rt.remaining_iterations / (rt.job.num_workers * rate)

    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        active = sorted(
            ctx.active,
            key=lambda rt: (self._remaining_ideal(rt, ctx), rt.job_id),
        )
        state = ctx.fresh_state()
        target: dict[int, Allocation] = {}
        for rt in active:
            model = rt.job.model.name
            usable = sorted(
                (t for t in ctx.cluster.gpu_types if ctx.matrix.supports(model, t)),
                key=lambda t: (-ctx.matrix.rate(model, t), t),
            )
            slots = [
                (node_id, type_name, free)
                for (node_id, type_name), free in state.free_slots()
                if type_name in usable
            ]
            slots.sort(key=lambda s: (usable.index(s[1]), s[0]))
            need = rt.job.num_workers
            picks: list[tuple[int, str, int]] = []
            for node_id, type_name, free in slots:
                take = min(free, need)
                if take:
                    picks.append((node_id, type_name, take))
                    need -= take
                if need == 0:
                    break
            if need:
                continue
            gang = Allocation.from_pairs(picks)
            state.allocate(gang)
            target[rt.job_id] = gang
        return target
