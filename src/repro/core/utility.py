"""Job utility functions ``U_j(·)``.

The paper's framework maximizes ``Σ_j U_j(f_j − a_j)`` for a pluggable,
non-negative utility.  The evaluation instantiates it with **effective
throughput** — "the average number of iterations completed per second
over the job's lifetime ... E_j N_j divided by j's completion time" —
aiming at minimizing average JCT.  Alternative objectives (Sec. III-A
"Expressing other scheduling policies") are expressed by swapping the
utility: makespan minimization and finish-time fairness are built in.

Two evaluation entry points:

* :meth:`Utility.value` — the paper's pure form ``U_j(jct)`` over the
  immutable job spec;
* :meth:`Utility.value_for` — the online form the scheduler actually
  calls, which additionally sees the job's runtime state (progress, age).
  The default delegates to :meth:`value`; the makespan and fairness
  utilities override it, because "how much this job matters right now"
  depends on remaining work and accumulated slowdown.

Within one job, a utility must be non-increasing in the candidate's
estimated JCT (so the payoff comparison prefers faster placements);
across jobs it is free to weight however the objective demands.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.workload.job import Job
from repro.workload.throughput import ThroughputMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.progress import JobRuntime

__all__ = [
    "Utility",
    "EffectiveThroughputUtility",
    "NormalizedThroughputUtility",
    "MakespanUtility",
    "FinishTimeFairnessUtility",
]


class Utility(ABC):
    """Interface: the value of completing ``job`` with the given JCT."""

    @abstractmethod
    def value(self, job: Job, jct: float) -> float:
        """``U_j(jct)``; non-negative, non-increasing in ``jct`` per job."""

    def value_for(self, rt: "JobRuntime", jct: float, now: float) -> float:
        """Online form with runtime state; defaults to :meth:`value`."""
        return self.value(rt.job, jct)

    def __call__(self, job: Job, jct: float) -> float:
        if jct <= 0:
            raise ValueError(f"jct must be positive, got {jct}")
        v = self.value(job, jct)
        if v < 0:
            raise ValueError(f"{type(self).__name__} returned negative utility {v}")
        return v


@dataclass(frozen=True, slots=True)
class EffectiveThroughputUtility(Utility):
    """The paper's stated form: ``U_j = E_j N_j / jct`` (iterations/second).

    Caveat: raw iteration counts are incomparable across models (a
    ResNet-18 iteration is ~8× cheaper than a ResNet-50 one), so with a
    mixed model zoo this utility ranks jobs by their model's device speed
    rather than by any scheduling-relevant quantity.  The reproduction's
    default is :class:`NormalizedThroughputUtility`; this raw form is kept
    for the utility-ablation benchmark.

    ``weight`` lets callers express per-job priorities without changing
    the shape.
    """

    weight: float = 1.0

    def value(self, job: Job, jct: float) -> float:
        return self.weight * job.total_iterations / jct


@dataclass(frozen=True, slots=True)
class NormalizedThroughputUtility(Utility):
    """Work-normalized effective throughput — the reproduction's default.

    Effective throughput divided by the job's per-worker work:
    ``U_j = (E_j N_j / jct) / (E_j N_j / W_j) = W_j / jct`` — the job's
    gang size per second of completion time, a dimensionless "fraction of
    ideal progress" that is comparable across models.  Its payoff
    *density* (utility per requested worker) is ``1/jct``: under
    contention the dual subroutine admits the jobs with the smallest
    estimated completion time first — the shortest-remaining-first
    discipline that minimizes average JCT, which is exactly what the
    paper says this utility is "aiming at".

    ``weight`` scales all values uniformly (cancels against the price
    calibration; exposed for custom per-job priority schemes).
    """

    weight: float = 1.0

    def value(self, job: Job, jct: float) -> float:
        return self.weight * job.num_workers / jct


@dataclass(frozen=True)
class MakespanUtility(Utility):
    """Expresses ``min max_j f_j``.

    Classic makespan scheduling starts the *longest* remaining work
    first (LPT) so no giant job is left to run alone at the end.  The
    utility therefore weights each job by its remaining ideal runtime
    ``t_rem = remaining_iters / (W_j · max_r X_j^r)``:

        ``U_j = scale · W_j · t_rem² / jct``

    Per job it decays with the candidate's estimated JCT (fast placements
    win); across jobs the payoff density ``∝ t_rem²/jct ≈ t_rem`` ranks
    longest-remaining first.
    """

    matrix: ThroughputMatrix
    scale: float = 1.0

    def _t_ideal(self, job: Job, remaining_iters: float) -> float:
        rate = self.matrix.max_rate(job.model.name)
        return max(remaining_iters, 1.0) / (job.num_workers * rate)

    def value(self, job: Job, jct: float) -> float:
        t = self._t_ideal(job, job.total_iterations)
        return self.scale * job.num_workers * t * t / jct

    def value_for(self, rt: "JobRuntime", jct: float, now: float) -> float:
        t = self._t_ideal(rt.job, rt.remaining_iterations)
        return self.scale * rt.job.num_workers * t * t / jct


@dataclass(frozen=True)
class FinishTimeFairnessUtility(Utility):
    """Expresses Themis-style finish-time fairness.

    FTF ``ρ_j = jct / t_j^isolated`` compares the shared-cluster JCT
    against the job's finish time on a ``1/n`` cluster share.  Minimizing
    ``max_j ρ_j`` means always helping the currently most-drifted job, so
    the online utility weights by the job's *projected drift* at its best
    remaining speed — a starved job's weight grows every round it waits:

        ``U_j = scale · W_j · ρ_now · (t_iso / jct)``

    where ``ρ_now = (age + t_rem_ideal) / t_iso``.  Per job it remains
    decreasing in ``jct`` (fast placements win); across jobs the payoff
    density tracks drift, yielding max-min behaviour on ρ.

    ``isolated_share`` approximates the 1/n share's size.
    """

    matrix: ThroughputMatrix
    isolated_share: float = 0.1
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.isolated_share <= 1:
            raise ValueError("isolated_share must be in (0, 1]")

    def isolated_duration(self, job: Job) -> float:
        """Estimated runtime on an isolated 1/n slice of the cluster.

        The slice is assumed to grant ``max(1, W_j × share)`` workers of
        the job's best type; data-parallel scaling is linear in the
        paper's progress model.
        """
        workers = max(1.0, job.num_workers * self.isolated_share)
        rate = self.matrix.max_rate(job.model.name)
        return job.total_iterations / (workers * rate)

    def value(self, job: Job, jct: float) -> float:
        t_iso = max(self.isolated_duration(job), 1e-9)
        return self.scale * job.num_workers * t_iso / jct

    def value_for(self, rt: "JobRuntime", jct: float, now: float) -> float:
        job = rt.job
        t_iso = max(self.isolated_duration(job), 1e-9)
        rate = self.matrix.max_rate(job.model.name)
        t_rem_ideal = rt.remaining_iterations / (job.num_workers * rate)
        age = max(now - job.arrival_time, 0.0)
        rho_now = max((age + t_rem_ideal) / t_iso, 1e-9)
        return self.scale * job.num_workers * rho_now * t_iso / jct
