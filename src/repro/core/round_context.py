"""Round-scoped allocation engine context.

Hadar's ``DP_allocation`` re-enters ``FIND_ALLOC`` at every branch of the
allocate/skip recursion, and the greedy fallback re-walks the whole queue
twice more — yet almost everything those calls compute is frozen for the
duration of one scheduling round: the price bounds, the per-model rate
vectors, the slot universe, and the reallocation-delay estimate.  A
:class:`RoundContext` is constructed **once per round** and shared by
every ``find_alloc`` call in that round.  It provides

* frozen per-round lookup tables — per-model rate vectors
  (:meth:`rates_for`), the fastest-first usable-type order driving the
  bottleneck tiers (:meth:`usable_desc`), and per-``(model, node)``
  fastest-first slot orderings (:meth:`node_fast_order`);
* **incremental pricing** — Eq. (5)'s price is a pure function of a
  slot's committed fraction, so :meth:`price` memoizes it per
  ``(slot, free count)``; an ``allocate()``/``release()`` on a branch
  state implicitly "invalidates" only the touched slots because their
  free counts (the cache key) change;
* **candidate memoization** — a costed gang's payoff depends only on the
  picks and the free counts of the picked slots, so evaluations are
  shared across every ``find_alloc`` call in the round
  (:meth:`candidate_memo`);
* a **result cache** keyed on ``(job_id, state.key())`` used by
  :func:`repro.core.find_alloc.cached_find_alloc`, so different DP branch
  orders reaching the same free-capacity vector reuse the full search;
* instrumentation counters (:class:`RoundStats`) consumed by
  ``benchmarks/record_bench.py`` and surfaced per simulation through
  :attr:`repro.sim.engine.SimulationResult.hotpath_stats`.

Construct with ``caching=False`` for the **reference mode**: the same
search code runs with every cache layer disabled, reproducing the
pre-context per-call behaviour (the golden-parity suite in
``tests/core/test_hotpath_parity.py`` proves both modes emit
byte-identical schedules).

The caches assume what the rest of the round machinery already assumes:
``prices``, ``now``, every job's runtime snapshot, and the
``delay_estimator``'s output for a given job are frozen while the context
lives.  All shipped :class:`~repro.sim.checkpoint.CheckpointModel`
estimators depend only on the job and whether the gang moves, matching
``find_alloc``'s long-standing "one move delay per call" shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.state import ClusterState
    from repro.core.find_alloc import DelayEstimator
    from repro.core.pricing import PriceBook
    from repro.core.utility import Utility
    from repro.sim.progress import JobRuntime
    from repro.workload.throughput import ThroughputMatrix

__all__ = ["RoundContext", "RoundStats"]

_MISS = object()
"""Sentinel distinguishing 'not cached' from a cached ``None`` result."""


@dataclass
class RoundStats:
    """Hot-path instrumentation counters for one scheduling round.

    ``find_alloc_calls`` counts logical requests; ``find_alloc_runs`` the
    full candidate searches actually executed (calls minus result-cache
    hits).  ``candidate_evals`` counts cold gang costings — the quantity
    the ISSUE's ≥3× reduction target is measured on — and
    ``price_evals`` cold Eq. (5) evaluations.
    """

    find_alloc_calls: int = 0
    find_alloc_runs: int = 0
    result_hits: int = 0
    candidate_evals: int = 0
    candidate_hits: int = 0
    price_evals: int = 0
    price_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "find_alloc_calls": self.find_alloc_calls,
            "find_alloc_runs": self.find_alloc_runs,
            "result_hits": self.result_hits,
            "candidate_evals": self.candidate_evals,
            "candidate_hits": self.candidate_hits,
            "price_evals": self.price_evals,
            "price_hits": self.price_hits,
        }

    def merge(self, other: "RoundStats") -> None:
        self.find_alloc_calls += other.find_alloc_calls
        self.find_alloc_runs += other.find_alloc_runs
        self.result_hits += other.result_hits
        self.candidate_evals += other.candidate_evals
        self.candidate_hits += other.candidate_hits
        self.price_evals += other.price_evals
        self.price_hits += other.price_hits


class RoundContext:
    """Shared per-round lookup tables and caches (see the module docstring)."""

    __slots__ = (
        "prices",
        "matrix",
        "cluster",
        "utility",
        "now",
        "delay_estimator",
        "caching",
        "stats",
        "_caps",
        "_types",
        "_price_cache",
        "_rates",
        "_usable",
        "_node_types",
        "_node_fast",
        "_move_delay",
        "_results",
        "_cand_memo",
    )

    def __init__(
        self,
        *,
        prices: "PriceBook",
        matrix: "ThroughputMatrix",
        cluster: "Cluster",
        utility: "Utility",
        now: float,
        delay_estimator: "DelayEstimator",
        state: "ClusterState",
        caching: bool = True,
    ):
        self.prices = prices
        self.matrix = matrix
        self.cluster = cluster
        self.utility = utility
        self.now = now
        self.delay_estimator = delay_estimator
        self.caching = caching
        self.stats = RoundStats()
        # The slot universe (and each slot's capacity) is immutable for the
        # round; only free counts move, and they arrive as explicit args.
        self._caps: dict[tuple[int, str], int] = {
            slot: state.capacity(*slot) for slot in state.slots
        }
        self._types: tuple[str, ...] = tuple(
            sorted({t for (_, t) in self._caps})
        )
        self._node_types: dict[int, list[str]] = {}
        for node_id, type_name in self._caps:
            self._node_types.setdefault(node_id, []).append(type_name)
        self._price_cache: dict[tuple[tuple[int, str], int], float] = {}
        self._rates: dict[str, dict[str, float]] = {}
        self._usable: dict[str, tuple[str, ...]] = {}
        self._node_fast: dict[str, dict[int, tuple[str, ...]]] = {}
        self._move_delay: dict[int, float] = {}
        self._results: dict[tuple[int, tuple[int, ...]], Any] = {}
        self._cand_memo: dict[int, dict] = {}

    # -- incremental pricing ------------------------------------------------
    def price(self, slot: tuple[int, str], free: int) -> float:
        """Eq. (5) price of ``slot`` at ``free`` unclaimed devices.

        Memoized per ``(slot, free)`` when caching: a branch state's
        ``allocate``/``release`` only changes the free counts of the slots
        it touches, so untouched slots keep hitting their cached entries.
        """
        if not self.caching:
            self.stats.price_evals += 1
            return self.prices.price_given(slot[1], self._caps.get(slot, 0), free)
        key = (slot, free)
        hit = self._price_cache.get(key)
        if hit is not None:
            self.stats.price_hits += 1
            return hit
        self.stats.price_evals += 1
        value = self.prices.price_given(slot[1], self._caps.get(slot, 0), free)
        self._price_cache[key] = value
        return value

    # -- frozen per-model tables --------------------------------------------
    def rates_for(self, model: str) -> dict[str, float]:
        """Per-worker rate of ``model`` on every GPU type in the cluster."""
        table = self._rates.get(model)
        if table is None:
            rate = self.matrix.rate
            table = {t: rate(model, t) for t in self._types}
            self._rates[model] = table
        return table

    def usable_desc(self, model: str) -> tuple[str, ...]:
        """Usable types fastest-first (the bottleneck-tier order)."""
        order = self._usable.get(model)
        if order is None:
            rates = self.rates_for(model)
            order = tuple(
                sorted((t for t, r in rates.items() if r > 0.0),
                       key=lambda t: (-rates[t], t))
            )
            self._usable[model] = order
        return order

    def node_fast_order(self, model: str) -> dict[int, tuple[str, ...]]:
        """Per-node usable types fastest-first (consolidated candidates).

        Filtering this frozen order down to a branch state's free slots
        yields exactly what sorting those free slots per call would —
        type names break rate ties, so the key is a total order.
        """
        per_node = self._node_fast.get(model)
        if per_node is None:
            rates = self.rates_for(model)
            per_node = {
                node_id: tuple(
                    sorted((t for t in types if rates[t] > 0.0),
                           key=lambda t: (-rates[t], t))
                )
                for node_id, types in self._node_types.items()
            }
            self._node_fast[model] = per_node
        return per_node

    # -- move-delay sharing ---------------------------------------------------
    def move_delay_for(self, rt: "JobRuntime", picks) -> float:
        """The reallocation pause charged to non-current candidates.

        ``find_alloc`` has always charged one delay per call (estimators
        are constant across target gangs for a fixed job); caching per
        job extends the same value to every call in the round.
        """
        from repro.cluster.allocation import Allocation

        if not self.caching:
            return self.delay_estimator(rt, Allocation.from_pairs(picks))
        delay = self._move_delay.get(rt.job_id)
        if delay is None:
            delay = self.delay_estimator(rt, Allocation.from_pairs(picks))
            self._move_delay[rt.job_id] = delay
        return delay

    # -- cache layers ---------------------------------------------------------
    def candidate_memo(self, job_id: int) -> Optional[dict]:
        """The job's candidate-evaluation memo, or ``None`` when disabled."""
        if not self.caching:
            return None
        memo = self._cand_memo.get(job_id)
        if memo is None:
            memo = self._cand_memo[job_id] = {}
        return memo

    def result_get(self, job_id: int, state_key: tuple[int, ...]):
        """Cached full-search result, or the module sentinel on a miss."""
        if not self.caching:
            return _MISS
        return self._results.get((job_id, state_key), _MISS)

    def result_put(self, job_id: int, state_key: tuple[int, ...], value) -> None:
        if self.caching:
            self._results[(job_id, state_key)] = value
