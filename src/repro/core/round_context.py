"""Round-scoped allocation engine context.

Hadar's ``DP_allocation`` re-enters ``FIND_ALLOC`` at every branch of the
allocate/skip recursion, and the greedy fallback re-walks the whole queue
twice more — yet almost everything those calls compute is frozen for the
duration of one scheduling round: the price bounds, the per-model rate
vectors, the slot universe, and the reallocation-delay estimate.  A
:class:`RoundContext` is constructed **once per round** and shared by
every ``find_alloc`` call in that round.  It provides

* frozen per-round lookup tables — per-model rate vectors
  (:meth:`rates_for`), the fastest-first usable-type order driving the
  bottleneck tiers (:meth:`usable_desc`), and per-``(model, node)``
  fastest-first slot orderings (:meth:`node_fast_order`);
* **incremental pricing** — Eq. (5)'s price is a pure function of a
  slot's committed fraction, so :meth:`price` memoizes it per
  ``(slot, free count)``; an ``allocate()``/``release()`` on a branch
  state implicitly "invalidates" only the touched slots because their
  free counts (the cache key) change;
* **candidate memoization** — a costed gang's payoff depends only on the
  picks and the free counts of the picked slots, so evaluations are
  shared across every ``find_alloc`` call in the round
  (:meth:`candidate_memo`);
* a **result cache** keyed on ``(job_id, state.key())`` used by
  :func:`repro.core.find_alloc.cached_find_alloc`, so different DP branch
  orders reaching the same free-capacity vector reuse the full search;
* instrumentation counters (:class:`RoundStats`) consumed by
  ``benchmarks/record_bench.py`` and surfaced per simulation through
  :attr:`repro.sim.engine.SimulationResult.hotpath_stats`.

Construct with ``caching=False`` for the **reference mode**: the same
search code runs with every cache layer disabled, reproducing the
pre-context per-call behaviour (the golden-parity suite in
``tests/core/test_hotpath_parity.py`` proves both modes emit
byte-identical schedules).

The caches assume what the rest of the round machinery already assumes:
``prices``, ``now``, every job's runtime snapshot, and the
``delay_estimator``'s output for a given job are frozen while the context
lives.  All shipped :class:`~repro.sim.checkpoint.CheckpointModel`
estimators depend only on the job and whether the gang moves, matching
``find_alloc``'s long-standing "one move delay per call" shortcut.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.state import ClusterState
    from repro.core.find_alloc import DelayEstimator
    from repro.core.pricing import PriceBook
    from repro.core.utility import Utility
    from repro.sim.progress import JobRuntime
    from repro.workload.throughput import ThroughputMatrix

__all__ = ["RoundContext", "RoundStats"]

_MISS = object()
"""Sentinel distinguishing 'not cached' from a cached ``None`` result."""


@dataclass
class RoundStats:
    """Hot-path instrumentation counters for one scheduling round.

    ``find_alloc_calls`` counts logical requests; ``find_alloc_runs`` the
    full candidate searches actually executed (calls minus result-cache
    hits).  ``candidate_evals`` counts cold gang costings — the quantity
    the ≥3× reduction target is measured on — and ``price_evals`` cold
    Eq. (5) evaluations.  ``generation_runs``/``generation_hits`` track
    the shared candidate-generation cache (one generation per
    ``(model, gang size, free-capacity vector)``), ``physics_evals``/
    ``physics_hits`` the job-independent gang-physics layer (bottleneck
    rate, comm penalty, price cost), and ``calib_jobs``/``calib_dirty``
    the incremental price calibration's dirty set (jobs seen vs. jobs
    whose Eq. (8) record had to be recomputed).
    """

    find_alloc_calls: int = 0
    find_alloc_runs: int = 0
    result_hits: int = 0
    candidate_evals: int = 0
    candidate_hits: int = 0
    price_evals: int = 0
    price_hits: int = 0
    generation_runs: int = 0
    generation_hits: int = 0
    physics_evals: int = 0
    physics_hits: int = 0
    calib_jobs: int = 0
    calib_dirty: int = 0
    deadline_hits: int = 0
    """Exact DP searches abandoned at ``DPConfig.decision_deadline_s``
    (each one fell back to the payoff-density greedy)."""

    def as_dict(self) -> dict[str, int]:
        return {
            "find_alloc_calls": self.find_alloc_calls,
            "find_alloc_runs": self.find_alloc_runs,
            "result_hits": self.result_hits,
            "candidate_evals": self.candidate_evals,
            "candidate_hits": self.candidate_hits,
            "price_evals": self.price_evals,
            "price_hits": self.price_hits,
            "generation_runs": self.generation_runs,
            "generation_hits": self.generation_hits,
            "physics_evals": self.physics_evals,
            "physics_hits": self.physics_hits,
            "calib_jobs": self.calib_jobs,
            "calib_dirty": self.calib_dirty,
            "deadline_hits": self.deadline_hits,
        }

    def merge(self, other: "RoundStats") -> None:
        self.find_alloc_calls += other.find_alloc_calls
        self.find_alloc_runs += other.find_alloc_runs
        self.result_hits += other.result_hits
        self.candidate_evals += other.candidate_evals
        self.candidate_hits += other.candidate_hits
        self.price_evals += other.price_evals
        self.price_hits += other.price_hits
        self.generation_runs += other.generation_runs
        self.generation_hits += other.generation_hits
        self.physics_evals += other.physics_evals
        self.physics_hits += other.physics_hits
        self.calib_jobs += other.calib_jobs
        self.calib_dirty += other.calib_dirty
        self.deadline_hits += other.deadline_hits


class RoundContext:
    """Shared per-round lookup tables and caches (see the module docstring)."""

    __slots__ = (
        "prices",
        "matrix",
        "cluster",
        "utility",
        "now",
        "delay_estimator",
        "caching",
        "stats",
        "_caps",
        "_types",
        "_price_cache",
        "_rates",
        "_usable",
        "_node_types",
        "_node_fast",
        "_move_delay",
        "_results",
        "_cand_memo",
        "_gen_cache",
        "_phys_memo",
        "_usable_set",
        "_node_cache",
        "_node_picks",
        "_rate_rank",
        "_xserver",
    )

    def __init__(
        self,
        *,
        prices: "PriceBook",
        matrix: "ThroughputMatrix",
        cluster: "Cluster",
        utility: "Utility",
        now: float,
        delay_estimator: "DelayEstimator",
        state: "ClusterState",
        caching: bool = True,
    ):
        self.prices = prices
        self.matrix = matrix
        self.cluster = cluster
        self.utility = utility
        self.now = now
        self.delay_estimator = delay_estimator
        self.caching = caching
        self.stats = RoundStats()
        # The slot universe (and each slot's capacity) is immutable for the
        # round; only free counts move, and they arrive as explicit args.
        self._caps: dict[tuple[int, str], int] = {
            slot: state.capacity(*slot) for slot in state.slots
        }
        self._types: tuple[str, ...] = tuple(
            sorted({t for (_, t) in self._caps})
        )
        self._node_types: dict[int, list[str]] = {}
        for node_id, type_name in self._caps:
            self._node_types.setdefault(node_id, []).append(type_name)
        self._price_cache: dict[tuple[tuple[int, str], int], float] = {}
        self._rates: dict[str, dict[str, float]] = {}
        self._usable: dict[str, tuple[str, ...]] = {}
        self._node_fast: dict[str, dict[int, tuple[str, ...]]] = {}
        self._move_delay: dict[int, float] = {}
        self._results: dict[tuple[int, tuple[int, ...]], Any] = {}
        self._cand_memo: dict[int, dict] = {}
        self._gen_cache: dict[tuple, tuple] = {}
        self._phys_memo: dict[tuple[str, int], dict] = {}
        self._usable_set: dict[str, frozenset[str]] = {}
        self._node_cache: dict[tuple, tuple] = {}
        self._node_picks: dict[tuple, tuple] = {}
        self._rate_rank: dict[str, tuple[dict[str, int], tuple[int, ...]]] = {}
        self._xserver: dict[tuple, tuple] = {}

    # -- instrumentation ------------------------------------------------------
    @contextmanager
    def suspend_stats(self) -> Iterator[None]:
        """Swap in throwaway counters for the duration of the block.

        Diagnostics passes (the decision tracer's post-decision
        ``explain_alloc`` re-derivations) read the round's caches without
        perturbing the :class:`RoundStats` the benchmarks and traces
        report — the hot-path counters must describe the *decision*, not
        the explanation of it.  Cache contents written inside the block
        persist; every entry is value-preserving, so that is invisible.
        """
        saved = self.stats
        self.stats = RoundStats()
        try:
            yield
        finally:
            self.stats = saved

    # -- incremental pricing ------------------------------------------------
    def price(self, slot: tuple[int, str], free: int) -> float:
        """Eq. (5) price of ``slot`` at ``free`` unclaimed devices.

        Memoized per ``(slot, free)`` when caching: a branch state's
        ``allocate``/``release`` only changes the free counts of the slots
        it touches, so untouched slots keep hitting their cached entries.
        """
        if not self.caching:
            self.stats.price_evals += 1
            return self.prices.price_given(slot[1], self._caps.get(slot, 0), free)
        key = (slot, free)
        hit = self._price_cache.get(key)
        if hit is not None:
            self.stats.price_hits += 1
            return hit
        self.stats.price_evals += 1
        value = self.prices.price_given(slot[1], self._caps.get(slot, 0), free)
        self._price_cache[key] = value
        return value

    # -- frozen per-model tables --------------------------------------------
    def rates_for(self, model: str) -> dict[str, float]:
        """Per-worker rate of ``model`` on every GPU type in the cluster."""
        table = self._rates.get(model)
        if table is None:
            rate = self.matrix.rate
            table = {t: rate(model, t) for t in self._types}
            self._rates[model] = table
        return table

    def usable_desc(self, model: str) -> tuple[str, ...]:
        """Usable types fastest-first (the bottleneck-tier order)."""
        order = self._usable.get(model)
        if order is None:
            rates = self.rates_for(model)
            order = tuple(
                sorted((t for t, r in rates.items() if r > 0.0),
                       key=lambda t: (-rates[t], t))
            )
            self._usable[model] = order
        return order

    def node_fast_order(self, model: str) -> dict[int, tuple[str, ...]]:
        """Per-node usable types fastest-first (consolidated candidates).

        Filtering this frozen order down to a branch state's free slots
        yields exactly what sorting those free slots per call would —
        type names break rate ties, so the key is a total order.
        """
        per_node = self._node_fast.get(model)
        if per_node is None:
            rates = self.rates_for(model)
            per_node = {
                node_id: tuple(
                    sorted((t for t in types if rates[t] > 0.0),
                           key=lambda t: (-rates[t], t))
                )
                for node_id, types in self._node_types.items()
            }
            self._node_fast[model] = per_node
        return per_node

    # -- move-delay sharing ---------------------------------------------------
    def move_delay_for(self, rt: "JobRuntime", picks) -> float:
        """The reallocation pause charged to non-current candidates.

        ``find_alloc`` has always charged one delay per call (estimators
        are constant across target gangs for a fixed job); caching per
        job extends the same value to every call in the round.
        """
        from repro.cluster.allocation import Allocation

        if not self.caching:
            return self.delay_estimator(rt, Allocation.from_pairs(picks))
        delay = self._move_delay.get(rt.job_id)
        if delay is None:
            delay = self.delay_estimator(rt, Allocation.from_pairs(picks))
            self._move_delay[rt.job_id] = delay
        return delay

    # -- cache layers ---------------------------------------------------------
    def generation_get(self, shape: tuple, state_key: tuple[int, ...]):
        """Cached shared candidate generation, or the sentinel on a miss.

        Candidate *generation* (the consolidated and cross-server gang
        families of Algorithm 2, lines 24-25) reads the model's rates only
        through order comparisons — the usable-type order and its rate-tie
        structure (:meth:`rate_rank`) — plus the gang size, the free
        vector, and the round-frozen prices; never the job's identity or
        the rate *values*.  ``shape`` is ``(usable_desc, rank_sig, W)``,
        so even different models share one generation per reachable state
        when their type orders agree.  Callers must only use this in
        caching mode.
        """
        return self._gen_cache.get((shape, state_key), _MISS)

    def generation_put(
        self, shape: tuple, state_key: tuple[int, ...], value: tuple
    ) -> None:
        self._gen_cache[(shape, state_key)] = value

    def physics_memo(self, model: str, workers: int) -> dict:
        """Job-independent gang physics memo for one ``(model, W)`` pair.

        Keyed ``(picks, picked slots' free counts)`` → ``(cost, rate,
        multi_node)`` or ``None`` for an unusable gang: the bottleneck
        rate, the ring-allreduce penalty, and the price cost of a
        candidate depend on the model and gang size but not on which job
        of that shape is asking.  The per-*job* quantities (JCT, utility,
        payoff) stay in :meth:`candidate_memo`.
        """
        key = (model, workers)
        memo = self._phys_memo.get(key)
        if memo is None:
            memo = self._phys_memo[key] = {}
        return memo

    def usable_set(self, model: str) -> frozenset[str]:
        """The *set* of usable types — the model-independent slice of
        :meth:`usable_desc`, used to key node-family sharing across models."""
        s = self._usable_set.get(model)
        if s is None:
            s = frozenset(self.usable_desc(model))
            self._usable_set[model] = s
        return s

    def node_family_get(self, usable: frozenset, state_key: tuple[int, ...]):
        """Cached per-state node structures, or the sentinel on a miss.

        The free-slot list, free/price lookup dicts, per-node groupings,
        and per-node cheapest-first slot orders read only the free vector,
        the round-frozen prices, and *which* types are usable — not the
        model's actual rates.  Models sharing a usable-type set therefore
        share them at every reachable state, a strictly coarser key than
        the ``(model, W, state)`` generation cache above.
        """
        return self._node_cache.get((usable, state_key), _MISS)

    def node_family_put(
        self, usable: frozenset, state_key: tuple[int, ...], value: tuple
    ) -> None:
        self._node_cache[(usable, state_key)] = value

    def node_picks_get(
        self, usable: frozenset, workers: int, state_key: tuple[int, ...]
    ):
        """Cached consolidated cheapest-first gangs (model-independent)."""
        return self._node_picks.get((usable, workers, state_key), _MISS)

    def node_picks_put(
        self,
        usable: frozenset,
        workers: int,
        state_key: tuple[int, ...],
        value: tuple,
    ) -> None:
        self._node_picks[(usable, workers, state_key)] = value

    def rate_rank(self, model: str) -> tuple[dict[str, int], tuple[int, ...]]:
        """Rate-tie group index per usable type, plus its signature tuple.

        Walking :meth:`usable_desc` (fastest-first), each strictly slower
        rate opens a new group; exactly-equal rates share one.  For slots
        of usable types, sorting by ``rank[t]`` therefore agrees with
        sorting by ``-rate[t]`` comparison-for-comparison — the rank is a
        model-free stand-in for the rate in cross-server sort keys, which
        lets models with different rate *values* but the same type order
        and tie structure share one sorted slot list per state.
        """
        hit = self._rate_rank.get(model)
        if hit is None:
            rates = self.rates_for(model)
            rank: dict[str, int] = {}
            sig: list[int] = []
            prev: Optional[float] = None
            group = -1
            for t in self.usable_desc(model):
                r = rates[t]
                if r != prev:
                    group += 1
                    prev = r
                rank[t] = group
                sig.append(group)
            hit = (rank, tuple(sig))
            self._rate_rank[model] = hit
        return hit

    def xserver_get(self, key: tuple):
        """Cached cross-server ordered slot lists, or the sentinel on a miss.

        Keyed ``(usable_desc, rate-rank signature, state key)`` — the
        exact inputs the cheapest-first/fastest-first whole-cluster orders
        and the per-tier free totals depend on (see :meth:`rate_rank`).
        """
        return self._xserver.get(key, _MISS)

    def xserver_put(self, key: tuple, value: tuple) -> None:
        self._xserver[key] = value

    def candidate_memo(self, job_id: int) -> Optional[dict]:
        """The job's candidate-evaluation memo, or ``None`` when disabled."""
        if not self.caching:
            return None
        memo = self._cand_memo.get(job_id)
        if memo is None:
            memo = self._cand_memo[job_id] = {}
        return memo

    def result_get(self, job_id: int, state_key: tuple[int, ...]):
        """Cached full-search result, or the module sentinel on a miss."""
        if not self.caching:
            return _MISS
        return self._results.get((job_id, state_key), _MISS)

    def result_put(self, job_id: int, state_key: tuple[int, ...], value) -> None:
        if self.caching:
            self._results[(job_id, state_key)] = value
