"""``FIND_ALLOC`` — the per-job allocation search (Algorithm 2, lines 22-34).

For one job and one cluster state, generate candidate gangs of exactly
``W_j`` workers, cost them against the dual price book, and return the
payoff-maximizing candidate — or ``None`` when no candidate earns a
positive payoff ``μ_j`` (the job is filtered out this round).

Candidates come in the paper's two families:

* **consolidated** ("packed"): the whole gang on a single server, taking
  the fastest (and, as an alternative, the cheapest) free device types
  on that server — line 24;
* **non-consolidated**: the gang spread across servers.  For each
  possible *bottleneck* type ``b`` we restrict to device types at least
  as fast as ``b`` (anything slower would lower the sync-barrier rate, and
  anything faster than necessary is pure surcharge) and pick the ``W_j``
  cheapest / fastest free devices cluster-wide — line 25.  Cross-server
  candidates carry the ring-allreduce communication surcharge — line 27.

The candidate's estimated JCT feeds the job utility; payoff is utility
minus the price-book cost (line 29).  Keeping a running job's existing
placement is always a candidate (with no reallocation delay), which is
what makes allocations sticky when nothing better appears.

Performance note: this sits inside Hadar's DP recursion and runs hundreds
of thousands of times per simulation, so all round-constant lookups come
from a shared :class:`~repro.core.round_context.RoundContext` — per-model
rate vectors, fastest-first orderings, and per-``(slot, free)`` prices are
computed once per round, candidate costings are memoized on
``(picks, local free counts)``, and :func:`cached_find_alloc` short-cuts
entire searches when a DP branch revisits a ``(job, free-vector)``
subproblem.  Passing ``ctx=None`` (or a ``caching=False`` context) runs
the identical search without any sharing — the golden-parity suite pins
both modes to byte-identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.pricing import PriceBook
from repro.core.round_context import _MISS, RoundContext
from repro.core.utility import Utility
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = [
    "AllocationCandidate",
    "AllocationExplanation",
    "find_alloc",
    "cached_find_alloc",
    "explain_alloc",
]

DelayEstimator = Callable[[JobRuntime, Allocation], float]
"""Estimated pause (checkpoint save+load) if the job moves to a new gang."""

_Picks = tuple[tuple[int, str, int], ...]
"""Raw candidate: sorted ((node_id, type, count), ...) triples."""


@dataclass(frozen=True, slots=True)
class AllocationCandidate:
    """One costed gang proposal."""

    allocation: Allocation
    cost: float
    utility: float
    payoff: float
    rate: float
    """Realized gang iterations/second (bottleneck × W × comm penalty)."""
    estimated_jct: float

    @property
    def is_admittable(self) -> bool:
        return self.payoff > 0.0


@dataclass(frozen=True, slots=True)
class AllocationExplanation:
    """Why ``FIND_ALLOC`` would (not) place one job at one state.

    Produced by :func:`explain_alloc` for the decision tracer — never on
    the hot path.  The family payoffs are the *best payoff within each
    candidate family regardless of sign* (the search itself discards
    non-positive payoffs), so a trace can show how far underwater the
    losing family was:

    * ``consolidated_payoff`` — best single-server gang (line 24);
    * ``scattered_payoff`` — best cross-server gang (line 25), comm
      surcharge included;
    * ``current_payoff`` — keeping the job's existing placement
      (delay-free), when it still fits.

    ``None`` means the family produced no candidate at this state.
    ``reason`` is the empty string when ``best`` exists, else one of the
    trace schema's skip reasons (:data:`repro.obs.schema.SKIP_REASONS`
    minus ``dp_skipped``/``not_traced``, which only the caller can tell).
    """

    best: Optional[AllocationCandidate]
    reason: str
    consolidated_payoff: Optional[float] = None
    scattered_payoff: Optional[float] = None
    current_payoff: Optional[float] = None


def _greedy_take(
    ordered_slots: list[tuple[int, str, int]], workers: int
) -> Optional[_Picks]:
    """Take ``workers`` devices walking ``(node, type, free)`` in order."""
    need = workers
    picks: list[tuple[int, str, int]] = []
    for node_id, type_name, free in ordered_slots:
        take = free if free < need else need
        if take > 0:
            picks.append((node_id, type_name, take))
            need -= take
        if need == 0:
            return (picks[0],) if len(picks) == 1 else tuple(sorted(picks))
    return None


def find_alloc(
    rt: JobRuntime,
    state: ClusterState,
    prices: PriceBook,
    matrix: ThroughputMatrix,
    cluster: Cluster,
    utility: Utility,
    now: float,
    delay_estimator: DelayEstimator,
    ctx: Optional[RoundContext] = None,
) -> Optional[AllocationCandidate]:
    """The best positive-payoff gang for one job, or ``None`` (line 33).

    ``delay_estimator`` charges the reallocation pause for any candidate
    that differs from the job's current placement; the current placement
    itself (when it still fits ``state``) is evaluated delay-free, making
    stable allocations naturally preferred.

    ``ctx`` is the round-scoped context sharing lookups and caches across
    calls; when omitted, a throwaway non-caching context reproduces the
    standalone per-call behaviour.  A provided context's frozen fields
    (prices, matrix, cluster, utility, now, delay estimator) take
    precedence and must match the other arguments.
    """
    if ctx is None:
        ctx = RoundContext(
            prices=prices,
            matrix=matrix,
            cluster=cluster,
            utility=utility,
            now=now,
            delay_estimator=delay_estimator,
            state=state,
            caching=False,
        )
    return cached_find_alloc(ctx, rt, state)


def cached_find_alloc(
    ctx: RoundContext,
    rt: JobRuntime,
    state: ClusterState,
    state_key: Optional[tuple[int, ...]] = None,
) -> Optional[AllocationCandidate]:
    """``find_alloc`` through the round's ``(job, free-vector)`` result cache.

    The DP's allocate/skip recursion reaches the same free-capacity
    vector along many branch orders; within one round the search result
    is a pure function of ``(job, state.key())``, so reruns are shared
    between the exact recursion, the greedy ranking pass, and the greedy
    allocation walk.  ``state_key`` lets callers that already computed
    ``state.key()`` (the DP memo does) skip recomputing it.
    """
    stats = ctx.stats
    stats.find_alloc_calls += 1
    if not ctx.caching:
        stats.find_alloc_runs += 1
        return _search_reference(ctx, rt, state)
    if state_key is None:
        state_key = state.key()
    hit = ctx.result_get(rt.job_id, state_key)
    if hit is not _MISS:
        stats.result_hits += 1
        return hit
    stats.find_alloc_runs += 1
    result = _search_cached(ctx, rt, state, state_key)
    ctx.result_put(rt.job_id, state_key, result)
    return result


def _search_reference(
    ctx: RoundContext, rt: JobRuntime, state: ClusterState
) -> Optional[AllocationCandidate]:
    """One full candidate generation + evaluation pass, straight-line.

    This is the reference specification the golden-parity suite pins the
    cached fast path against: everything is recomputed per call, exactly
    as the pre-``RoundContext`` implementation did.  The cached path
    (:func:`_search_cached`) restructures the same computation around the
    shared generation/physics layers but must land on byte-identical
    results — every float expression there mirrors one here.
    """
    job = rt.job
    model = job.model.name
    w = job.num_workers

    # -- round-frozen tables (computed once per round, not per call) ----------
    rate_of = ctx.rates_for(model)
    usable_desc = ctx.usable_desc(model)
    if not usable_desc:
        return None
    free_slots: list[tuple[int, str, int]] = [
        (node_id, type_name, free)
        for (node_id, type_name), free in state.free_slots()
    ]
    free_of: dict[tuple[int, str], int] = {
        (node_id, type_name): free for node_id, type_name, free in free_slots
    }
    price_of: dict[tuple[int, str], float] = {
        slot: ctx.price(slot, free) for slot, free in free_of.items()
    }

    candidates: set[_Picks] = set()

    # -- consolidated (line 24): whole gang on one server ----------------------
    fast_order = ctx.node_fast_order(model)
    per_node_free: dict[int, int] = {}
    per_node: dict[int, list[tuple[int, str, int]]] = {}
    for node_id, type_name, free in free_slots:
        if rate_of[type_name] > 0.0:
            per_node_free[node_id] = per_node_free.get(node_id, 0) + free
            per_node.setdefault(node_id, []).append((node_id, type_name, free))
    for node_id, slots in per_node.items():
        if per_node_free[node_id] < w:
            continue
        # The frozen fastest-first type order filtered to free slots is
        # exactly the per-call sort it replaces (type name breaks ties).
        fast = [
            (node_id, t, free_of[(node_id, t)])
            for t in fast_order[node_id]
            if free_of.get((node_id, t), 0) > 0
        ]
        picks = _greedy_take(fast, w)
        if picks is not None:
            candidates.add(picks)
        cheap = sorted(slots, key=lambda s: (price_of[(s[0], s[1])], s[1]))
        picks = _greedy_take(cheap, w)
        if picks is not None:
            candidates.add(picks)

    # -- cross-server (line 25): one pair of candidates per bottleneck type ----
    for i in range(len(usable_desc)):
        allowed = set(usable_desc[: i + 1])
        slots = [s for s in free_slots if s[1] in allowed]
        if sum(free for *_, free in slots) < w:
            continue
        cheap = sorted(
            slots, key=lambda s: (price_of[(s[0], s[1])], -rate_of[s[1]], s[0])
        )
        picks = _greedy_take(cheap, w)
        if picks is not None:
            candidates.add(picks)
        fast = sorted(
            slots, key=lambda s: (-rate_of[s[1]], price_of[(s[0], s[1])], s[0])
        )
        picks = _greedy_take(fast, w)
        if picks is not None:
            candidates.add(picks)

    # -- keep the current placement when it still fits --------------------------
    current_picks: Optional[_Picks] = None
    if rt.allocation and state.can_fit(rt.allocation):
        current_picks = tuple(
            sorted(
                (node_id, type_name, count)
                for (node_id, type_name), count in rt.allocation.placements.items()
            )
        )
        usable = True
        for _, t, _ in current_picks:
            r = rate_of.get(t)
            if r is None:  # type outside the cluster inventory (defensive)
                r = ctx.matrix.rate(model, t)
            if r <= 0.0:
                usable = False
                break
        if usable:
            candidates.add(current_picks)

    if not candidates:
        return None

    # -- evaluate raw candidates -------------------------------------------------
    model_bytes = job.model.model_bytes
    comm = ctx.cluster.comm
    now = ctx.now
    utility = ctx.utility
    age = now - job.arrival_time
    if age < 0.0:
        age = 0.0
    remaining = rt.remaining_iterations
    stats = ctx.stats
    memo = ctx.candidate_memo(rt.job_id)

    best_key: Optional[tuple] = None
    best: Optional[tuple[_Picks, float, float, float, float, float]] = None
    move_delay: Optional[float] = None  # same for every non-current candidate
    # Iteration order cannot leak into the result: the selection key ends
    # with the full picks tuple, a total order over candidates.
    for picks in candidates:  # repro-lint: disable=REP004
        is_current = picks == current_picks
        mkey = None
        if memo is not None:
            # A costing depends only on the picks, the picked slots' free
            # counts (through prices), and the current-placement flag —
            # shareable across every call in the round.
            mkey = (
                picks,
                tuple(free_of[(n, t)] for n, t, _ in picks),
                is_current,
            )
            cached = memo.get(mkey, _MISS)
            if cached is not _MISS:
                stats.candidate_hits += 1
                if cached is None:
                    continue
                cost, u, payoff, rate, jct, multi_node = cached
                key = (-payoff, cost, multi_node, picks)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (picks, cost, u, payoff, rate, jct)
                continue
        stats.candidate_evals += 1
        bottleneck = min(rate_of.get(t) or ctx.matrix.rate(model, t) for _, t, _ in picks)
        if bottleneck <= 0.0:
            if memo is not None:
                memo[mkey] = None
            continue
        nodes = {n for n, _, _ in picks}
        multi_node = len(nodes) > 1
        penalty = comm.throughput_penalty_n(w, multi_node, model_bytes, 1.0 / bottleneck)
        rate = bottleneck * w * penalty
        if is_current and rt.slowdown < 1.0:
            # Keeping a straggling gang keeps its degradation; a fresh
            # placement starts with healthy workers (straggler awareness).
            rate *= rt.slowdown
        base_cost = sum(price_of[(n, t)] * c for n, t, c in picks)
        cost = base_cost / penalty  # comm surcharge: slower gang = pricier time
        if is_current:
            delay = 0.0
        else:
            if move_delay is None:
                move_delay = ctx.move_delay_for(rt, picks)
            delay = move_delay
        jct = age + delay + remaining / rate
        u = utility.value_for(rt, jct, now)
        payoff = u - cost
        if payoff <= 0.0:
            if memo is not None:
                memo[mkey] = None
            continue
        if memo is not None:
            memo[mkey] = (cost, u, payoff, rate, jct, multi_node)
        key = (-payoff, cost, multi_node, picks)
        if best_key is None or key < best_key:
            best_key = key
            best = (picks, cost, u, payoff, rate, jct)

    if best is None:
        return None
    picks, cost, u, payoff, rate, jct = best
    return AllocationCandidate(
        allocation=Allocation.from_pairs(picks),
        cost=cost,
        utility=u,
        payoff=payoff,
        rate=rate,
        estimated_jct=jct,
    )


def explain_alloc(
    ctx: RoundContext, rt: JobRuntime, state: ClusterState
) -> AllocationExplanation:
    """Re-derive one job's ``FIND_ALLOC`` outcome with full diagnostics.

    Runs the reference candidate generation and evaluation, but keeps the
    best payoff of *every* family regardless of sign (the search discards
    non-positive payoffs outright) and names the reason no gang survived.
    Only the decision tracer calls this, once per job per traced round,
    at the post-decision state — never inside the DP recursion — so it
    favours clarity over sharing: it reads the round's frozen tables and
    price memo through ``ctx`` (all value-preserving) but touches neither
    the candidate/result memos nor, thanks to
    :meth:`~repro.core.round_context.RoundContext.suspend_stats`, the
    round's hot-path counters.
    """
    job = rt.job
    model = job.model.name
    w = job.num_workers
    with ctx.suspend_stats():
        rate_of = ctx.rates_for(model)
        usable_desc = ctx.usable_desc(model)
        if not usable_desc:
            return AllocationExplanation(None, "no_usable_type")

        free_slots: list[tuple[int, str, int]] = [
            (node_id, type_name, free)
            for (node_id, type_name), free in state.free_slots()
        ]
        free_of = {
            (node_id, type_name): free for node_id, type_name, free in free_slots
        }
        price_of = {slot: ctx.price(slot, free) for slot, free in free_of.items()}

        candidates: set[_Picks] = set()

        # Consolidated family (line 24): whole gang on one server.
        fast_order = ctx.node_fast_order(model)
        per_node_free: dict[int, int] = {}
        per_node: dict[int, list[tuple[int, str, int]]] = {}
        for node_id, type_name, free in free_slots:
            if rate_of[type_name] > 0.0:
                per_node_free[node_id] = per_node_free.get(node_id, 0) + free
                per_node.setdefault(node_id, []).append((node_id, type_name, free))
        for node_id, slots in per_node.items():
            if per_node_free[node_id] < w:
                continue
            fast = [
                (node_id, t, free_of[(node_id, t)])
                for t in fast_order[node_id]
                if free_of.get((node_id, t), 0) > 0
            ]
            picks = _greedy_take(fast, w)
            if picks is not None:
                candidates.add(picks)
            cheap = sorted(slots, key=lambda s: (price_of[(s[0], s[1])], s[1]))
            picks = _greedy_take(cheap, w)
            if picks is not None:
                candidates.add(picks)

        # Cross-server family (line 25): one candidate pair per bottleneck tier.
        for i in range(len(usable_desc)):
            allowed = set(usable_desc[: i + 1])
            slots = [s for s in free_slots if s[1] in allowed]
            if sum(free for *_, free in slots) < w:
                continue
            cheap = sorted(
                slots, key=lambda s: (price_of[(s[0], s[1])], -rate_of[s[1]], s[0])
            )
            picks = _greedy_take(cheap, w)
            if picks is not None:
                candidates.add(picks)
            fast = sorted(
                slots, key=lambda s: (-rate_of[s[1]], price_of[(s[0], s[1])], s[0])
            )
            picks = _greedy_take(fast, w)
            if picks is not None:
                candidates.add(picks)

        # The current placement, when it still fits and runs.
        current_picks: Optional[_Picks] = None
        if rt.allocation and state.can_fit(rt.allocation):
            picks = tuple(
                sorted(
                    (node_id, type_name, count)
                    for (node_id, type_name), count in rt.allocation.placements.items()
                )
            )
            if all(
                (rate_of.get(t) or ctx.matrix.rate(model, t)) > 0.0
                for _, t, _ in picks
            ):
                current_picks = picks
                candidates.add(picks)

        if not candidates:
            return AllocationExplanation(None, "insufficient_free")

        # Evaluate every candidate; keep family bests at any payoff sign.
        model_bytes = job.model.model_bytes
        comm = ctx.cluster.comm
        now = ctx.now
        utility = ctx.utility
        age = max(now - job.arrival_time, 0.0)
        remaining = rt.remaining_iterations

        consolidated_payoff: Optional[float] = None
        scattered_payoff: Optional[float] = None
        current_payoff: Optional[float] = None
        best_key: Optional[tuple] = None
        best: Optional[AllocationCandidate] = None
        move_delay: Optional[float] = None
        for picks in candidates:  # repro-lint: disable=REP004
            bottleneck = min(
                rate_of.get(t) or ctx.matrix.rate(model, t) for _, t, _ in picks
            )
            if bottleneck <= 0.0:
                continue
            is_current = picks == current_picks
            multi_node = len({n for n, _, _ in picks}) > 1
            penalty = comm.throughput_penalty_n(
                w, multi_node, model_bytes, 1.0 / bottleneck
            )
            rate = bottleneck * w * penalty
            if is_current and rt.slowdown < 1.0:
                rate *= rt.slowdown
            cost = sum(price_of[(n, t)] * c for n, t, c in picks) / penalty
            if is_current:
                delay = 0.0
            else:
                if move_delay is None:
                    move_delay = ctx.move_delay_for(rt, picks)
                delay = move_delay
            jct = age + delay + remaining / rate
            u = utility.value_for(rt, jct, now)
            payoff = u - cost
            if is_current and (current_payoff is None or payoff > current_payoff):
                current_payoff = payoff
            if multi_node:
                if scattered_payoff is None or payoff > scattered_payoff:
                    scattered_payoff = payoff
            elif consolidated_payoff is None or payoff > consolidated_payoff:
                consolidated_payoff = payoff
            if payoff <= 0.0:
                continue
            key = (-payoff, cost, multi_node, picks)
            if best_key is None or key < best_key:
                best_key = key
                best = AllocationCandidate(
                    allocation=Allocation.from_pairs(picks),
                    cost=cost,
                    utility=u,
                    payoff=payoff,
                    rate=rate,
                    estimated_jct=jct,
                )

    return AllocationExplanation(
        best=best,
        reason="" if best is not None else "negative_payoff",
        consolidated_payoff=consolidated_payoff,
        scattered_payoff=scattered_payoff,
        current_payoff=current_payoff,
    )


def _generate_candidates(
    ctx: RoundContext,
    model: str,
    w: int,
    rate_of: dict[str, float],
    usable_desc: tuple[str, ...],
    state: ClusterState,
    state_key: tuple[int, ...],
) -> tuple[tuple[tuple[_Picks, tuple[int, ...]], ...], frozenset]:
    """The job-independent candidate families at one free-capacity vector.

    Produces exactly the consolidated (line 24) and cross-server (line 25)
    pick sets of :func:`_search_reference` — the current-placement
    candidate is per-job and added by the caller.  Two transformations
    relative to the reference, both value-preserving:

    * the node structures (free/price dicts, per-node cheapest-first
      orders) and the consolidated cheapest-first gangs are read through
      the :class:`RoundContext` node-family caches, which are
      model-independent and therefore shared more widely than this
      function's own ``(model, W, state)`` result;
    * the cross-server tiers are nested prefixes of ``usable_desc``, so
      instead of one sort per tier the usable slots are sorted once per
      key family and filtered per tier — the keys are total orders over
      distinct slots and both sorts are stable over the same canonical
      input order, so the filtered prefix subsequence equals the per-tier
      sort it replaces.

    Returns ``(pairs, pickset)``: the candidates sorted (deterministic
    regardless of set iteration order), each paired with its picked
    slots' free counts, plus the membership set callers use to dedup the
    per-job current-placement candidate.
    """
    usable = ctx.usable_set(model)
    fam = ctx.node_family_get(usable, state_key)
    if fam is _MISS:
        free_slots: list[tuple[int, str, int]] = []
        free_of: dict[tuple[int, str], int] = {}
        price_of: dict[tuple[int, str], float] = {}
        per_node_free: dict[int, int] = {}
        per_node: dict[int, list[tuple[int, str, int]]] = {}
        price = ctx.price
        for slot, free in state.free_slots():
            node_id, type_name = slot
            free_slots.append((node_id, type_name, free))
            free_of[slot] = free
            price_of[slot] = price(slot, free)
            if type_name in usable:
                per_node_free[node_id] = per_node_free.get(node_id, 0) + free
                per_node.setdefault(node_id, []).append(
                    (node_id, type_name, free)
                )
        cheap_by_node = {
            node_id: sorted(
                slots, key=lambda s: (price_of[(s[0], s[1])], s[1])
            )
            for node_id, slots in per_node.items()
        }
        fam = (free_slots, free_of, price_of, per_node_free, cheap_by_node)
        ctx.node_family_put(usable, state_key, fam)
    free_slots, free_of, price_of, per_node_free, cheap_by_node = fam

    # -- consolidated (line 24): whole gang on one server ----------------------
    picksets = ctx.node_picks_get(usable, w, state_key)
    if picksets is _MISS:
        qual_nodes = tuple(
            node_id for node_id, total in per_node_free.items() if total >= w
        )
        taken = []
        for node_id in qual_nodes:
            picks = _greedy_take(cheap_by_node[node_id], w)
            if picks is not None:
                taken.append(picks)
        picksets = (qual_nodes, tuple(taken))
        ctx.node_picks_put(usable, w, state_key, picksets)
    qual_nodes, cheap_picks = picksets

    # The fused walks below are filter-then-_greedy_take with an early
    # exit: filtering preserves order, free counts are positive, and the
    # capacity pre-checks guarantee the take fills, so stopping at
    # ``need == 0`` yields the same picks without building the filtered
    # list first.
    candidates: set[_Picks] = set(cheap_picks)
    fast_order = ctx.node_fast_order(model)
    for node_id in qual_nodes:
        need = w
        picks = []
        for t in fast_order[node_id]:
            free = free_of.get((node_id, t), 0)
            if free <= 0:
                continue
            take = free if free < need else need
            picks.append((node_id, t, take))
            need -= take
            if need == 0:
                candidates.add(
                    (picks[0],) if len(picks) == 1 else tuple(sorted(picks))
                )
                break

    # -- cross-server (line 25): sort once per family, filter per tier ---------
    # The reference keys use ``-rate_of[t]``; ``rank[t]`` compares
    # identically (rate-tie groups in fastest-first order), so the sorted
    # lists are shared across models with the same type order and tie
    # structure regardless of their actual rate values.
    rank, rank_sig = ctx.rate_rank(model)
    xkey = (usable_desc, rank_sig, state_key)
    xs = ctx.xserver_get(xkey)
    if xs is _MISS:
        tier_of = {t: i for i, t in enumerate(usable_desc)}
        usable_slots = [s for s in free_slots if s[1] in tier_of]
        cheap_all = sorted(
            usable_slots, key=lambda s: (price_of[(s[0], s[1])], rank[s[1]], s[0])
        )
        fast_all = sorted(
            usable_slots, key=lambda s: (rank[s[1]], price_of[(s[0], s[1])], s[0])
        )
        free_by_tier = [0] * len(usable_desc)
        for _, t, free in usable_slots:
            free_by_tier[tier_of[t]] += free
        xs = (tier_of, cheap_all, fast_all, free_by_tier)
        ctx.xserver_put(xkey, xs)
    else:
        tier_of, cheap_all, fast_all, free_by_tier = xs
    total_free = 0
    for i in range(len(usable_desc)):
        tier_free = free_by_tier[i]
        total_free += tier_free
        if total_free < w:
            continue
        if i and not tier_free:
            # An empty tier leaves the allowed prefix — and hence both
            # walks — identical to the previous processed tier's.
            continue
        for ordered in (cheap_all, fast_all):
            need = w
            picks = []
            for node_id, t, free in ordered:
                if tier_of[t] > i:
                    continue
                take = free if free < need else need
                picks.append((node_id, t, take))
                need -= take
                if need == 0:
                    candidates.add(
                        (picks[0],) if len(picks) == 1 else tuple(sorted(picks))
                    )
                    break

    # Pair every candidate with its picked slots' free counts: the free
    # vector is exactly what ``state_key`` canonicalizes, so the counts
    # are identical at every state this generation is reused for —
    # evaluators read them from the cache instead of re-querying state.
    pairs = []
    for p in sorted(candidates):
        pairs.append((p, tuple([free_of[(n, t)] for n, t, _ in p])))
    return tuple(pairs), frozenset(candidates)


def _search_cached(
    ctx: RoundContext,
    rt: JobRuntime,
    state: ClusterState,
    state_key: tuple[int, ...],
) -> Optional[AllocationCandidate]:
    """The candidate search through the round's shared caching layers.

    Byte-identical to :func:`_search_reference` (the golden-parity suite
    pins this), reorganized so the expensive work is shared:

    * candidate **generation** is looked up per ``(model, W, state key)``
      — every job of the same shape at the same free vector reuses it;
    * gang **physics** (bottleneck rate, comm penalty, price cost) is
      memoized per ``(model, W, picks, picked free counts)`` — only the
      per-job economics (JCT → utility → payoff) run per evaluation;
    * the per-job candidate memo and the Eq. (5) price memo behave as
      before.
    """
    job = rt.job
    model = job.model.name
    w = job.num_workers

    rate_of = ctx.rates_for(model)
    usable_desc = ctx.usable_desc(model)
    if not usable_desc:
        return None

    stats = ctx.stats
    _, rank_sig = ctx.rate_rank(model)
    shape = (usable_desc, rank_sig, w)
    gen = ctx.generation_get(shape, state_key)
    if gen is _MISS:
        stats.generation_runs += 1
        gen = _generate_candidates(
            ctx, model, w, rate_of, usable_desc, state, state_key
        )
        ctx.generation_put(shape, state_key, gen)
    else:
        stats.generation_hits += 1
    pairs, pickset = gen

    # -- keep the current placement when it still fits (per-job) ---------------
    current_picks: Optional[_Picks] = None
    extra: tuple[tuple[_Picks, tuple[int, ...]], ...] = ()
    if rt.allocation and state.can_fit(rt.allocation):
        picks = tuple(
            sorted(
                (node_id, type_name, count)
                for (node_id, type_name), count in rt.allocation.placements.items()
            )
        )
        usable = True
        for _, t, _ in picks:
            r = rate_of.get(t)
            if r is None:  # type outside the cluster inventory (defensive)
                r = ctx.matrix.rate(model, t)
            if r <= 0.0:
                usable = False
                break
        if usable:
            current_picks = picks
            if picks not in pickset:
                extra = (
                    (picks, tuple([state.free(n, t) for n, t, _ in picks])),
                )

    if not pairs and not extra:
        return None

    # -- evaluate: shared physics, per-job economics ---------------------------
    model_bytes = job.model.model_bytes
    comm = ctx.cluster.comm
    now = ctx.now
    utility = ctx.utility
    age = now - job.arrival_time
    if age < 0.0:
        age = 0.0
    remaining = rt.remaining_iterations
    memo = ctx.candidate_memo(rt.job_id)
    phys_memo = ctx.physics_memo(model, w)
    price = ctx.price
    matrix_rate = ctx.matrix.rate

    best_key: Optional[tuple] = None
    best: Optional[tuple[_Picks, float, float, float, float, float]] = None
    move_delay: Optional[float] = None  # same for every non-current candidate
    for picks, frees in pairs + extra:
        is_current = picks == current_picks
        mkey = (picks, frees, is_current)
        cached = memo.get(mkey, _MISS)
        if cached is not _MISS:
            stats.candidate_hits += 1
            if cached is None:
                continue
            cost, u, payoff, rate, jct, multi_node = cached
            key = (-payoff, cost, multi_node, picks)
            if best_key is None or key < best_key:
                best_key = key
                best = (picks, cost, u, payoff, rate, jct)
            continue
        stats.candidate_evals += 1
        pkey = (picks, frees)
        phys = phys_memo.get(pkey, _MISS)
        if phys is _MISS:
            stats.physics_evals += 1
            bottleneck = min(
                rate_of.get(t) or matrix_rate(model, t) for _, t, _ in picks
            )
            if bottleneck <= 0.0:
                phys = None
            else:
                nodes = {n for n, _, _ in picks}
                multi_node = len(nodes) > 1
                penalty = comm.throughput_penalty_n(
                    w, multi_node, model_bytes, 1.0 / bottleneck
                )
                base_rate = bottleneck * w * penalty
                # Identical accumulation order to the reference's
                # sum-over-picks with the same Eq. (5) price values.
                base_cost = sum(
                    price((n, t), f) * c for (n, t, c), f in zip(picks, frees)
                )
                phys = (base_cost / penalty, base_rate, multi_node)
            phys_memo[pkey] = phys
        else:
            stats.physics_hits += 1
        if phys is None:
            memo[mkey] = None
            continue
        cost, rate, multi_node = phys
        if is_current and rt.slowdown < 1.0:
            # Keeping a straggling gang keeps its degradation; a fresh
            # placement starts with healthy workers (straggler awareness).
            rate = rate * rt.slowdown
        if is_current:
            delay = 0.0
        else:
            if move_delay is None:
                move_delay = ctx.move_delay_for(rt, picks)
            delay = move_delay
        jct = age + delay + remaining / rate
        u = utility.value_for(rt, jct, now)
        payoff = u - cost
        if payoff <= 0.0:
            memo[mkey] = None
            continue
        memo[mkey] = (cost, u, payoff, rate, jct, multi_node)
        key = (-payoff, cost, multi_node, picks)
        if best_key is None or key < best_key:
            best_key = key
            best = (picks, cost, u, payoff, rate, jct)

    if best is None:
        return None
    picks, cost, u, payoff, rate, jct = best
    return AllocationCandidate(
        allocation=Allocation.from_pairs(picks),
        cost=cost,
        utility=u,
        payoff=payoff,
        rate=rate,
        estimated_jct=jct,
    )
