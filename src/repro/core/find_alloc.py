"""``FIND_ALLOC`` — the per-job allocation search (Algorithm 2, lines 22-34).

For one job and one cluster state, generate candidate gangs of exactly
``W_j`` workers, cost them against the dual price book, and return the
payoff-maximizing candidate — or ``None`` when no candidate earns a
positive payoff ``μ_j`` (the job is filtered out this round).

Candidates come in the paper's two families:

* **consolidated** ("packed"): the whole gang on a single server, taking
  the fastest (and, as an alternative, the cheapest) free device types
  on that server — line 24;
* **non-consolidated**: the gang spread across servers.  For each
  possible *bottleneck* type ``b`` we restrict to device types at least
  as fast as ``b`` (anything slower would lower the sync-barrier rate, and
  anything faster than necessary is pure surcharge) and pick the ``W_j``
  cheapest / fastest free devices cluster-wide — line 25.  Cross-server
  candidates carry the ring-allreduce communication surcharge — line 27.

The candidate's estimated JCT feeds the job utility; payoff is utility
minus the price-book cost (line 29).  Keeping a running job's existing
placement is always a candidate (with no reallocation delay), which is
what makes allocations sticky when nothing better appears.

Performance note: this sits inside Hadar's DP recursion and runs hundreds
of thousands of times per simulation, so candidates stay as raw pick
tuples — prices are computed once per call, rates once per GPU type, and
an :class:`~repro.cluster.allocation.Allocation` object is materialized
only for the winning candidate (see the HPC guide's "profile, then
optimize the bottleneck").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.pricing import PriceBook
from repro.core.utility import Utility
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = ["AllocationCandidate", "find_alloc"]

DelayEstimator = Callable[[JobRuntime, Allocation], float]
"""Estimated pause (checkpoint save+load) if the job moves to a new gang."""

_Picks = tuple[tuple[int, str, int], ...]
"""Raw candidate: sorted ((node_id, type, count), ...) triples."""


@dataclass(frozen=True, slots=True)
class AllocationCandidate:
    """One costed gang proposal."""

    allocation: Allocation
    cost: float
    utility: float
    payoff: float
    rate: float
    """Realized gang iterations/second (bottleneck × W × comm penalty)."""
    estimated_jct: float

    @property
    def is_admittable(self) -> bool:
        return self.payoff > 0.0


def _greedy_take(
    ordered_slots: list[tuple[int, str, int]], workers: int
) -> Optional[_Picks]:
    """Take ``workers`` devices walking ``(node, type, free)`` in order."""
    need = workers
    picks: list[tuple[int, str, int]] = []
    for node_id, type_name, free in ordered_slots:
        take = free if free < need else need
        if take > 0:
            picks.append((node_id, type_name, take))
            need -= take
        if need == 0:
            return tuple(sorted(picks))
    return None


def find_alloc(
    rt: JobRuntime,
    state: ClusterState,
    prices: PriceBook,
    matrix: ThroughputMatrix,
    cluster: Cluster,
    utility: Utility,
    now: float,
    delay_estimator: DelayEstimator,
) -> Optional[AllocationCandidate]:
    """The best positive-payoff gang for one job, or ``None`` (line 33).

    ``delay_estimator`` charges the reallocation pause for any candidate
    that differs from the job's current placement; the current placement
    itself (when it still fits ``state``) is evaluated delay-free, making
    stable allocations naturally preferred.
    """
    job = rt.job
    model = job.model.name
    w = job.num_workers

    # -- per-call precomputation ------------------------------------------------
    free_slots: list[tuple[int, str, int]] = [
        (node_id, type_name, free)
        for (node_id, type_name), free in state.free_slots()
    ]
    rate_of: dict[str, float] = {}
    for _, type_name, _ in free_slots:
        if type_name not in rate_of:
            rate_of[type_name] = matrix.rate(model, type_name)
    usable_desc = sorted(
        (t for t, r in rate_of.items() if r > 0.0),
        key=lambda t: (-rate_of[t], t),
    )
    if not usable_desc:
        return None
    price_of: dict[tuple[int, str], float] = {
        (node_id, type_name): prices.price(node_id, type_name, state)
        for node_id, type_name, _ in free_slots
    }

    candidates: set[_Picks] = set()

    # -- consolidated (line 24): whole gang on one server ----------------------
    per_node: dict[int, list[tuple[int, str, int]]] = {}
    for node_id, type_name, free in free_slots:
        if rate_of[type_name] > 0.0:
            per_node.setdefault(node_id, []).append((node_id, type_name, free))
    for node_id, slots in per_node.items():
        if sum(free for *_, free in slots) < w:
            continue
        fast = sorted(slots, key=lambda s: (-rate_of[s[1]], s[1]))
        picks = _greedy_take(fast, w)
        if picks is not None:
            candidates.add(picks)
        cheap = sorted(slots, key=lambda s: (price_of[(s[0], s[1])], s[1]))
        picks = _greedy_take(cheap, w)
        if picks is not None:
            candidates.add(picks)

    # -- cross-server (line 25): one pair of candidates per bottleneck type ----
    for i in range(len(usable_desc)):
        allowed = set(usable_desc[: i + 1])
        slots = [s for s in free_slots if s[1] in allowed]
        if sum(free for *_, free in slots) < w:
            continue
        cheap = sorted(
            slots, key=lambda s: (price_of[(s[0], s[1])], -rate_of[s[1]], s[0])
        )
        picks = _greedy_take(cheap, w)
        if picks is not None:
            candidates.add(picks)
        fast = sorted(
            slots, key=lambda s: (-rate_of[s[1]], price_of[(s[0], s[1])], s[0])
        )
        picks = _greedy_take(fast, w)
        if picks is not None:
            candidates.add(picks)

    # -- keep the current placement when it still fits --------------------------
    current_picks: Optional[_Picks] = None
    if rt.allocation and state.can_fit(rt.allocation):
        current_picks = tuple(
            sorted(
                (node_id, type_name, count)
                for (node_id, type_name), count in rt.allocation.placements.items()
            )
        )
        if all(rate_of.get(t, matrix.rate(model, t)) > 0.0 for _, t, _ in current_picks):
            candidates.add(current_picks)

    if not candidates:
        return None

    # -- evaluate raw candidates -------------------------------------------------
    model_bytes = job.model.model_bytes
    comm = cluster.comm
    age = now - job.arrival_time
    if age < 0.0:
        age = 0.0
    remaining = rt.remaining_iterations

    best_key: Optional[tuple] = None
    best: Optional[tuple[_Picks, float, float, float, float, float]] = None
    move_delay: Optional[float] = None  # same for every non-current candidate
    # Iteration order cannot leak into the result: the selection key ends
    # with the full picks tuple, a total order over candidates.
    for picks in candidates:  # repro-lint: disable=REP004
        bottleneck = min(rate_of.get(t) or matrix.rate(model, t) for _, t, _ in picks)
        if bottleneck <= 0.0:
            continue
        nodes = {n for n, _, _ in picks}
        multi_node = len(nodes) > 1
        penalty = comm.throughput_penalty_n(w, multi_node, model_bytes, 1.0 / bottleneck)
        rate = bottleneck * w * penalty
        if picks == current_picks and rt.slowdown < 1.0:
            # Keeping a straggling gang keeps its degradation; a fresh
            # placement starts with healthy workers (straggler awareness).
            rate *= rt.slowdown
        base_cost = sum(
            (price_of[(n, t)] if (n, t) in price_of else prices.price(n, t, state)) * c
            for n, t, c in picks
        )
        cost = base_cost / penalty  # comm surcharge: slower gang = pricier time
        if picks == current_picks:
            delay = 0.0
        else:
            if move_delay is None:
                move_delay = delay_estimator(rt, Allocation.from_pairs(picks))
            delay = move_delay
        jct = age + delay + remaining / rate
        u = utility.value_for(rt, jct, now)
        payoff = u - cost
        if payoff <= 0.0:
            continue
        key = (-payoff, cost, multi_node, picks)
        if best_key is None or key < best_key:
            best_key = key
            best = (picks, cost, u, payoff, rate, jct)

    if best is None:
        return None
    picks, cost, u, payoff, rate, jct = best
    return AllocationCandidate(
        allocation=Allocation.from_pairs(picks),
        cost=cost,
        utility=u,
        payoff=payoff,
        rate=rate,
        estimated_jct=jct,
    )
