"""Online throughput estimation — the "throughput estimator" of Fig. 2.

The paper: "the throughput estimator in Hadar obtains performance
measurements for each runnable job on each available accelerator type
either from user input or by profiling during the first few rounds of
execution."  This module implements the profiling path:

* :class:`ThroughputEstimator` maintains per-(model, GPU-type) rate
  estimates, starting from an optimistic prior (so unexplored types get
  tried) and refined by exponentially-weighted observations;
* :class:`ProfilingScheduler` wraps *any* scheduler: before each
  decision it converts the progress its jobs made since the last
  decision into rate observations, and hands the wrapped scheduler a
  context whose throughput matrix is the current estimate instead of
  ground truth.

Observation model: a gang of ``W`` workers that advanced ``Δiters`` over
``Δt`` seconds of un-paused time ran at a per-worker bottleneck rate of
``Δiters / (Δt · W · penalty)``; the measurement is attributed to the
gang's *estimated-slowest* type (exact for homogeneous gangs, a standard
attribution heuristic for mixed ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.allocation import Allocation
from repro.sim.interface import Scheduler, SchedulerContext
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = ["ThroughputEstimator", "ProfilingScheduler"]


@dataclass
class ThroughputEstimator:
    """EWMA estimates of per-worker iteration rates.

    Attributes
    ----------
    optimistic_rate:
        Prior estimate for unobserved (model, type) pairs.  Optimism is
        deliberate: an unexplored type looks attractive, gets scheduled,
        and is measured (the profiling rounds of the paper).
    smoothing:
        EWMA weight of a new observation (1.0 = trust the latest sample
        completely).
    min_observation_s:
        Ignore progress windows shorter than this (too noisy to use).
    """

    optimistic_rate: float = 10.0
    smoothing: float = 0.6
    min_observation_s: float = 30.0
    _estimates: dict[tuple[str, str], float] = field(default_factory=dict)
    _counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.optimistic_rate <= 0:
            raise ValueError("optimistic_rate must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if self.min_observation_s < 0:
            raise ValueError("min_observation_s must be non-negative")

    # -- queries ---------------------------------------------------------
    def rate(self, model: str, type_name: str) -> float:
        return self._estimates.get((model, type_name), self.optimistic_rate)

    def observations(self, model: str, type_name: str) -> int:
        return self._counts.get((model, type_name), 0)

    def matrix(self, models: list[str], types: list[str]) -> ThroughputMatrix:
        """The current estimates as a throughput matrix."""
        return ThroughputMatrix(
            {m: {t: self.rate(m, t) for t in types} for m in models}
        )

    # -- updates ----------------------------------------------------------
    def observe(self, model: str, type_name: str, measured_rate: float) -> None:
        """Fold one per-worker rate measurement into the estimate."""
        if measured_rate <= 0:
            return  # paused/failed window; nothing learned
        key = (model, type_name)
        old = self._estimates.get(key)
        if old is None:
            self._estimates[key] = measured_rate
        else:
            self._estimates[key] = (
                self.smoothing * measured_rate + (1 - self.smoothing) * old
            )
        self._counts[key] = self._counts.get(key, 0) + 1

    def observe_gang(
        self,
        rt: JobRuntime,
        allocation: Allocation,
        delta_iters: float,
        delta_seconds: float,
        comm_penalty: float = 1.0,
    ) -> None:
        """Attribute a gang's progress window to its bottleneck type."""
        if delta_seconds < self.min_observation_s or delta_iters <= 0:
            return
        workers = allocation.total_workers
        if workers == 0:
            return
        per_worker = delta_iters / (delta_seconds * workers * max(comm_penalty, 1e-9))
        model = rt.job.model.name
        bottleneck = min(
            sorted(allocation.gpu_types), key=lambda t: (self.rate(model, t), t)
        )
        self.observe(model, bottleneck, per_worker)

    def reset(self) -> None:
        self._estimates.clear()
        self._counts.clear()


class ProfilingScheduler(Scheduler):
    """Wrap a scheduler so it sees *profiled* throughputs, not ground truth.

    The wrapper measures each running job's progress between consecutive
    decisions, updates the estimator, and rewrites the context's matrix
    with the estimates.  Everything else (the decision logic, the
    engine's physics) is untouched — the engine still advances jobs at
    their true rates, which is exactly what makes the profiling loop
    converge.
    """

    def __init__(
        self,
        inner: Scheduler,
        estimator: Optional[ThroughputEstimator] = None,
    ):
        self.inner = inner
        self.estimator = estimator or ThroughputEstimator()
        self._last_seen: dict[int, tuple[float, float, Allocation]] = {}
        """job_id -> (time, iterations_done, allocation) at the last decision."""

    @property
    def name(self) -> str:
        return f"{self.inner.name}+profiling"

    @property
    def round_based(self) -> bool:  # type: ignore[override]
        return self.inner.round_based

    @property
    def reacts_to_events(self) -> bool:  # type: ignore[override]
        return self.inner.reacts_to_events

    def reset(self) -> None:
        self.inner.reset()
        self.estimator.reset()
        self._last_seen.clear()

    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        self._ingest_observations(ctx)
        estimated = self.estimator.matrix(
            models=sorted({rt.job.model.name for rt in ctx.active}),
            types=list(ctx.cluster.gpu_types),
        )
        shadow = SchedulerContext(
            now=ctx.now,
            cluster=ctx.cluster,
            matrix=estimated,
            round_length=ctx.round_length,
            waiting=ctx.waiting,
            running=ctx.running,
        )
        target = self.inner.schedule(shadow)
        # Remember what each job held so the next decision can attribute
        # the progress in between.
        self._last_seen = {
            rt.job_id: (ctx.now, rt.iterations_done, rt.allocation)
            for rt in ctx.running
        }
        return target

    # ---------------------------------------------------------------- internal --
    def _ingest_observations(self, ctx: SchedulerContext) -> None:
        for rt in ctx.running:
            seen = self._last_seen.get(rt.job_id)
            if seen is None:
                continue
            t0, iters0, alloc0 = seen
            if not alloc0 or rt.allocation != alloc0:
                continue  # moved mid-window; skip the tainted sample
            elapsed = ctx.now - t0
            # Subtract any pause that ate into this window.
            paused = max(0.0, min(rt.resume_time, ctx.now) - t0)
            active = elapsed - paused
            model = rt.job.model.name
            est_bottleneck = min(
                self.estimator.rate(model, t) for t in alloc0.gpu_types
            )
            penalty = ctx.cluster.comm.throughput_penalty(
                alloc0,
                rt.job.model.model_bytes,
                1.0 / max(est_bottleneck, 1e-9),
            )
            self.estimator.observe_gang(
                rt, alloc0, rt.iterations_done - iters0, active, penalty
            )
