""":class:`HadarScheduler` — the online Algorithm 1.

Each round the scheduler

1. re-calibrates the dual price book (Eqs. 6-8) from the jobs currently
   in the system (their *remaining* work),
2. runs the ``DP_allocation`` dual subroutine over the queue — by default
   including the running jobs, so a running job whose allocation the new
   plan changes is preempted and moved ("If the allocation of the running
   job changes by computation, the job will be preempted and the new
   allocation will be in effect", Sec. IV-A-5),
3. returns the target allocation map; the engine applies the diff and the
   checkpoint-model overheads.

The candidate evaluation already charges the expected reallocation pause
against moved jobs and none against kept placements, which is what keeps
most rounds change-free (the paper observes ~30% of rounds change an
average job's allocation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core.dp import DPAllocator, DPConfig
from repro.core.find_alloc import AllocationCandidate, explain_alloc
from repro.core.pricing import PriceBook, PriceCalibrator, PricingConfig
from repro.core.round_context import RoundContext
from repro.core.utility import NormalizedThroughputUtility, Utility
from repro.sim.checkpoint import CheckpointModel, FixedDelayCheckpoint
from repro.sim.interface import Scheduler, SchedulerContext
from repro.sim.progress import JobRuntime

__all__ = ["HadarConfig", "HadarScheduler", "RoundAudit"]


@dataclass(frozen=True, slots=True)
class RoundAudit:
    """Primal/dual accounting of one scheduling round (Lemmas 1-2).

    ``primal_increment`` is the total utility of the jobs admitted this
    round (the primal objective's gain); ``dual_increment`` is the sum of
    their payoffs ``μ_j`` plus the capacity-weighted price rise — the
    dual objective's gain.  Lemma 2 guarantees
    ``primal_increment ≥ dual_increment / α`` whenever the price function
    satisfies the allocation-cost relationship; the theory test-suite
    verifies it on recorded runs.
    """

    now: float
    primal_increment: float
    dual_increment: float
    alpha: float
    jobs_admitted: int
    total_payoff: float
    total_cost: float


@dataclass(frozen=True)
class HadarConfig:
    """Everything tunable about Hadar."""

    utility: Utility = field(default_factory=NormalizedThroughputUtility)
    pricing: PricingConfig = field(default_factory=PricingConfig)
    dp: DPConfig = field(default_factory=DPConfig)
    checkpoint: CheckpointModel = field(default_factory=FixedDelayCheckpoint)
    """Used to *estimate* reallocation pauses inside candidate payoffs; the
    engine applies the actual overhead from its own model."""
    reallocate_running: bool = True
    """Re-plan running jobs each round (task-level preemption); when False
    only queued jobs are placed into the remaining free capacity."""
    record_audit: bool = False
    """Record per-round primal/dual increments (see :class:`RoundAudit`)."""


class HadarScheduler(Scheduler):
    """The paper's heterogeneity-aware online primal-dual scheduler."""

    round_based = True
    reacts_to_events = False

    def __init__(self, config: Optional[HadarConfig] = None):
        self.config = config or HadarConfig()
        self.last_alpha: float = 1.0
        """α from the most recent round's price book (theory/Fig. inspection)."""
        self.last_prices: Optional[PriceBook] = None
        self.last_chosen: dict[int, AllocationCandidate] = {}
        """Jobs admitted by the most recent round's DP, with their costed
        candidates (read by the invariant sanitizer's μ_j > 0 check)."""
        self.last_round_stats: dict[str, int] = {}
        """Hot-path counters of the most recent round's shared
        :class:`~repro.core.round_context.RoundContext` (FIND_ALLOC calls,
        cache hits, candidate/price evaluations); the engine aggregates
        them into :attr:`SimulationResult.hotpath_stats`."""
        self.audit: list[RoundAudit] = []
        """Per-round primal/dual records (populated when record_audit)."""
        self.last_calibration_s: float = 0.0
        """Wall-clock seconds the most recent round spent in Eqs. (6)-(8)
        (read by the engine's per-phase timing breakdown)."""
        self.trace_decisions: bool = False
        """Build :attr:`last_decision_trace` each round.  Set by the engine
        when a decision tracer is attached; off by default because the
        explain pass costs one extra ``FIND_ALLOC``-shaped sweep per job."""
        self.last_decision_trace: Optional[dict] = None
        """The most recent round's structured decision record — per-slot
        Eq. (5) prices and every queued job's outcome with its payoff μ_j,
        skip reason, and consolidated-vs-scattered breakdown.  ``None``
        unless :attr:`trace_decisions`; consumed by
        :class:`~repro.sim.phases.TracePhase`."""
        self._calibrator: Optional[PriceCalibrator] = None
        """Persistent across rounds when ``pricing.incremental``; rebuilt
        per round (every job dirty) in reference mode."""

    @property
    def name(self) -> str:
        return "hadar"

    def reset(self) -> None:
        self.last_alpha = 1.0
        self.last_prices = None
        self.last_chosen = {}
        self.last_round_stats = {}
        self.audit.clear()
        self.last_calibration_s = 0.0
        self.last_decision_trace = None
        self._calibrator = None

    # ---------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """Cross-round state: the persistent calibrator and the audit log.

        The ``last_*`` views (prices, chosen candidates, round stats,
        decision trace, calibration seconds) are per-round transients —
        every consumer reads them inside the same round that wrote them,
        and the next :meth:`schedule` call overwrites them before any
        other read — so they are waived from snapshots (see the REP012
        ``SnapshotSpec``), as is ``trace_decisions``, which the engine
        reconfigures from its tracer on restore.
        """
        return {
            "last_alpha": self.last_alpha,
            "calibrator": (
                None if self._calibrator is None else self._calibrator.state_dict()
            ),
            "audit": [
                {
                    "now": a.now,
                    "primal_increment": a.primal_increment,
                    "dual_increment": a.dual_increment,
                    "alpha": a.alpha,
                    "jobs_admitted": a.jobs_admitted,
                    "total_payoff": a.total_payoff,
                    "total_cost": a.total_cost,
                }
                for a in self.audit
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.last_alpha = float(state["last_alpha"])
        if state["calibrator"] is None:
            self._calibrator = None
        else:
            self._calibrator = PriceCalibrator(self.config.pricing)
            self._calibrator.load_state_dict(state["calibrator"])
        self.audit = [
            RoundAudit(
                now=float(a["now"]),
                primal_increment=float(a["primal_increment"]),
                dual_increment=float(a["dual_increment"]),
                alpha=float(a["alpha"]),
                jobs_admitted=int(a["jobs_admitted"]),
                total_payoff=float(a["total_payoff"]),
                total_cost=float(a["total_cost"]),
            )
            for a in state["audit"]
        ]

    # ------------------------------------------------------------------ API --
    def schedule(self, ctx: SchedulerContext) -> Mapping[int, Allocation]:
        cfg = self.config
        self.last_decision_trace = None
        if cfg.reallocate_running:
            queue: list[JobRuntime] = list(ctx.active)
            state = ctx.fresh_state()
            pinned: dict[int, Allocation] = {}
        else:
            queue = sorted(ctx.waiting, key=lambda rt: (rt.job.arrival_time, rt.job_id))
            state = ctx.occupied_state()
            pinned = {rt.job_id: rt.allocation for rt in ctx.running}

        if not queue:
            self.last_chosen = {}
            return pinned

        calib_start = time.perf_counter()
        if cfg.pricing.incremental:
            calibrator = self._calibrator
            if calibrator is None:
                calibrator = self._calibrator = PriceCalibrator(cfg.pricing)
        else:
            calibrator = PriceCalibrator(cfg.pricing)
        prices = calibrator.calibrate(
            jobs=queue,
            matrix=ctx.matrix,
            utility=cfg.utility,
            state=ctx.fresh_state(),
            now=ctx.now,
        )
        self.last_calibration_s = time.perf_counter() - calib_start
        self.last_prices = prices
        self.last_alpha = prices.alpha()

        round_ctx = RoundContext(
            prices=prices,
            matrix=ctx.matrix,
            cluster=ctx.cluster,
            utility=cfg.utility,
            now=ctx.now,
            delay_estimator=self._estimate_delay,
            state=state,
            caching=cfg.dp.round_caching,
        )
        allocator = DPAllocator(
            prices=prices,
            matrix=ctx.matrix,
            cluster=ctx.cluster,
            utility=cfg.utility,
            now=ctx.now,
            delay_estimator=self._estimate_delay,
            config=cfg.dp,
            context=round_ctx,
        )
        chosen = allocator.allocate(queue, state)
        self.last_chosen = dict(chosen)
        round_ctx.stats.calib_jobs = calibrator.last_jobs
        round_ctx.stats.calib_dirty = calibrator.last_dirty
        self.last_round_stats = round_ctx.stats.as_dict()

        if self.trace_decisions:
            self.last_decision_trace = self._build_decision_trace(
                queue, pinned, chosen, state, prices, round_ctx
            )

        if cfg.record_audit:
            fresh = ctx.fresh_state()
            price_rise = sum(
                (
                    prices.price(node_id, type_name, state)
                    - prices.price(node_id, type_name, fresh)
                )
                * fresh.capacity(node_id, type_name)
                for node_id, type_name in fresh.slots
            )
            total_payoff = sum(c.payoff for c in chosen.values())
            total_cost = sum(c.cost for c in chosen.values())
            self.audit.append(
                RoundAudit(
                    now=ctx.now,
                    primal_increment=sum(c.utility for c in chosen.values()),
                    dual_increment=total_payoff + price_rise,
                    alpha=prices.alpha(),
                    jobs_admitted=len(chosen),
                    total_payoff=total_payoff,
                    total_cost=total_cost,
                )
            )

        target = dict(pinned)
        for job_id, cand in chosen.items():
            target[job_id] = cand.allocation
        return target

    # ---------------------------------------------------------------- internal --
    def _estimate_delay(self, rt: JobRuntime, new: Allocation) -> float:
        return self.config.checkpoint.reallocation_delay(rt.job, rt.allocation, new)

    def _build_decision_trace(
        self,
        queue: list[JobRuntime],
        pinned: Mapping[int, Allocation],
        chosen: Mapping[int, AllocationCandidate],
        state: ClusterState,
        prices: PriceBook,
        round_ctx: RoundContext,
    ) -> dict:
        """One round's structured decision record (tracing only).

        Every quantity is re-derived at the round's *post-decision* state
        (``DP_allocation`` mutated ``state`` with the admitted gangs) —
        the prices are the end-of-round Eq. (5) values the next arrival
        would face.  For each admitted job the consolidated-vs-scattered
        breakdown is leave-one-out: its own gang is released on a
        throwaway probe copy and the families are costed there — "given
        everyone else's final placement, what did this job's
        alternatives pay?".  ``state`` itself is never written, so the
        audit block downstream reads the exact state it would have seen
        with tracing off (REP011 enforces this).
        """
        from repro.obs.tracer import placements_list

        jobs: list[dict] = []
        for rt in queue:
            record: dict = {
                "job_id": rt.job_id,
                "model": rt.job.model.name,
                "num_workers": rt.job.num_workers,
            }
            cand = chosen.get(rt.job_id)
            if cand is not None:
                probe = state.copy()
                probe.release(cand.allocation)
                explanation = explain_alloc(round_ctx, rt, probe)
                record["outcome"] = (
                    "kept" if cand.allocation == rt.allocation else "admitted"
                )
                record["mu"] = cand.payoff
                record["allocation"] = placements_list(cand.allocation)
                record["cost"] = cand.cost
                record["utility"] = cand.utility
                record["rate"] = cand.rate
                record["estimated_jct"] = cand.estimated_jct
                record["consolidated"] = (
                    len({n for (n, _) in cand.allocation.placements}) <= 1
                )
                record["breakdown"] = {
                    "consolidated_payoff": explanation.consolidated_payoff,
                    "scattered_payoff": explanation.scattered_payoff,
                    "current_payoff": explanation.current_payoff,
                }
            else:
                explanation = explain_alloc(round_ctx, rt, state)
                record["outcome"] = "skipped"
                # A positive-payoff gang existed at the final prices yet
                # the DP left the job out: the branch value said skip.
                record["reason"] = explanation.reason or "dp_skipped"
                breakdown = {
                    "consolidated_payoff": explanation.consolidated_payoff,
                    "scattered_payoff": explanation.scattered_payoff,
                    "current_payoff": explanation.current_payoff,
                }
                if any(v is not None for v in breakdown.values()):
                    record["breakdown"] = breakdown
            jobs.append(record)
        for job_id in sorted(pinned):
            alloc = pinned[job_id]
            if alloc:
                jobs.append(
                    {
                        "job_id": job_id,
                        "outcome": "kept",
                        "allocation": placements_list(alloc),
                    }
                )
        return {
            "jobs": jobs,
            "prices": prices.slot_prices(state),
            "alpha": prices.alpha(),
            "eta": prices.eta,
        }
