"""One-line constructors for the paper's alternative scheduling objectives.

Sec. III-A: "our optimization-based scheduling framework can express other
scheduling objectives" — average JCT, makespan, and finish-time fairness.
Each factory returns a :class:`~repro.core.scheduler.HadarScheduler` whose
utility encodes the objective; everything else (pricing, DP, preemption)
is unchanged, which is precisely the generality claim.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.scheduler import HadarConfig, HadarScheduler
from repro.core.utility import (
    NormalizedThroughputUtility,
    FinishTimeFairnessUtility,
    MakespanUtility,
)
from repro.workload.throughput import ThroughputMatrix, default_throughput_matrix

__all__ = ["hadar_for_objective", "OBJECTIVES"]

OBJECTIVES = ("jct", "makespan", "ftf")
"""Objectives expressible out of the box."""


def hadar_for_objective(
    objective: str,
    *,
    matrix: Optional[ThroughputMatrix] = None,
    base_config: Optional[HadarConfig] = None,
) -> HadarScheduler:
    """Build a Hadar scheduler steering toward ``objective``.

    ``"jct"`` minimizes average job completion time (effective-throughput
    utility, the paper's default); ``"makespan"`` minimizes the latest
    finish time; ``"ftf"`` optimizes Themis finish-time fairness.
    """
    base = base_config or HadarConfig()
    if objective == "jct":
        utility = NormalizedThroughputUtility()
    elif objective == "makespan":
        utility = MakespanUtility(matrix=matrix or default_throughput_matrix())
    elif objective == "ftf":
        utility = FinishTimeFairnessUtility(matrix=matrix or default_throughput_matrix())
    else:
        raise ValueError(
            f"unknown objective {objective!r}; choose one of {OBJECTIVES}"
        )
    return HadarScheduler(replace(base, utility=utility))
