"""``DP_allocation`` — the dual subroutine (Algorithm 2, lines 1-21).

Walks the queue job-by-job; at each job it branches on *allocate* (via
``FIND_ALLOC``, which already filters non-positive payoffs) versus *skip*,
and keeps the better branch.  Sub-problems are memoized on
``(queue index, canonical free-capacity vector)`` — the paper's "we always
save the result ... to avoid recomputing the same subproblem".

Two branch objectives are supported (see DESIGN.md §2, interpretation
notes):

* ``"payoff"`` (default): maximize total payoff ``Σ (U_j − cost_j)``,
  the objective the primal-dual derivation (Eq. 4) implies;
* ``"cost"``: the literal line-18 reading — keep the branch with smaller
  accumulated cost, counting an unallocated job's forgone utility as
  cost.  Retained for the ablation benchmark.

Beyond ``queue_limit`` jobs (or ``state_limit`` memo entries) the exact
recursion is replaced by a **payoff-density greedy**: jobs are ranked by
payoff per requested worker on the round-initial prices, then allocated
in rank order against the (exponentially rising) prices.  This is the
switch that gives the near-Gavel scaling of Fig. 7.

Every ``FIND_ALLOC`` call in one ``allocate()`` pass — the exact
recursion, the greedy ranking walk, and the greedy allocation walk —
shares one :class:`~repro.core.round_context.RoundContext`, so identical
``(job, free-capacity-vector)`` subproblems reached along different
branch orders (and re-reached by the greedy passes) are solved once.
``DPConfig.round_caching=False`` disables every cache layer for the
golden-parity reference mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.find_alloc import (
    AllocationCandidate,
    DelayEstimator,
    cached_find_alloc,
)
from repro.core.pricing import PriceBook
from repro.core.round_context import RoundContext
from repro.core.utility import Utility
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = ["DPConfig", "DPAllocator"]


@dataclass(frozen=True, slots=True)
class DPConfig:
    """Limits and objective selection for the dual subroutine."""

    queue_limit: int = 10
    """Largest queue solved with the exact memoized recursion."""
    state_limit: int = 8_000
    """Memo-size cap; overflow falls back to the greedy mid-flight."""
    branch_objective: str = "payoff"
    """``"payoff"`` (primal-dual reading) or ``"cost"`` (literal line 18)."""
    round_caching: bool = True
    """Share the round-scoped ``FIND_ALLOC`` caches; ``False`` runs the
    semantics-identical reference mode (golden-parity baseline)."""
    decision_deadline_s: Optional[float] = None
    """Wall-clock budget for one ``allocate()``'s exact DP search.  When
    the recursion runs past it, the search is abandoned and the
    payoff-density greedy answers instead (graceful degradation: a
    feasible decision on time beats an optimal one late).  ``None``
    (default) never expires — the historical behaviour."""

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.state_limit < 1:
            raise ValueError("state_limit must be positive")
        if self.decision_deadline_s is not None and self.decision_deadline_s <= 0:
            raise ValueError("decision_deadline_s must be positive when set")
        if self.branch_objective not in {"payoff", "cost"}:
            raise ValueError(
                f"branch_objective must be 'payoff' or 'cost', "
                f"got {self.branch_objective!r}"
            )


class _MemoOverflow(Exception):
    """Raised internally when the exact DP exceeds its state budget."""


class _DeadlineExpired(Exception):
    """Raised internally when the exact DP runs past its wall-clock budget."""


@dataclass
class DPAllocator:
    """One round's allocation solver (prices and time are frozen per round)."""

    prices: PriceBook
    matrix: ThroughputMatrix
    cluster: Cluster
    utility: Utility
    now: float
    delay_estimator: DelayEstimator
    config: DPConfig = DPConfig()
    context: Optional[RoundContext] = None
    """The shared round context; built per ``allocate()`` call when absent
    (a caller-supplied context must be fresh for the round)."""

    last_context: Optional[RoundContext] = None
    """The context the most recent ``allocate()`` ran with (stats access)."""

    def allocate(
        self, queue: Sequence[JobRuntime], state: ClusterState
    ) -> dict[int, AllocationCandidate]:
        """Admit and place jobs from ``queue``; mutates ``state`` with the result."""
        queue = list(queue)
        if not queue:
            return {}
        ctx = self.context
        if ctx is None:
            ctx = RoundContext(
                prices=self.prices,
                matrix=self.matrix,
                cluster=self.cluster,
                utility=self.utility,
                now=self.now,
                delay_estimator=self.delay_estimator,
                state=state,
                caching=self.config.round_caching,
            )
        self.last_context = ctx
        # Sanctioned timer-into-decision flow: the deadline fallback
        # trades determinism for bounded decision latency by design and
        # is off (None) in every reproducible configuration.
        deadline = (
            perf_counter() + self.config.decision_deadline_s  # repro-lint: disable=REP009
            if self.config.decision_deadline_s is not None
            else None
        )
        if len(queue) <= self.config.queue_limit:
            try:
                chosen = self._solve_exact(queue, state, ctx, deadline)
            except _DeadlineExpired:
                ctx.stats.deadline_hits += 1
                chosen = self._solve_greedy(queue, state.copy(), ctx)
            except _MemoOverflow:
                chosen = self._solve_greedy(queue, state.copy(), ctx)
            else:
                if self.config.branch_objective == "payoff":
                    # The recursion explores jobs in queue order; the greedy
                    # reorders by payoff density and occasionally finds a
                    # better packing.  Both are cheap at this queue size —
                    # keep whichever earns more.
                    alt = self._solve_greedy(queue, state.copy(), ctx)
                    if sum(c.payoff for c in alt.values()) > sum(
                        c.payoff for c in chosen.values()
                    ):
                        chosen = alt
        else:
            chosen = self._solve_greedy(queue, state.copy(), ctx)
        for cand in chosen.values():
            state.allocate(cand.allocation)
        return chosen

    # -- exact memoized recursion -------------------------------------------------
    def _solve_exact(
        self,
        queue: list[JobRuntime],
        state: ClusterState,
        ctx: RoundContext,
        deadline: Optional[float] = None,
    ) -> dict[int, AllocationCandidate]:
        memo: dict[
            tuple[int, tuple[int, ...]],
            tuple[float, dict[int, AllocationCandidate]],
        ] = {}
        maximize = self.config.branch_objective == "payoff"

        def recurse(
            idx: int, branch_state: ClusterState
        ) -> tuple[float, dict[int, AllocationCandidate]]:
            if idx >= len(queue) or branch_state.is_full():
                return 0.0, {}
            if deadline is not None and perf_counter() > deadline:
                raise _DeadlineExpired
            state_key = branch_state.key()
            key = (idx, state_key)
            hit = memo.get(key)
            if hit is not None:
                return hit
            if len(memo) > self.config.state_limit:
                raise _MemoOverflow

            rt = queue[idx]
            # Branch 1: skip this job.
            skip_value, skip_plan = recurse(idx + 1, branch_state)
            if not maximize:
                # Literal cost objective: an unserved job forfeits its utility.
                skip_value = skip_value + self._forgone_utility(rt)
            best = (skip_value, skip_plan)

            # Branch 2: allocate via FIND_ALLOC (through the round caches;
            # the DP memo key already carries the free-capacity vector).
            cand = cached_find_alloc(ctx, rt, branch_state, state_key=state_key)
            if cand is not None:
                sub_state = branch_state.copy()
                sub_state.allocate(cand.allocation)
                sub_value, sub_plan = recurse(idx + 1, sub_state)
                take_value = (
                    cand.payoff + sub_value if maximize else cand.cost + sub_value
                )
                better = take_value > best[0] if maximize else take_value < best[0]
                if better:
                    plan = dict(sub_plan)
                    plan[rt.job_id] = cand
                    best = (take_value, plan)

            memo[key] = best
            return best

        _, plan = recurse(0, state)
        return plan

    def _forgone_utility(self, rt: JobRuntime) -> float:
        """Cost-objective surrogate for leaving a job unserved this round."""
        model = rt.job.model.name
        best = self.matrix.max_rate(model)
        jct = (
            max(self.now - rt.job.arrival_time, 0.0)
            + rt.remaining_iterations / (best * rt.job.num_workers)
        )
        return self.utility.value_for(rt, jct, self.now)

    # -- payoff-density greedy -------------------------------------------------
    def _solve_greedy(
        self, queue: list[JobRuntime], state: ClusterState, ctx: RoundContext
    ) -> dict[int, AllocationCandidate]:
        # Rank once on round-initial prices: payoff per requested worker.
        ranked: list[tuple[float, int, JobRuntime]] = []
        for rt in queue:
            cand = cached_find_alloc(ctx, rt, state)
            if cand is not None:
                density = cand.payoff / rt.job.num_workers
                ranked.append((-density, rt.job_id, rt))
        ranked.sort()

        chosen: dict[int, AllocationCandidate] = {}
        for _, _, rt in ranked:
            cand = cached_find_alloc(ctx, rt, state)
            if cand is None:
                continue  # prices rose past this job's payoff; filtered out
            state.allocate(cand.allocation)
            chosen[rt.job_id] = cand
        return chosen
