"""Dual resource prices — Eq. (5) with the calibration of Eqs. (6)-(8).

The price of a type-``r`` device on server ``h`` rises exponentially with
the fraction of that server's type-``r`` devices already committed in the
round:

    k_h^r(γ) = U_min^r · (U_max^r / U_min^r)^(γ / c_h^r)

starting at ``U_min^r`` (low enough to admit any job onto an idle server)
and reaching ``U_max^r`` at saturation (high enough that no job's payoff
stays positive).  ``U_max^r`` / ``U_min^r`` are the extreme per-worker
utilities achievable on type ``r`` across the queued workload (Eqs. 6-7),
with ``t_j^min`` / ``t_j^max`` the fastest/slowest gang completion times
(Eq. 8) and ``η`` the scaling factor that bounds the initial dual
objective (the competitive-ratio proof needs ``Σ_h Σ_r c_h^r / η ≤
t_j^max · W_j`` for all jobs).

A :class:`PriceBook` is immutable; the occupancy ``γ`` is read from the
:class:`~repro.cluster.state.ClusterState` the caller passes in, so the
DP's branch exploration needs no price mutation or rollback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.allocation import Allocation
from repro.cluster.state import ClusterState
from repro.core.utility import Utility
from repro.sim.progress import JobRuntime
from repro.workload.throughput import ThroughputMatrix

__all__ = ["PricingConfig", "PriceBook", "PriceCalibrator"]


@dataclass(frozen=True, slots=True)
class PricingConfig:
    """Calibration knobs (defaults follow the paper's analysis).

    Attributes
    ----------
    eta:
        The η of Eq. (7).  ``None`` auto-calibrates the smallest η
        satisfying the proof's premise (and at least 1).
    min_ratio:
        Lower clamp on ``U_max^r / U_min^r``; keeps the price curve
        strictly increasing even for degenerate single-job workloads.
    horizon_slack:
        Multiplier on the online horizon estimate ``T`` (the serial
        worst-case drain time of the current queue).
    """

    eta: float | None = None
    min_ratio: float = math.e
    horizon_slack: float = 1.0
    incremental: bool = True
    """Reuse Eq. (8) records across rounds via a persistent
    :class:`PriceCalibrator` (``False`` re-derives every job every round —
    the reference mode the parity suite pins the incremental path against;
    both produce byte-identical books)."""

    def __post_init__(self) -> None:
        if self.eta is not None and self.eta <= 0:
            raise ValueError("eta must be positive")
        if self.min_ratio <= 1.0:
            raise ValueError("min_ratio must exceed 1")
        if self.horizon_slack <= 0:
            raise ValueError("horizon_slack must be positive")


@dataclass(frozen=True)
class PriceBook:
    """Per-GPU-type price bounds; prices are evaluated against a state."""

    u_min: Mapping[str, float]
    u_max: Mapping[str, float]
    eta: float

    def __post_init__(self) -> None:
        for r, lo in self.u_min.items():
            hi = self.u_max.get(r, 0.0)
            if lo < 0 or hi < 0:
                raise ValueError(f"negative utility bound for type {r!r}")
            if lo > hi:
                raise ValueError(
                    f"U_min ({lo}) exceeds U_max ({hi}) for type {r!r}"
                )

    # -- Eq. (5) -----------------------------------------------------------
    def price_given(self, type_name: str, cap: int, free: int) -> float:
        """Unit price at an explicit occupancy ``γ = cap − free``.

        The price is a pure function of the committed fraction per slot,
        which is what lets :class:`~repro.core.round_context.RoundContext`
        memoize it per ``(slot, free count)`` across the DP recursion.
        """
        lo = self.u_min.get(type_name, 0.0)
        hi = self.u_max.get(type_name, 0.0)
        if hi <= 0.0:
            return 0.0  # no queued job can use this type; it is free
        if cap <= 0:
            return hi  # slot does not exist: prohibitively priced
        gamma = cap - free
        return lo * (hi / lo) ** (gamma / cap)

    def price(self, node_id: int, type_name: str, state: ClusterState) -> float:
        """Current unit price of a type-``type_name`` device on ``node_id``.

        ``γ`` is read off ``state`` as ``capacity − free``.
        """
        return self.price_given(
            type_name,
            state.capacity(node_id, type_name),
            state.free(node_id, type_name),
        )

    def cost_of(self, allocation: Allocation, state: ClusterState) -> float:
        """Σ price × count at the *pre-allocation* prices (Definition 1)."""
        return sum(
            self.price(node_id, type_name, state) * count
            for (node_id, type_name), count in allocation.placements.items()
        )

    def slot_prices(self, state: ClusterState) -> list[dict]:
        """Every (server, GPU-type) slot's current Eq. (5) price, sorted.

        The decision tracer's per-round price table: one entry per slot
        with its occupancy (``capacity``/``free``) and the resulting unit
        price.  Pure reads — safe to call at any point in a round.
        """
        out = []
        for node_id, type_name in sorted(state.slots):
            cap = state.capacity(node_id, type_name)
            free = state.free(node_id, type_name)
            out.append(
                {
                    "node": node_id,
                    "gpu_type": type_name,
                    "price": self.price_given(type_name, cap, free),
                    "free": free,
                    "capacity": cap,
                }
            )
        return out

    def alpha(self) -> float:
        """The competitive-ratio factor ``α = max_r(1, ln(U_max^r/U_min^r))``."""
        best = 1.0
        for r, hi in self.u_max.items():
            lo = self.u_min.get(r, 0.0)
            if lo > 0 and hi > lo:
                best = max(best, math.log(hi / lo))
        return best

    # -- Eqs. (6)-(8) -----------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        jobs: Sequence[JobRuntime],
        matrix: ThroughputMatrix,
        utility: Utility,
        state: ClusterState,
        now: float,
        config: PricingConfig = PricingConfig(),
    ) -> "PriceBook":
        """Build price bounds from the current workload (online Algorithm 1).

        Uses each job's *remaining* iterations so partially-trained jobs
        are priced by the work they still need.  ``T`` (the horizon at
        which a job earns its smallest utility) is estimated online as
        ``now + horizon_slack × Σ_j t_j^max`` — the serial worst-case
        drain time of the current queue on the slowest devices.

        This is the full-rescan entry point: a throwaway
        :class:`PriceCalibrator` with every job dirty.  Round-based
        callers that want the Eq. (8) records reused across rounds keep a
        calibrator of their own (see :class:`PriceCalibrator`); both
        routes run the same code and produce byte-identical books.
        """
        return PriceCalibrator(config).calibrate(jobs, matrix, utility, state, now)


class PriceCalibrator:
    """Round-over-round Eqs. (6)-(8) calibration with dirty-job reuse.

    A job's Eq. (8) record — ``t_j^max`` and the per-type ``t_j^min`` —
    is a pure function of its remaining iterations and gang size, so
    across rounds only the jobs whose remaining work actually moved (the
    ones that ran since the last call, plus fresh arrivals) are
    re-derived; everything queued reuses its record, making the per-round
    record upkeep O(changed jobs).  The *aggregation* over the records
    (the horizon ``T``, the η premise, and the ``U_min^r``/``U_max^r``
    folds) shifts every round as ``now`` advances, so it re-runs in the
    reference job order with the reference operations — which is what
    keeps the resulting book byte-identical to a from-scratch
    :meth:`PriceBook.calibrate` of the same queue.

    The calibrator assumes the slot universe and the throughput matrix
    are immutable for its lifetime (both hold during a simulation);
    :meth:`reset` clears everything for a new run.
    """

    __slots__ = ("config", "_types", "_model_rates", "_records", "last_jobs", "last_dirty")

    def __init__(self, config: PricingConfig = PricingConfig()):
        self.config = config
        self._types: list[str] | None = None
        # model -> (rate-by-type, min supported rate or None)
        self._model_rates: dict[str, tuple[dict[str, float], float | None]] = {}
        # job_id -> (remaining, W, t_max, {type: t_min_r})
        self._records: dict[int, tuple[float, int, float, dict[str, float]]] = {}
        self.last_jobs = 0
        """Usable jobs seen by the most recent :meth:`calibrate` call."""
        self.last_dirty = 0
        """How many of them needed their Eq. (8) record re-derived."""

    def reset(self) -> None:
        self._types = None
        self._model_rates.clear()
        self._records.clear()
        self.last_jobs = 0
        self.last_dirty = 0

    # -- engine snapshot support ----------------------------------------------
    def state_dict(self) -> dict:
        """The cross-round Eq. (8) record cache, insertion-ordered.

        ``_model_rates`` is deliberately *not* captured: it is a pure
        deterministic cache over the immutable throughput matrix and
        repopulates identically on demand after restore (waived in the
        REP012 ``SnapshotSpec``).
        """
        return {
            "types": None if self._types is None else list(self._types),
            "records": [
                [job_id, rec[0], rec[1], rec[2], dict(rec[3])]
                for job_id, rec in self._records.items()
            ],
            "last_jobs": self.last_jobs,
            "last_dirty": self.last_dirty,
        }

    def load_state_dict(self, state: dict) -> None:
        types = state["types"]
        self._types = None if types is None else [str(t) for t in types]
        self._model_rates.clear()
        self._records = {
            int(job_id): (
                float(remaining),
                int(w),
                float(t_max),
                {str(t): float(v) for t, v in t_min.items()},
            )
            for job_id, remaining, w, t_max, t_min in state["records"]
        }
        self.last_jobs = int(state["last_jobs"])
        self.last_dirty = int(state["last_dirty"])

    def _rates_for(self, matrix: ThroughputMatrix, model: str, types: list[str]):
        entry = self._model_rates.get(model)
        if entry is None:
            by_type = {t: matrix.rate(model, t) for t in types}
            supported = [by_type[t] for t in types if matrix.supports(model, t)]
            entry = (by_type, min(supported) if supported else None)
            self._model_rates[model] = entry
        return entry

    def calibrate(
        self,
        jobs: Sequence[JobRuntime],
        matrix: ThroughputMatrix,
        utility: Utility,
        state: ClusterState,
        now: float,
    ) -> PriceBook:
        config = self.config
        types = self._types
        if types is None:
            types = self._types = sorted({t for (_, t) in state.slots})
        usable = [rt for rt in jobs if rt.remaining_iterations > 0]
        self.last_jobs = len(usable)
        self.last_dirty = 0
        if not usable:
            zero = {t: 0.0 for t in types}
            return PriceBook(u_min=zero, u_max=dict(zero), eta=1.0)

        # t_j^min / t_j^max per job (Eq. 8), restricted to present types.
        # Records carry over while (remaining, W) is unchanged; rebuilding
        # the mapping each round drops records of departed jobs.
        records = self._records
        fresh: dict[int, tuple[float, int, float, dict[str, float]]] = {}
        t_max: dict[int, float] = {}
        for rt in usable:
            job = rt.job
            remaining = rt.remaining_iterations
            w = job.num_workers
            rec = records.get(rt.job_id)
            if rec is None or rec[0] != remaining or rec[1] != w:
                self.last_dirty += 1
                model = job.model.name
                by_type, min_rate = self._rates_for(matrix, model, types)
                if min_rate is None:
                    raise ValueError(
                        f"job {rt.job_id} ({model}) runs on no GPU type in the cluster"
                    )
                t_min = {
                    r: remaining / (w * rate)
                    for r, rate in by_type.items()
                    if rate > 0.0
                }
                rec = (remaining, w, remaining / (w * min_rate), t_min)
            fresh[rt.job_id] = rec
            t_max[rt.job_id] = rec[2]
        self._records = fresh

        horizon = now + config.horizon_slack * sum(t_max.values())

        # η (auto): smallest value satisfying Σ_h Σ_r c_h^r / η ≤ t_j^max W_j ∀j.
        if config.eta is not None:
            eta = config.eta
        else:
            total_capacity = state.total_capacity()
            eta = max(
                (
                    total_capacity / (t_max[rt.job_id] * rt.job.num_workers)
                    for rt in usable
                ),
                default=1.0,
            )
            eta = max(eta, 1.0)

        u_max: dict[str, float] = {}
        u_min: dict[str, float] = {}
        for r in types:
            hi = 0.0
            lo = math.inf
            for rt in usable:
                job = rt.job
                # Fastest completion *using type r*: full gang of type r
                # (absent from the record when the type is unusable).
                t_min_r = fresh[rt.job_id][3].get(r)
                if t_min_r is None:
                    continue
                jct_best = max(now - job.arrival_time, 0.0) + t_min_r
                hi = max(hi, utility.value_for(rt, jct_best, now) / job.num_workers)
                # Smallest utility: the job drags on until the horizon.
                jct_worst = max(horizon - job.arrival_time, jct_best)
                lo = min(
                    lo,
                    utility.value_for(rt, jct_worst, now)
                    / (t_max[job.job_id] * job.num_workers),
                )
            if hi <= 0.0 or not math.isfinite(lo):
                u_max[r] = 0.0
                u_min[r] = 0.0
                continue
            lo = lo / (4.0 * eta)
            # Keep the price curve strictly increasing (α ≥ 1 regime).
            lo = min(lo, hi / config.min_ratio)
            lo = max(lo, 1e-300)
            u_max[r] = hi
            u_min[r] = lo
        return PriceBook(u_min=u_min, u_max=u_max, eta=eta)
