"""Hadar — the paper's contribution.

The online primal-dual scheduler of Sec. III:

* :mod:`repro.core.utility` — job utility functions ``U_j(·)`` (effective
  throughput by default; makespan- and fairness-oriented variants express
  the paper's "other scheduling policies");
* :mod:`repro.core.pricing` — the dual resource prices ``k_h^r(t)`` of
  Eq. (5) with the ``U_max^r`` / ``U_min^r`` calibration of Eqs. (6)-(8);
* :mod:`repro.core.find_alloc` — the ``FIND_ALLOC`` subroutine: candidate
  consolidated and cross-server task-level allocations, costed against the
  price book, admitting a job only at positive payoff;
* :mod:`repro.core.dp` — the ``DP_allocation`` dual subroutine
  (Algorithm 2): exact memoized include/exclude recursion for small
  queues, payoff-density greedy beyond a threshold;
* :mod:`repro.core.round_context` — the round-scoped allocation engine:
  per-round frozen lookup tables, incremental pricing, candidate
  memoization, and the shared ``FIND_ALLOC`` result cache (see
  ``docs/performance.md``);
* :mod:`repro.core.scheduler` — :class:`HadarScheduler`, the online
  Algorithm 1 loop;
* :mod:`repro.core.policies` — one-line constructors binding Hadar to the
  paper's alternative objectives.
"""

from repro.core.dp import DPAllocator, DPConfig
from repro.core.estimator import ProfilingScheduler, ThroughputEstimator
from repro.core.find_alloc import AllocationCandidate, cached_find_alloc, find_alloc
from repro.core.pricing import PriceBook, PricingConfig
from repro.core.round_context import RoundContext, RoundStats
from repro.core.scheduler import HadarConfig, HadarScheduler
from repro.core.policies import hadar_for_objective
from repro.core.utility import (
    EffectiveThroughputUtility,
    NormalizedThroughputUtility,
    FinishTimeFairnessUtility,
    MakespanUtility,
    Utility,
)

__all__ = [
    "AllocationCandidate",
    "DPAllocator",
    "DPConfig",
    "EffectiveThroughputUtility",
    "FinishTimeFairnessUtility",
    "HadarConfig",
    "HadarScheduler",
    "MakespanUtility",
    "NormalizedThroughputUtility",
    "PriceBook",
    "PricingConfig",
    "ProfilingScheduler",
    "RoundContext",
    "RoundStats",
    "ThroughputEstimator",
    "Utility",
    "cached_find_alloc",
    "find_alloc",
    "hadar_for_objective",
]
