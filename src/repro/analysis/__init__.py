"""Scheduler correctness analysis: static lint pass + runtime sanitizer.

Two coordinated layers guard the invariants the reproduction's
correctness rests on (see ``docs/analysis.md``):

* :mod:`repro.analysis.lint` — a custom AST linter with
  scheduler-specific rules (float equality on prices/payoffs, unseeded
  randomness in deterministic paths, mutable defaults, unordered set
  iteration feeding allocation decisions, swallowed exceptions).
  Runnable as ``python -m repro.analysis.lint src/``.
* :mod:`repro.analysis.sanitizer` — an opt-in
  :class:`~repro.analysis.sanitizer.InvariantSanitizer` that checks,
  every scheduling round, capacity conservation per (server, GPU-type),
  gang completeness, dual-price bounds (Eqs. 5-8), positive admission
  payoffs, and the Lemma-2 primal/dual increment relationship.

Submodules are re-exported lazily so ``python -m repro.analysis.lint``
does not import the module twice (once via the package, once as
``__main__``).
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.analysis.lint import Finding, lint_paths, lint_source
    from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolation

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "InvariantSanitizer",
    "InvariantViolation",
]

_LINT_NAMES = {"Finding", "lint_paths", "lint_source"}
_SANITIZER_NAMES = {"InvariantSanitizer", "InvariantViolation"}


def __getattr__(name: str):
    if name in _LINT_NAMES:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _SANITIZER_NAMES:
        from repro.analysis import sanitizer

        return getattr(sanitizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
