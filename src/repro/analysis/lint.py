"""Scheduler-specific static analysis (the REPxxx rules).

A small AST linter tuned to the failure modes that corrupt scheduling
reproductions silently: float drift crossing an exact comparison,
unseeded randomness breaking replay, hash-order nondeterminism feeding
an allocation decision, and swallowed exceptions hiding protocol
violations.  Generic style is left to ``ruff``; these rules encode
*domain* knowledge (see ``docs/analysis.md`` for the rule catalogue and
the paper invariants behind them).

Usage::

    python -m repro.analysis.lint src/            # human output, exit 1 on findings
    python -m repro.analysis.lint --json src/     # machine output
    python -m repro.analysis.lint --fix src/      # auto-wrap REP004 iterables

``--fix`` rewrites the *mechanical* REP004 findings in place: the flagged
set-typed iterable is wrapped in ``sorted(...)``, preserving all other
formatting.  Only REP004 carries a fix — the other rules require a
judgement call (tolerance choice, seeding strategy, handler design).

Per-line suppression, with the rule id spelled out so the waiver is
auditable::

    return bool(np.all(curve == 0.0))  # repro-lint: disable=REP001

Each rule is a :class:`LintRule` subclass registered in
:data:`ALL_RULES`; all active rules share one AST walk per file.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "Fix",
    "LintRule",
    "FloatEqualityRule",
    "NondeterminismRule",
    "MutableDefaultRule",
    "UnorderedIterationRule",
    "SilentExceptionRule",
    "UnorderedFloatSumRule",
    "PrintInLibraryRule",
    "UnseededRNGRule",
    "ALL_RULES",
    "apply_fixes",
    "fix_paths",
    "lint_source",
    "lint_paths",
    "main",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")

_DETERMINISTIC_PATHS = ("repro/core", "repro/sim", "repro/cluster", "repro/faults")
"""Replay-critical subtrees: the library half of REP002's scope."""

_TEST_PATHS = ("tests/",)
"""The test suite: also REP002 scope — a test drawing from an unseeded
stream or the wall clock is flaky by construction, and fixture noise
defeats the byte-parity assertions the suite exists for.  Intentional
nondeterminism in fixtures carries an inline waiver."""

_ENGINE_PATHS = _DETERMINISTIC_PATHS + ("repro/baselines",)
"""Engine/scheduler decision paths: REP005's scope."""


@dataclass(frozen=True, slots=True)
class Fix:
    """A mechanical repair: wrap one source span in ``sorted(...)``.

    The span is the flagged iterable *expression* (1-based line, 0-based
    column, exclusive end — exactly the AST's position attributes), so
    inserting ``sorted(`` before it and ``)`` after it is always valid
    Python and touches nothing else on the line.
    """

    line: int
    col: int
    end_line: int
    end_col: int


def _fix_span(node: ast.AST) -> Optional[Fix]:
    """The wrap-in-``sorted`` span for an iterable expression node."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return Fix(
        line=node.lineno,
        col=node.col_offset,
        end_line=end_line,
        end_col=end_col,
    )


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    fix: Optional[Fix] = None
    """Attached when the violation has a formatting-preserving mechanical
    repair (currently only REP004's ``sorted(...)`` wrap)."""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fixable": self.fix is not None,
        }


class LintRule:
    """Base class: one REPxxx rule.

    Subclasses override the ``visit_*`` hooks they care about; the
    shared :class:`_Walker` calls every active rule's hooks during a
    single AST traversal.  ``applies_to`` restricts a rule to path
    fragments (POSIX style); ``None`` means every linted file.
    """

    rule_id: str = "REP000"
    applies_to: Optional[tuple[str, ...]] = None

    def applies(self, path: str) -> bool:
        if self.applies_to is None:
            return True
        posix = path.replace("\\", "/")
        return any(fragment in posix for fragment in self.applies_to)

    def begin_module(self, tree: ast.Module, ctx: "_FileContext") -> None:
        """Per-file prepass (import aliases, scope analysis)."""

    def visit(self, node: ast.AST, ctx: "_FileContext") -> None:
        """Called for every node in the tree."""


class _FileContext:
    """Mutable per-file state shared by the rules during one walk."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.findings: list[Finding] = []
        self.suppressed = _parse_suppressions(source)

    def report(
        self,
        node: ast.AST,
        rule: LintRule,
        message: str,
        fix: Optional[Fix] = None,
    ) -> None:
        line = getattr(node, "lineno", 0)
        waived = self.suppressed.get(line)
        if waived is not None and ("all" in waived or rule.rule_id in waived):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule=rule.rule_id,
                message=message,
                fix=fix,
            )
        )


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids waived by a ``repro-lint`` comment."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
            out[lineno] = ids
    return out


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #

def _dotted_name(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Local alias -> canonical dotted module/name path.

    Covers ``import numpy as np`` (np -> ("numpy",)), ``import time as
    _time``, and ``from time import time`` (time -> ("time", "time")).
    """
    aliases: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = tuple(
                    alias.name.split(".")
                ) if alias.asname else (alias.name.split(".")[0],)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            base = tuple(node.module.split("."))
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = base + (alias.name,)
    return aliases


def _canonical(node: ast.AST, aliases: dict[str, tuple[str, ...]]) -> Optional[tuple[str, ...]]:
    """Resolve a call target through the module's import aliases."""
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    head, rest = dotted[0], dotted[1:]
    return aliases.get(head, (head,)) + rest


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


# --------------------------------------------------------------------------- #
# REP001 — float equality on scheduler quantities
# --------------------------------------------------------------------------- #

class FloatEqualityRule(LintRule):
    """``==`` / ``!=`` against float literals or price/payoff-like names.

    Prices, payoffs, throughputs, and utilities are all products of float
    integration; exact comparison flips on the last bit and silently
    changes an admission decision.  Use :func:`math.isclose` or an
    explicit tolerance, or suppress with a justification.
    """

    rule_id = "REP001"

    _FLOATY = frozenset(
        {
            "price", "prices", "payoff", "payoffs", "throughput",
            "throughputs", "utility", "utilities", "cost", "costs", "jct",
        }
    )

    @classmethod
    def _is_floaty_name(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr.lower() in cls._FLOATY
        if isinstance(node, ast.Name):
            return node.id.lower() in cls._FLOATY
        return False

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(_is_float_constant(o) for o in (left, right)) or any(
                self._is_floaty_name(o) for o in (left, right)
            ):
                ctx.report(
                    node,
                    self,
                    "float equality comparison on a scheduler quantity; "
                    "use math.isclose / an explicit tolerance",
                )
                return


# --------------------------------------------------------------------------- #
# REP002 — nondeterminism in replay-critical paths
# --------------------------------------------------------------------------- #

class NondeterminismRule(LintRule):
    """Unseeded RNGs and wall-clock reads inside ``core``/``sim``/``cluster``.

    Replayability (bit-identical reruns, the property Gavel-style systems
    audit regressions with) requires every random draw to flow from a
    seeded ``numpy.random.Generator`` and every timestamp from simulated
    time or a monotonic measurement clock.
    """

    rule_id = "REP002"
    applies_to = _DETERMINISTIC_PATHS + _TEST_PATHS

    _NUMPY_LEGACY = frozenset(
        {
            "rand", "randn", "randint", "random", "random_sample", "choice",
            "shuffle", "permutation", "seed", "uniform", "normal",
            "exponential", "poisson",
        }
    )

    def begin_module(self, tree: ast.Module, ctx: _FileContext) -> None:
        self._aliases = _import_aliases(tree)

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, ast.Call):
            return
        target = _canonical(node.func, self._aliases)
        if target is None:
            return
        if target == ("time", "time"):
            ctx.report(
                node,
                self,
                "wall-clock time.time() in a deterministic path; use simulated "
                "time, or time.monotonic()/perf_counter() for measurements",
            )
        elif target[0] == "random" and len(target) == 2:
            ctx.report(
                node,
                self,
                f"stdlib random.{target[1]}() draws from shared global state; "
                "use a seeded numpy.random.Generator",
            )
        elif target == ("numpy", "random", "default_rng"):
            if not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                ctx.report(
                    node,
                    self,
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic across replays",
                )
        elif (
            len(target) == 3
            and target[:2] == ("numpy", "random")
            and target[2] in self._NUMPY_LEGACY
        ):
            ctx.report(
                node,
                self,
                f"legacy numpy.random.{target[2]}() uses hidden global state; "
                "use a seeded numpy.random.Generator",
            )


# --------------------------------------------------------------------------- #
# REP003 — mutable default arguments
# --------------------------------------------------------------------------- #

class MutableDefaultRule(LintRule):
    """``def f(x=[])`` — the default is shared across calls."""

    rule_id = "REP003"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name is not None and name[-1] in self._MUTABLE_CALLS
        return False

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        args = node.args
        for default in [*args.defaults, *[d for d in args.kw_defaults if d]]:
            if self._is_mutable(default):
                ctx.report(
                    default,
                    self,
                    "mutable default argument is shared across calls; "
                    "default to None (or a dataclass field factory)",
                )


# --------------------------------------------------------------------------- #
# REP004 — unordered set iteration feeding decisions
# --------------------------------------------------------------------------- #

def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/module scope without descending into nested defs."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class UnorderedIterationRule(LintRule):
    """Iterating a set where the order can leak into an allocation.

    Set iteration order depends on insertion history and (for strings)
    ``PYTHONHASHSEED``; a tie broken by "whichever came out of the set
    first" makes two identical runs disagree on a placement.  Wrap the
    iterable in ``sorted(...)`` — or suppress with the argument for why
    order provably cannot matter.

    Detected per scope: iteration (``for``, comprehensions, ``min``/
    ``max`` with a ``key=``) over a set display/comprehension, a
    ``set()``/``frozenset()`` call, or a local name bound to one.
    Comprehensions feeding directly into order-insensitive reducers
    (``len``/``any``/``all``/``min``/``max`` without key, ``sorted``,
    ``set``/``frozenset``) are exempt.
    """

    rule_id = "REP004"

    _ORDER_FREE = frozenset(
        {"len", "any", "all", "min", "max", "sorted", "set", "frozenset"}
    )

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name is not None and name[-1] in {"set", "frozenset"}
        return False

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        name = _dotted_name(node)
        return name is not None and name[-1] in {
            "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
        }

    @classmethod
    def _set_names(cls, scope: ast.AST) -> set[str]:
        """Local names bound to set-typed values inside one scope."""
        names: set[str] = set()
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Assign) and cls._is_set_expr(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if (node.value is not None and cls._is_set_expr(node.value)) or (
                    cls._is_set_annotation(node.annotation)
                ):
                    names.add(node.target.id)
        return names

    def _flags(self, node: ast.AST, set_names: set[str]) -> bool:
        if self._is_set_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        set_names = self._set_names(node)

        exempt_comps: set[int] = set()
        for sub in _scope_nodes(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in self._ORDER_FREE
                and not any(kw.arg == "key" for kw in sub.keywords)
            ):
                for arg in sub.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        exempt_comps.add(id(arg))

        for sub in _scope_nodes(node):
            if isinstance(sub, ast.For) and self._flags(sub.iter, set_names):
                ctx.report(
                    sub,
                    self,
                    "for-loop over an unordered set; wrap in sorted(...) to "
                    "keep decisions replay-deterministic",
                    fix=_fix_span(sub.iter),
                )
            elif isinstance(
                sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ) and id(sub) not in exempt_comps:
                for gen in sub.generators:
                    if self._flags(gen.iter, set_names):
                        ctx.report(
                            sub,
                            self,
                            "comprehension over an unordered set; wrap in "
                            "sorted(...) to keep decisions replay-deterministic",
                            fix=_fix_span(gen.iter),
                        )
                        break
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in {"min", "max"}
                and any(kw.arg == "key" for kw in sub.keywords)
                and sub.args
                and self._flags(sub.args[0], set_names)
            ):
                ctx.report(
                    sub,
                    self,
                    f"{sub.func.id}(..., key=...) over an unordered set breaks "
                    "ties by hash order; sort the candidates first",
                    fix=_fix_span(sub.args[0]),
                )


# --------------------------------------------------------------------------- #
# REP005 — bare / swallowed exceptions in engine paths
# --------------------------------------------------------------------------- #

class SilentExceptionRule(LintRule):
    """``except:`` and ``except Exception: pass`` in scheduler/engine code.

    The engine's contract is to fail loudly on protocol violations
    (gang/capacity); a silent handler converts a scheduler bug into a
    corrupted experiment.
    """

    rule_id = "REP005"
    applies_to = _ENGINE_PATHS

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in handler.body
        )

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            ctx.report(
                node,
                self,
                "bare except catches SystemExit/KeyboardInterrupt and hides "
                "scheduler protocol errors; catch a specific exception",
            )
            return
        broad = _dotted_name(node.type)
        if broad is not None and broad[-1] in {"Exception", "BaseException"}:
            if self._swallows(node):
                ctx.report(
                    node,
                    self,
                    "broad exception handler silently swallows errors in an "
                    "engine path; re-raise, narrow, or log the failure",
                )


# --------------------------------------------------------------------------- #
# REP006 — float accumulation over unordered containers
# --------------------------------------------------------------------------- #

class UnorderedFloatSumRule(LintRule):
    """``sum()`` accumulating directly over an unordered container.

    Float addition is not associative: ``sum`` over a ``set`` or
    ``frozenset`` folds in hash/insertion order, so two replays of the
    same trace can disagree in the last ulp — enough to flip an admission
    threshold (REP001's failure mode, manufactured one step earlier).
    Sort the operands first (``sum(sorted(xs))``) or use ``math.fsum``,
    whose correctly-rounded result is order-independent by construction.

    Complements REP004, which covers explicit *iteration* (loops,
    comprehensions, keyed ``min``/``max``); a bare ``sum(prices)`` over a
    set-typed name iterates inside the builtin and slips REP004's net.
    Deliberately carries no ``--fix``: both repairs change the
    accumulated bits, and *which* order becomes canonical (sorted fold vs
    exact ``fsum``) is a judgement call per call site.
    """

    rule_id = "REP006"

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        set_names = UnorderedIterationRule._set_names(node)
        for sub in _scope_nodes(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "sum"
                and sub.args
            ):
                continue
            arg = sub.args[0]
            if UnorderedIterationRule._is_set_expr(arg) or (
                isinstance(arg, ast.Name) and arg.id in set_names
            ):
                ctx.report(
                    sub,
                    self,
                    "sum() over an unordered set accumulates floats in hash "
                    "order (non-associative); sort the operands — "
                    "sum(sorted(...)) — or use math.fsum",
                )


# --------------------------------------------------------------------------- #
# REP007 — print() in library code
# --------------------------------------------------------------------------- #

class PrintInLibraryRule(LintRule):
    """``print(...)`` in importable library code under ``src/repro``.

    Library output must flow through return values, the metrics registry,
    or the decision tracer — never stdout: a stray ``print`` in a hot
    path corrupts piped CLI output (``repro ... --json``), skews decision
    latency measurements, and cannot be disabled by callers.  Entry-point
    modules (``cli.py``, ``__main__.py``) are the designated rendering
    layer and are exempt by filename; anywhere else, route the message
    through :mod:`logging` or lift the rendering into the CLI — or
    suppress with the reason stdout is the contract (e.g. a console
    driver living outside the entry-point files).
    """

    rule_id = "REP007"
    applies_to = ("repro/",)

    _ENTRY_POINTS = frozenset({"cli.py", "__main__.py"})

    def applies(self, path: str) -> bool:
        if not super().applies(path):
            return False
        return path.replace("\\", "/").rsplit("/", 1)[-1] not in self._ENTRY_POINTS

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            ctx.report(
                node,
                self,
                "print() in library code writes to stdout unconditionally; "
                "return the data, use logging, or render in cli.py/__main__.py",
            )


# --------------------------------------------------------------------------- #
# REP008 — unseeded RNG construction in library code
# --------------------------------------------------------------------------- #

class UnseededRNGRule(LintRule):
    """Unseeded RNG construction anywhere under ``src/repro``.

    REP002 bans *every* global-state random call inside the
    replay-critical subtrees; this rule extends the narrower "no unseeded
    generator" slice of that contract to the rest of the library
    (workload synthesis, experiments, analysis helpers).  An
    ``np.random.default_rng()`` or ``random.Random()`` constructed
    without a seed gives a different stream per process, so the trace or
    experiment built from it cannot be regenerated — every generator
    must take its seed from config (cf. ``PhillyTraceConfig.seed``,
    ``FaultModel.seed``).  Scoped outside REP002's paths so a single
    call site is never double-flagged.
    """

    rule_id = "REP008"
    applies_to = ("repro/",)

    def applies(self, path: str) -> bool:
        if not super().applies(path):
            return False
        posix = path.replace("\\", "/")
        return not any(
            fragment in posix for fragment in NondeterminismRule.applies_to
        )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return False
        return not node.args or (
            isinstance(node.args[0], ast.Constant) and node.args[0].value is None
        )

    def begin_module(self, tree: ast.Module, ctx: _FileContext) -> None:
        self._aliases = _import_aliases(tree)

    def visit(self, node: ast.AST, ctx: _FileContext) -> None:
        if not isinstance(node, ast.Call):
            return
        target = _canonical(node.func, self._aliases)
        if target is None:
            return
        if target == ("numpy", "random", "default_rng") and self._unseeded(node):
            ctx.report(
                node,
                self,
                "numpy.random.default_rng() without a seed cannot be "
                "regenerated; thread a seed from config",
            )
        elif target == ("random", "Random") and self._unseeded(node):
            ctx.report(
                node,
                self,
                "random.Random() without a seed draws an OS-entropy stream; "
                "thread a seed from config",
            )


ALL_RULES: tuple[type[LintRule], ...] = (
    FloatEqualityRule,
    NondeterminismRule,
    MutableDefaultRule,
    UnorderedIterationRule,
    SilentExceptionRule,
    UnorderedFloatSumRule,
    PrintInLibraryRule,
    UnseededRNGRule,
)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #

def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[type[LintRule]]] = None,
) -> list[Finding]:
    """Lint one file's source; returns findings sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = _FileContext(path, source)
    active = [
        cls() for cls in (rules if rules is not None else ALL_RULES)
        if cls().applies(path)
    ]
    for rule in active:
        rule.begin_module(tree, ctx)
    for node in ast.walk(tree):
        for rule in active:
            rule.visit(node, ctx)
    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return ctx.findings


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[str | Path],
    rules: Optional[Sequence[type[LintRule]]] = None,
) -> list[Finding]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: list[Finding] = []
    for file in _iter_python_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), rules)
        )
    return findings


def apply_fixes(source: str, findings: Sequence[Finding]) -> tuple[str, int]:
    """Apply every attached :class:`Fix` to ``source``.

    Pure text surgery — ``sorted(`` / ``)`` are inserted at the recorded
    span boundaries, in reverse source order so earlier offsets stay
    valid; indentation, comments, and line breaks are untouched.  Returns
    ``(new_source, fixes_applied)``.
    """
    lines = source.splitlines(keepends=True)
    starts: list[int] = []
    offset = 0
    for text in lines:
        starts.append(offset)
        offset += len(text)

    inserts: list[tuple[int, int, str]] = []
    applied = 0
    for finding in findings:
        fix = finding.fix
        if fix is None:
            continue
        inserts.append((starts[fix.line - 1] + fix.col, 1, "sorted("))
        inserts.append((starts[fix.end_line - 1] + fix.end_col, 0, ")"))
        applied += 1
    # Reverse order keeps every pending offset stable; the priority field
    # opens nested same-offset spans outside-in.
    for pos, _, text in sorted(inserts, reverse=True):
        source = source[:pos] + text + source[pos:]
    return source, applied


def fix_paths(
    paths: Iterable[str | Path],
    rules: Optional[Sequence[type[LintRule]]] = None,
) -> tuple[int, int]:
    """Rewrite fixable findings in place; returns ``(fixes, files touched)``."""
    total = files = 0
    for file in _iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        fixed, applied = apply_fixes(source, lint_source(source, str(file), rules))
        if applied:
            file.write_text(fixed, encoding="utf-8")
            total += applied
            files += 1
    return total, files


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Scheduler-specific static analysis (REP001-REP008).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite mechanical REP004 findings in place (sorted(...) wrap)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such file or directory: {missing}")

    selected: Optional[list[type[LintRule]]] = None
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        selected = [cls for cls in ALL_RULES if cls.rule_id in wanted]
        unknown = wanted - {cls.rule_id for cls in selected}
        if unknown:
            parser.error(f"unknown rule ids: {sorted(unknown)}")

    if args.fix:
        fixed, files = fix_paths(args.paths, selected)
        if not args.json:
            # This module doubles as the linter's console entry point;
            # stdout IS its contract here.
            print(f"fixed {fixed} finding(s) in {files} file(s).")  # repro-lint: disable=REP007

    # With --fix, re-lint the rewritten tree: anything left needs a human.
    findings = lint_paths(args.paths, selected)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))  # repro-lint: disable=REP007
    else:
        for finding in findings:
            print(finding.format())  # repro-lint: disable=REP007
        if findings:
            print(f"\n{len(findings)} finding(s).")  # repro-lint: disable=REP007
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
