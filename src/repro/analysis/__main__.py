"""Consolidated analysis CLI: ``python -m repro.analysis <command>``.

``lint``
    the per-line REP001–REP008 rules (tier 1),
``flow``
    the whole-program REP009–REP011 passes (tier 2),
``fix``
    apply mechanical lint repairs in place (``lint --fix``).

Each subcommand delegates to its module's ``main`` with the remaining
arguments, so ``python -m repro.analysis.lint`` and ``python -m
repro.analysis.flow.runner`` stay usable directly.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.analysis import lint as _lint
from repro.analysis.flow import runner as _flow

_USAGE = """usage: python -m repro.analysis {lint,flow,fix} [options] [paths]

commands:
  lint   per-line rules REP001-REP008 (see: lint --help)
  flow   whole-program passes REP009-REP011 (see: flow --help)
  fix    apply mechanical lint repairs in place
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "lint":
        return _lint.main(rest)
    if command == "flow":
        return _flow.main(rest)
    if command == "fix":
        return _lint.main(["--fix", *rest])
    print(f"unknown command: {command}\n\n{_USAGE}", end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
