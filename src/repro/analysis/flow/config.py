"""Flow-analysis policy: what the interprocedural passes enforce.

Everything repo-specific lives here, declaratively — the pass engines
in :mod:`~repro.analysis.flow.taint` / ``memo`` / ``purity`` are
generic over a :class:`FlowConfig`.  :data:`DEFAULT_CONFIG` encodes the
contracts this repository's reproducibility claims rest on:

* **REP009 sinks** — scheduler decisions (every ``Scheduler.schedule``
  implementation, the ``find_alloc`` family, ``ClusterState``
  allocate/release arguments) admit *no* nondeterministic taint; trace
  emission admits ``measurement`` (monotonic latencies are part of the
  trace schema) but nothing else; regenerable report artifacts admit
  nothing, measurement included — their bytes must be reproducible.
* **REP010 memo specs** — one :class:`MemoSpec` per memo layer in
  ``core/round_context.py`` / ``core/find_alloc.py``.  Every parameter
  must be classified; ``guarded`` parameters carry the exact attribute
  read set the memo key captures, and ``invariant`` parameters are
  recorded human proof obligations (each ``note`` says why the key may
  omit them).  A spec that matches no function is itself a finding, so
  renames can't silently retire a contract.
* **REP011 contracts** — observer phases/classes must have no write
  effects on protected simulation state; mutator phases may reach it
  only through their sanctioned seam methods.

Specs are matched by trailing qualname components, so fixture packages
under ``tests/analysis/flow/`` exercise the same default policy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = [
    "CallSink",
    "DEFAULT_CONFIG",
    "FlowConfig",
    "FunctionContract",
    "MemoSpec",
    "PhaseContract",
    "ReturnSink",
    "SnapshotSpec",
    "TAINT_KINDS",
]

TAINT_KINDS = ("wallclock", "env", "rng", "measurement")
ALL_KINDS = frozenset(TAINT_KINDS)


@dataclass(frozen=True)
class ReturnSink:
    """A function whose *return value* is a determinism sink."""

    suffix: str
    forbids: tuple[str, ...]
    desc: str


@dataclass(frozen=True)
class CallSink:
    """A callee whose *arguments* are a determinism sink."""

    suffix: str
    forbids: tuple[str, ...]
    desc: str


@dataclass(frozen=True)
class MemoSpec:
    """Key-coherence contract for one memoized function.

    ``key_params`` are captured by the memo key (reads unrestricted);
    ``ignored_params`` are round-frozen machinery (the context/self);
    ``guarded`` parameters are mutable state whose reads must stay
    within the listed attribute/method names; ``invariant_params`` are
    explicitly waived, with the justification carried in ``note``.
    """

    function: str
    key_params: tuple[str, ...] = ()
    ignored_params: tuple[str, ...] = ()
    guarded: tuple[tuple[str, tuple[str, ...]], ...] = ()
    invariant_params: tuple[str, ...] = ()
    note: str = ""

    def guarded_map(self) -> dict[str, tuple[str, ...]]:
        return dict(self.guarded)


@dataclass(frozen=True)
class SnapshotSpec:
    """Snapshot-completeness contract for one engine-state class.

    REP012 enumerates every mutable attribute the class can carry —
    class-level declared fields (dataclass fields) plus every
    ``self.<attr>`` write in any method — and requires each to be either
    ``captured`` (serialized by the class's ``state_dict``) or
    ``waived`` (deliberately not snapshotted; ``note`` carries the
    justification, typically "per-round transient, every consumer reads
    it within the round that wrote it" or "pure cache, rebuilt on
    demand").  A spec naming a class or attribute that no longer exists
    is config drift and fires too — renames cannot silently retire a
    snapshot obligation.
    """

    cls: str
    captured: tuple[str, ...] = ()
    waived: tuple[str, ...] = ()
    note: str = ""


@dataclass(frozen=True)
class PhaseContract:
    """Write-effect contract for one phase/observer class."""

    cls: str
    role: str  # "observer" | "mutator"
    seams: tuple[str, ...] = ()


@dataclass(frozen=True)
class FunctionContract:
    """Named parameters of one function that must not be written."""

    suffix: str
    pure_params: tuple[str, ...]


@dataclass(frozen=True)
class FlowConfig:
    return_sinks: tuple[ReturnSink, ...] = ()
    call_sinks: tuple[CallSink, ...] = ()
    memo_specs: tuple[MemoSpec, ...] = ()
    contracts: tuple[PhaseContract, ...] = ()
    function_contracts: tuple[FunctionContract, ...] = ()
    protected_types: tuple[str, ...] = ()
    snapshot_specs: tuple[SnapshotSpec, ...] = ()

    def digest(self) -> str:
        """Stable hash folded into the incremental-cache fingerprint."""
        blob = json.dumps(
            {
                "return_sinks": [vars(s) for s in self.return_sinks],
                "call_sinks": [vars(s) for s in self.call_sinks],
                "memo_specs": [
                    {
                        "function": m.function,
                        "key": m.key_params,
                        "ignored": m.ignored_params,
                        "guarded": m.guarded,
                        "invariant": m.invariant_params,
                    }
                    for m in self.memo_specs
                ],
                "contracts": [vars(c) for c in self.contracts],
                "function_contracts": [
                    vars(c) for c in self.function_contracts
                ],
                "protected": self.protected_types,
                "snapshot_specs": [
                    {
                        "cls": s.cls,
                        "captured": s.captured,
                        "waived": s.waived,
                    }
                    for s in self.snapshot_specs
                ],
            },
            sort_keys=True,
            # frozensets must serialize in a hash-seed-independent order
            # or the digest (and the cache fingerprint) churns per run.
            default=sorted,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


#: Reads of a mutable ``ClusterState`` that every find-alloc memo key
#: captures: the free-capacity vector (``key``/``free``/``free_slots``)
#: and its derived fit predicate.  Anything else read off the state by a
#: memoized function is a cache-coherence bug.
_STATE_KEY_READS = ("key", "free", "free_slots", "can_fit")

DEFAULT_CONFIG = FlowConfig(
    return_sinks=(
        ReturnSink(
            suffix=".schedule",
            forbids=TAINT_KINDS,
            desc="scheduler decision (Scheduler.schedule return)",
        ),
        ReturnSink(
            suffix="find_alloc.find_alloc",
            forbids=TAINT_KINDS,
            desc="allocation decision (find_alloc return)",
        ),
        ReturnSink(
            suffix="find_alloc.cached_find_alloc",
            forbids=TAINT_KINDS,
            desc="allocation decision (cached_find_alloc return)",
        ),
        ReturnSink(
            suffix="reporting.generate_report",
            forbids=TAINT_KINDS,
            desc="reproducible artifact (generated EXPERIMENTS report)",
        ),
    ),
    call_sinks=(
        CallSink(
            suffix="ClusterState.allocate",
            forbids=TAINT_KINDS,
            desc="simulation state mutation (ClusterState.allocate)",
        ),
        CallSink(
            suffix="ClusterState.release",
            forbids=TAINT_KINDS,
            desc="simulation state mutation (ClusterState.release)",
        ),
        CallSink(
            suffix="DecisionTracer.emit",
            forbids=("wallclock", "env", "rng"),
            desc="trace emission (DecisionTracer.emit)",
        ),
    ),
    memo_specs=(
        MemoSpec(
            function="RoundContext.price",
            key_params=("slot", "free"),
            ignored_params=("self",),
            note="Eq. (5) price is a pure function of (slot, free) given "
            "the round-frozen PriceBook on self.",
        ),
        MemoSpec(
            function="RoundContext.move_delay_for",
            key_params=("rt",),
            ignored_params=("self",),
            invariant_params=("picks",),
            note="find_alloc has always charged exactly one reallocation "
            "delay per (job, round) regardless of the candidate picks; "
            "the key omits picks by that documented contract (see the "
            "move_delay_for docstring). The estimator may only read the "
            "job, not the picks.",
        ),
        MemoSpec(
            function="find_alloc.cached_find_alloc",
            key_params=("rt", "state_key"),
            ignored_params=("ctx",),
            guarded=(("state", _STATE_KEY_READS),),
            note="Result cache keyed (job_id, state.key()); the search "
            "may read the state only through the free-capacity vector "
            "the key captures.",
        ),
        MemoSpec(
            function="find_alloc._search_cached",
            key_params=("rt", "state_key"),
            ignored_params=("ctx",),
            guarded=(("state", _STATE_KEY_READS),),
            note="Body of the (job_id, state.key()) result cache.",
        ),
        MemoSpec(
            function="find_alloc._generate_candidates",
            key_params=("w", "usable_desc", "state_key"),
            ignored_params=("ctx",),
            guarded=(("state", _STATE_KEY_READS),),
            invariant_params=("model", "rate_of"),
            note="Generation cache keyed (usable_desc, rate-rank "
            "signature, W, state_key). model/rate_of influence the "
            "result only through the captured usable order and rank "
            "signature — the PR 3 equivalence argument in the "
            "_generate_candidates docstring.",
        ),
    ),
    contracts=(
        PhaseContract(cls="TelemetryPhase", role="observer"),
        PhaseContract(cls="ClusterHealthPhase", role="observer"),
        PhaseContract(cls="SanitizerPhase", role="observer"),
        PhaseContract(cls="TracePhase", role="observer"),
        PhaseContract(cls="InvariantSanitizer", role="observer"),
        PhaseContract(cls="DecisionTracer", role="observer"),
        PhaseContract(
            cls="SchedulerPhase",
            role="mutator",
            seams=("invoke", "apply", "bookkeep_round"),
        ),
        PhaseContract(
            cls="FaultPhase",
            role="mutator",
            seams=("apply", "reload", "note_placement"),
        ),
    ),
    function_contracts=(
        FunctionContract(
            suffix="HadarScheduler._build_decision_trace",
            pure_params=("state",),
        ),
        FunctionContract(
            suffix="find_alloc.explain_alloc",
            pure_params=("rt", "state"),
        ),
    ),
    protected_types=(
        "ClusterState",
        "ProgressLedger",
        "EventKernel",
        "JobRuntime",
    ),
    snapshot_specs=(
        SnapshotSpec(
            cls="events.EventQueue",
            captured=("_heap", "_next_seq"),
            note="Heap array serialized verbatim (a captured heap is a "
            "valid heap; pops replay in original order) plus the push "
            "sequence counter.",
        ),
        SnapshotSpec(
            cls="kernel.EventKernel",
            captured=("_queue",),
            note="Delegates wholesale to EventQueue.state_dict.",
        ),
        SnapshotSpec(
            cls="progress.JobRuntime",
            captured=(
                "job", "state", "iterations_done", "allocation", "rate",
                "slowdown", "straggler_events", "checkpoint_iterations",
                "failures", "rollbacks", "rollback_seconds",
                "rollback_iterations", "resume_time", "last_integrated",
                "generation", "alloc_epoch", "first_start_time",
                "finish_time", "preemptions", "allocation_changes",
                "overhead_seconds", "attained_service", "waiting_seconds",
                "rounds_scheduled", "rounds_by_type", "history",
            ),
            note="Every mutable field, plus the immutable job spec so a "
            "runtime round-trips standalone.",
        ),
        SnapshotSpec(
            cls="progress.ProgressLedger",
            captured=("_dirty",),
            waived=(
                "runtimes", "allocation", "finish_time", "generation",
                "rate", "state",
            ),
            note="The runtimes table is owned (and captured, in insertion "
            "order) by the engine; the ledger snapshot is just the dirty "
            "set's mark order. The remaining names are writes that reach "
            "JobRuntime objects *through* local aliases of that table "
            "(finalize_completions' rt.state etc.) — captured on "
            "JobRuntime, not ledger state.",
        ),
        SnapshotSpec(
            cls="state.ClusterState",
            captured=("_capacity", "_free"),
            waived=("_order", "_index", "_vec", "_key_cache"),
            note="Capacity/free maps captured in insertion order (their "
            "dict order feeds free_by_type/used_by_type output order). "
            "_order/_index are the immutable slot universe (validated "
            "against the restoring cluster); _vec/_key_cache are derived "
            "caches rebuilt by load_state_dict.",
        ),
        SnapshotSpec(
            cls="pricing.PriceCalibrator",
            captured=("_types", "_records", "last_jobs", "last_dirty"),
            waived=("config", "_model_rates"),
            note="Eq. (8) records captured in insertion order. config is "
            "immutable; _model_rates is a pure deterministic cache over "
            "the immutable throughput matrix, rebuilt on demand.",
        ),
        SnapshotSpec(
            cls="scheduler.HadarScheduler",
            captured=("last_alpha", "_calibrator", "audit"),
            waived=(
                "config", "reacts_to_events", "round_based",
                "trace_decisions", "last_prices", "last_chosen",
                "last_round_stats", "last_decision_trace",
                "last_calibration_s",
            ),
            note="config/reacts_to_events/round_based are construction-"
            "time constants; trace_decisions is rewired by the engine at "
            "restore; the last_* fields are per-round transients — every "
            "consumer reads them within the round that wrote them.",
        ),
        SnapshotSpec(
            cls="scheduler.GavelScheduler",
            captured=("_cached_key", "_cached_matrix"),
            waived=(
                "config", "reacts_to_events", "round_based",
                "_solved_last_round", "last_round_stats",
            ),
            note="The solved LP matrix is captured (not just its key) so "
            "restore does not depend on solver determinism. "
            "_solved_last_round/last_round_stats are per-round "
            "transients.",
        ),
        SnapshotSpec(
            cls="tiresias.TiresiasScheduler",
            captured=("_demoted",),
            waived=("config", "reacts_to_events", "round_based",
                    "last_round_stats"),
            note="Only the demotion set survives rounds; the queues are "
            "recomputed from attained service each invocation.",
        ),
        SnapshotSpec(
            cls="random_sched.RandomScheduler",
            captured=("_rng",),
            waived=("_seed", "reacts_to_events", "round_based"),
            note="RNG position via bit_generator.state; the seed is "
            "construction-time config.",
        ),
        SnapshotSpec(
            cls="phase.FaultPhase",
            captured=("failed", "_taken", "stats", "rollback_seconds",
                      "rollback_iterations", "_partitions", "_stalled",
                      "_degraded", "_reloads"),
            waived=("model", "cluster", "emit", "sanitizer",
                    "matrix", "_schedules", "_max_time", "_fault_id_limit"),
            note="Every fault schedule is a pure function of (model|spec, "
            "cluster, max_time): epoch 0 is regenerated at construction "
            "and reloaded epochs are replayed from the captured _reloads "
            "stack (which also rebuilds _fault_id_limit) — outstanding "
            "FAULT events live in the kernel heap snapshot. "
            "emit/sanitizer/matrix are wiring the engine re-establishes.",
        ),
        SnapshotSpec(
            cls="telemetry.UtilizationRecorder",
            captured=("times", "used_total", "used_by_type",
                      "queue_times", "queue_depths"),
            note="All five step-function series, verbatim.",
        ),
        SnapshotSpec(
            cls="registry.MetricsRegistry",
            captured=("_metrics",),
            waived=("lock",),
            note="Full reconstructible state (state_dict, not the "
            "cumulative snapshot() rendering); histogram min/max travel "
            "as hex floats for the ±inf empty-series sentinels. The "
            "exposition lock is process-local wiring rebuilt at "
            "construction, never state.",
        ),
        SnapshotSpec(
            cls="sanitizer.InvariantSanitizer",
            captured=("rounds_checked", "_tiresias_seen", "violations"),
            waived=("mode", "abs_tol", "rel_tol"),
            note="mode/tolerances are construction-time config; "
            "violations round-trip as structured records.",
        ),
        SnapshotSpec(
            cls="phases.SchedulerPhase",
            captured=("decision_seconds", "hotpath_stats", "last_changes",
                      "last_queue_depth", "validator"),
            waived=(
                "scheduler", "cluster", "matrix", "round_length",
                "checkpoint", "on_place", "fault_phase", "capture_changes",
                "_nominal",
            ),
            note="Cross-round accumulators captured (validator via its "
            "rejections list). The waived names are construction wiring "
            "the engine re-creates identically at restore.",
        ),
        SnapshotSpec(
            cls="phases.PhaseTimings",
            captured=("decision_s", "integration_s", "repredict_s",
                      "event_dispatch_s", "calibration_s"),
            note="All five wall-clock buckets.",
        ),
        SnapshotSpec(
            cls="arrivals.SubmissionSource",
            captured=("_rng", "_next_job_id", "_emitted", "_clock"),
            waived=("jobs_per_hour", "max_jobs", "seed", "template"),
            note="RNG position + stream counters; rate/bound/seed/"
            "template are construction-time config.",
        ),
    ),
)
