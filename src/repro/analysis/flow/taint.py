"""REP009 — interprocedural determinism-taint analysis.

Values originating from wall-clock reads, environment lookups, or
unseeded RNG (see :data:`repro.analysis.flow.project.TAINT_SOURCES`)
are tracked through assignments, data flow into containers, returns,
and calls.  A finding fires when a tainted value reaches a sink the
:class:`~repro.analysis.flow.config.FlowConfig` declares: a scheduler
decision return, a ``ClusterState`` mutation argument, trace emission,
or a reproducible report artifact.  ``measurement`` taint (monotonic
timers) is a separate kind so trace latency fields stay sanctioned
while decisions and regenerable artifacts still reject it.

The engine runs two fixpoints over the call graph:

* *return taint*: the taint kinds a function's return value can carry,
  merged from its own sources and its callees' summaries;
* *param-to-sink chains*: parameters whose values can reach a sink in
  this function or any transitive callee — so taint introduced in one
  function and sunk three calls later is reported at the call site
  that connects them, with the full chain in the message.

Suppression reuses the linter's inline mechanism: a ``# repro-lint:
disable=REP009`` on the *source* line kills the taint at birth (the
sanctioned-seam pattern, e.g. the ``REPRO_SCALE`` preset selector), and
one on the sink line waives that sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.lint import Finding
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.project import (
    ArgInfo,
    CallFact,
    FunctionFacts,
    ProjectIndex,
)
from repro.analysis.flow.resolve import Resolver, short, suffix_match

__all__ = ["run_taint"]

RULE = "REP009"

Witness = tuple[str, str, int]  # (source desc, path, line)


@dataclass(frozen=True)
class SinkChain:
    """A path from a parameter to a configured sink."""

    forbids: frozenset[str]
    desc: str
    via: tuple[str, ...]


def _merge_kinds(
    into: dict[str, Witness], new: dict[str, Witness]
) -> bool:
    changed = False
    for kind, witness in new.items():
        if kind not in into:
            into[kind] = witness
            changed = True
    return changed


class _TaintEngine:
    def __init__(
        self, index: ProjectIndex, config: FlowConfig, resolver: Resolver
    ):
        self.index = index
        self.config = config
        self.resolver = resolver
        self.ret_kinds: dict[str, dict[str, Witness]] = {}
        self.param_sink: dict[str, dict[str, frozenset[SinkChain]]] = {}

    # -- per-function root taint ---------------------------------------------
    def _root_kinds(self, fn: FunctionFacts) -> dict[str, dict[str, Witness]]:
        facts_file = self.index.file_for(fn.qualname)
        path = facts_file.path if facts_file else "<unknown>"
        out: dict[str, dict[str, Witness]] = {}
        for src in fn.sources:
            if facts_file is not None and facts_file.suppressed(src.line, RULE):
                continue
            out[f"s:{src.index}"] = {src.kind: (src.desc, path, src.line)}
        for call in fn.calls:
            kinds: dict[str, Witness] = {}
            for callee in self.resolver.callees(fn, call):
                _merge_kinds(kinds, self.ret_kinds.get(callee, {}))
            if kinds:
                out[f"c:{call.index}"] = kinds
        return out

    def _kinds_of(
        self,
        roots: tuple[str, ...],
        root_kinds: dict[str, dict[str, Witness]],
    ) -> dict[str, Witness]:
        out: dict[str, Witness] = {}
        for root in roots:
            _merge_kinds(out, root_kinds.get(root, {}))
        return out

    @staticmethod
    def _arg_roots(arg: ArgInfo) -> tuple[str, ...]:
        return tuple(set(arg.id_roots) | set(arg.data_roots))

    # -- sinks ----------------------------------------------------------------
    def _call_sinks(
        self, fn: FunctionFacts, call: CallFact
    ) -> list[tuple[frozenset[str], str]]:
        """(forbids, desc) for every configured sink this call hits."""
        out: list[tuple[frozenset[str], str]] = []
        callees = self.resolver.callees(fn, call)
        names = set(callees)
        if call.func is not None:
            names.add(".".join(call.func))
        for sink in self.config.call_sinks:
            if any(suffix_match(name, sink.suffix) for name in names):
                out.append((frozenset(sink.forbids), sink.desc))
        return out

    def _return_sink(
        self, fn: FunctionFacts
    ) -> Optional[tuple[frozenset[str], str]]:
        for sink in self.config.return_sinks:
            if suffix_match(fn.qualname, sink.suffix):
                return (frozenset(sink.forbids), sink.desc)
        return None

    # -- fixpoint -------------------------------------------------------------
    def solve(self) -> None:
        functions = list(self.index.functions.values())
        for _ in range(max(4, len(functions))):
            changed = False
            for fn in functions:
                root_kinds = self._root_kinds(fn)
                ret = self.ret_kinds.setdefault(fn.qualname, {})
                for ret_fact in fn.returns:
                    if _merge_kinds(
                        ret, self._kinds_of(ret_fact.data_roots, root_kinds)
                    ):
                        changed = True
                sinks = self.param_sink.setdefault(fn.qualname, {})

                def add_chain(param: str, chain: SinkChain) -> None:
                    nonlocal changed
                    have = sinks.get(param, frozenset())
                    if chain not in have and len(have) < 8:
                        sinks[param] = have | {chain}
                        changed = True

                ret_sink = self._return_sink(fn)
                if ret_sink is not None:
                    forbids, desc = ret_sink
                    for ret_fact in fn.returns:
                        for root in ret_fact.data_roots:
                            if root.startswith("p:"):
                                add_chain(
                                    root[2:],
                                    SinkChain(forbids, desc, (fn.qualname,)),
                                )
                for call in fn.calls:
                    for forbids, desc in self._call_sinks(fn, call):
                        for arg in list(call.args) + [
                            a for _, a in call.kwargs
                        ]:
                            for root in self._arg_roots(arg):
                                if root.startswith("p:"):
                                    add_chain(
                                        root[2:],
                                        SinkChain(
                                            forbids, desc, (fn.qualname,)
                                        ),
                                    )
                    for callee in self.resolver.callees(fn, call):
                        callee_fn = self.index.functions.get(callee)
                        if callee_fn is None:
                            continue
                        callee_sinks = self.param_sink.get(callee, {})
                        if not callee_sinks:
                            continue
                        bound = self.resolver.bindings(call, callee_fn)
                        for q, chains in callee_sinks.items():
                            arg = bound.get(q)
                            if arg is None:
                                continue
                            for chain in chains:
                                if fn.qualname in chain.via:
                                    continue  # cycle guard
                                for root in self._arg_roots(arg):
                                    if root.startswith("p:"):
                                        add_chain(
                                            root[2:],
                                            SinkChain(
                                                chain.forbids,
                                                chain.desc,
                                                (fn.qualname,) + chain.via,
                                            ),
                                        )
            if not changed:
                return

    # -- findings -------------------------------------------------------------
    def findings(self) -> list[Finding]:
        out: dict[tuple, Finding] = {}

        def report(
            path: str,
            line: int,
            kinds: dict[str, Witness],
            forbids: frozenset[str],
            desc: str,
            via: tuple[str, ...] = (),
        ) -> None:
            facts = self.index.files.get(path)
            for kind in sorted(set(kinds) & forbids):
                if facts is not None and facts.suppressed(line, RULE):
                    continue
                src_desc, src_path, src_line = kinds[kind]
                chain = (
                    " via " + " -> ".join(short(q) for q in via)
                    if via
                    else ""
                )
                message = (
                    f"{kind} taint from {src_desc} "
                    f"({src_path}:{src_line}) reaches {desc}{chain}"
                )
                key = (path, line, kind, desc)
                if key not in out:
                    out[key] = Finding(
                        path=path, line=line, col=0, rule=RULE, message=message
                    )

        for fn in self.index.functions.values():
            facts_file = self.index.file_for(fn.qualname)
            path = facts_file.path if facts_file else "<unknown>"
            root_kinds = self._root_kinds(fn)
            if not root_kinds:
                continue
            ret_sink = self._return_sink(fn)
            if ret_sink is not None:
                forbids, desc = ret_sink
                for ret_fact in fn.returns:
                    kinds = self._kinds_of(ret_fact.data_roots, root_kinds)
                    report(path, ret_fact.line, kinds, forbids, desc)
            for call in fn.calls:
                for forbids, desc in self._call_sinks(fn, call):
                    for arg in list(call.args) + [a for _, a in call.kwargs]:
                        kinds = self._kinds_of(
                            self._arg_roots(arg), root_kinds
                        )
                        report(path, call.line, kinds, forbids, desc)
                for callee in self.resolver.callees(fn, call):
                    callee_fn = self.index.functions.get(callee)
                    if callee_fn is None:
                        continue
                    callee_sinks = self.param_sink.get(callee, {})
                    if not callee_sinks:
                        continue
                    bound = self.resolver.bindings(call, callee_fn)
                    for q, chains in callee_sinks.items():
                        arg = bound.get(q)
                        if arg is None:
                            continue
                        kinds = self._kinds_of(
                            self._arg_roots(arg), root_kinds
                        )
                        if not kinds:
                            continue
                        for chain in chains:
                            report(
                                path,
                                call.line,
                                kinds,
                                chain.forbids,
                                chain.desc,
                                chain.via,
                            )
        return sorted(
            out.values(), key=lambda f: (f.path, f.line, f.message)
        )


def run_taint(
    index: ProjectIndex,
    config: FlowConfig,
    resolver: Optional[Resolver] = None,
) -> list[Finding]:
    engine = _TaintEngine(index, config, resolver or Resolver(index))
    engine.solve()
    return engine.findings()
