"""REP011 — phase-purity checking via interprocedural write effects.

The pass infers, per function, the set of parameters whose object graph
the function can mutate: direct attribute/subscript assignments,
builtin mutator-method calls (``append``/``update``/…), and — through a
call-graph fixpoint — any callee that writes a parameter the caller
bound to its own.  Method calls are resolved through parameter
annotations and the ``self.<attr>`` types inferred from ``__init__``,
so ``self.sanitizer.on_round(state=state)`` inherits exactly what
``InvariantSanitizer.on_round`` does to ``state``.

Against those summaries it enforces the phase-pipeline contract from
``docs/simulator.md``: *observer* classes (``TelemetryPhase``,
``SanitizerPhase``, ``TracePhase``, the sanitizer and tracer
themselves) must have **no** write effects on protected simulation
state (``ClusterState``, ``ProgressLedger``, ``EventKernel``,
``JobRuntime``) reached through any parameter; *mutator* classes
(``SchedulerPhase``, ``FaultPhase``) may write protected state only in
their sanctioned seam methods and the private helpers reachable from
them inside the same class.  Function contracts additionally pin
individual diagnostic entry points (``explain_alloc``, the decision
trace builder) to read-only use of their state parameters.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lint import Finding
from repro.analysis.flow.config import FlowConfig, PhaseContract
from repro.analysis.flow.project import ClassFacts, ProjectIndex
from repro.analysis.flow.resolve import Resolver, find_matching, short

__all__ = ["run_purity"]

RULE = "REP011"

WriteWitness = tuple[str, str, int]  # (what, path, line)


class _EffectsEngine:
    """Transitive per-parameter write-effect summaries."""

    def __init__(self, index: ProjectIndex, resolver: Resolver):
        self.index = index
        self.resolver = resolver
        self.writes: dict[str, dict[str, WriteWitness]] = {}

    def solve(self) -> None:
        functions = list(self.index.functions.values())
        for fn in functions:
            facts_file = self.index.file_for(fn.qualname)
            path = facts_file.path if facts_file else "<unknown>"
            mine: dict[str, WriteWitness] = {}
            for write in fn.writes:
                what = ".".join(write.attrs) or "<object>"
                for root in write.roots:
                    if root.startswith("p:"):
                        mine.setdefault(
                            root[2:],
                            (f"{write.reason} of .{what}", path, write.line),
                        )
            self.writes[fn.qualname] = mine
        for _ in range(max(4, len(functions))):
            changed = False
            for fn in functions:
                facts_file = self.index.file_for(fn.qualname)
                path = facts_file.path if facts_file else "<unknown>"
                mine = self.writes[fn.qualname]
                for call in fn.calls:
                    for callee in self.resolver.callees(fn, call):
                        callee_fn = self.index.functions.get(callee)
                        if callee_fn is None:
                            continue
                        theirs = self.writes.get(callee, {})
                        if not theirs:
                            continue
                        bound = self.resolver.bindings(call, callee_fn)
                        for q in theirs:
                            arg = bound.get(q)
                            if arg is None:
                                continue
                            for root in arg.id_roots:
                                if (
                                    root.startswith("p:")
                                    and root[2:] not in mine
                                ):
                                    mine[root[2:]] = (
                                        f"call to {short(callee)} "
                                        f"(which writes '{q}')",
                                        path,
                                        call.line,
                                    )
                                    changed = True
            if not changed:
                return


def _seam_closure(
    index: ProjectIndex, cls: ClassFacts, seams: tuple[str, ...]
) -> set[str]:
    """Seam methods plus same-class methods transitively called on self."""
    edges: dict[str, set[str]] = {m: set() for m in cls.methods}
    for method in cls.methods:
        fn = index.functions.get(f"{cls.module}.{cls.name}.{method}")
        if fn is None:
            continue
        for call in fn.calls:
            if (
                call.method in cls.methods
                and "p:self" in call.recv_roots
                and not call.recv_attrs
            ):
                edges[method].add(call.method)
    allowed = {m for m in seams if m in cls.methods}
    frontier = list(allowed)
    while frontier:
        for callee in edges.get(frontier.pop(), ()):
            if callee not in allowed:
                allowed.add(callee)
                frontier.append(callee)
    return allowed


def _protected_params(
    fn_params: tuple[str, ...],
    annotations: dict[str, tuple[str, ...]],
    protected: tuple[str, ...],
) -> dict[str, tuple[str, ...]]:
    out: dict[str, tuple[str, ...]] = {}
    for param in fn_params:
        hits = tuple(
            n for n in annotations.get(param, ()) if n in protected
        )
        if hits:
            out[param] = hits
    return out


def _check_class(
    contract: PhaseContract,
    cls: ClassFacts,
    index: ProjectIndex,
    engine: _EffectsEngine,
    protected: tuple[str, ...],
) -> list[Finding]:
    out: list[Finding] = []
    sanctioned = (
        _seam_closure(index, cls, contract.seams)
        if contract.role == "mutator"
        else set()
    )
    for method in cls.methods:
        if method in sanctioned:
            continue
        qual = f"{cls.module}.{cls.name}.{method}"
        fn = index.functions.get(qual)
        if fn is None:
            continue
        facts_file = index.file_for(qual)
        path = facts_file.path if facts_file else "<unknown>"
        writes = engine.writes.get(qual, {})
        for param, types in sorted(
            _protected_params(fn.params, fn.param_annotations, protected).items()
        ):
            witness = writes.get(param)
            if witness is None:
                continue
            what, wpath, wline = witness
            line = wline if wpath == path else fn.line
            if facts_file is not None and facts_file.suppressed(line, RULE):
                continue
            role = (
                f"{contract.role} (outside sanctioned seams "
                f"{', '.join(contract.seams)})"
                if contract.role == "mutator"
                else contract.role
            )
            out.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule=RULE,
                    message=(
                        f"{cls.name}.{method} is {role} but writes "
                        f"protected {'/'.join(types)} parameter "
                        f"'{param}': {what} ({wpath}:{wline})"
                    ),
                )
            )
    return out


def run_purity(
    index: ProjectIndex,
    config: FlowConfig,
    resolver: Optional[Resolver] = None,
) -> list[Finding]:
    resolver = resolver or Resolver(index)
    engine = _EffectsEngine(index, resolver)
    engine.solve()
    out: list[Finding] = []
    for contract in config.contracts:
        for cls in index.by_class_name.get(contract.cls, ()):
            out.extend(
                _check_class(
                    contract, cls, index, engine, config.protected_types
                )
            )
    for fc in config.function_contracts:
        for fn in find_matching(index, fc.suffix):
            facts_file = index.file_for(fn.qualname)
            path = facts_file.path if facts_file else "<unknown>"
            writes = engine.writes.get(fn.qualname, {})
            for param in fc.pure_params:
                witness = writes.get(param)
                if witness is None:
                    continue
                what, wpath, wline = witness
                line = wline if wpath == path else fn.line
                if facts_file is not None and facts_file.suppressed(
                    line, RULE
                ):
                    continue
                out.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule=RULE,
                        message=(
                            f"{short(fn.qualname)} must not mutate "
                            f"'{param}' but does: {what} "
                            f"({wpath}:{wline})"
                        ),
                    )
                )
    return sorted(out, key=lambda f: (f.path, f.line, f.message))
