"""SARIF 2.1.0 export for lint and flow findings.

Hand-rolled (the toolchain is dependency-free by policy): one ``run``
whose driver lists every REP rule with its short description, and one
``result`` per finding with a physical location.  The output validates
against the SARIF 2.1.0 schema's required properties and is accepted by
GitHub code scanning's ``upload-sarif`` action, which is how the CI
``flow-gate`` job surfaces findings as PR annotations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.lint import Finding

__all__ = ["RULE_HELP", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: One-line help per rule id, embedded as driver rule metadata.
RULE_HELP: dict[str, str] = {
    "REP000": "File does not parse",
    "REP001": "Float equality comparison in scheduling logic",
    "REP002": "Nondeterminism source in a replay-critical path",
    "REP003": "Bare except swallows scheduling errors",
    "REP004": "Iteration over unordered set/dict in decision logic",
    "REP005": "Mutable default argument in engine/scheduler code",
    "REP006": "Dict/set comprehension fed by unordered iteration",
    "REP007": "Trace emission outside the sanctioned TracePhase seam",
    "REP008": "Module-global RNG use outside seeded deterministic paths",
    "REP009": "Nondeterministic value flows into a decision/trace/artifact sink",
    "REP010": "Memoized function reads state its memo key does not capture",
    "REP011": "Phase write-effect contract violation (impure observer or "
    "mutation outside sanctioned seams)",
}


def to_sarif(findings: Iterable[Finding]) -> dict:
    findings = list(findings)
    seen_rules = sorted({f.rule for f in findings} | set(RULE_HELP))
    rules = [
        {
            "id": rule,
            "shortDescription": {
                "text": RULE_HELP.get(rule, "repro analysis rule")
            },
        }
        for rule in seen_rules
    ]
    rule_index = {rule: i for i, rule in enumerate(seen_rules)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/"
                            "docs/analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    findings: Iterable[Finding], path: Union[str, Path]
) -> None:
    Path(path).write_text(
        json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
