"""REP010 — cache-key coherence for the round-context memo layers.

For every :class:`~repro.analysis.flow.config.MemoSpec` the pass
computes the memoized function's *transitive* attribute reads of each
parameter (a fixpoint over the call graph, so a read three helpers deep
still counts) and checks the spec's classification:

* every parameter must be classified (key / ignored / guarded /
  invariant) — an unclassified parameter is exactly the "memo key
  forgot an input" bug class that PR 2/3's byte-parity relies on never
  shipping;
* a ``guarded`` parameter's reads must be a subset of the allowed
  attribute/method names (for the find-alloc layers: the free-capacity
  vector reads that ``state.key()`` captures);
* a spec that matches no function, or names a parameter the function
  does not have, is config drift and fires too.

``invariant_params`` are recorded waivers — the spec's ``note`` carries
the human proof of why the key may omit them, and the committed fixture
suite demonstrates what fires when such a waiver is absent.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lint import Finding
from repro.analysis.flow.config import FlowConfig, MemoSpec
from repro.analysis.flow.project import FunctionFacts, ProjectIndex
from repro.analysis.flow.resolve import Resolver, find_matching, short

__all__ = ["run_memo"]

RULE = "REP010"

ReadWitness = tuple[str, int]  # (path, line)


class _ReadsEngine:
    """Transitive per-parameter attribute-read summaries."""

    def __init__(self, index: ProjectIndex, resolver: Resolver):
        self.index = index
        self.resolver = resolver
        self.reads: dict[str, dict[str, dict[str, ReadWitness]]] = {}

    def solve(self) -> None:
        functions = list(self.index.functions.values())
        # Seed with direct reads.
        for fn in functions:
            facts_file = self.index.file_for(fn.qualname)
            path = facts_file.path if facts_file else "<unknown>"
            per_param: dict[str, dict[str, ReadWitness]] = {}
            for read in fn.reads:
                attr = read.attrs[0] if read.attrs else "<value>"
                for root in read.roots:
                    if root.startswith("p:"):
                        per_param.setdefault(root[2:], {}).setdefault(
                            attr, (path, read.line)
                        )
            self.reads[fn.qualname] = per_param
        # Propagate through calls: a callee's reads of its parameter are
        # reads of whatever the caller bound to it.
        for _ in range(max(4, len(functions))):
            changed = False
            for fn in functions:
                mine = self.reads[fn.qualname]
                for call in fn.calls:
                    for callee in self.resolver.callees(fn, call):
                        callee_fn = self.index.functions.get(callee)
                        if callee_fn is None:
                            continue
                        theirs = self.reads.get(callee, {})
                        if not theirs:
                            continue
                        bound = self.resolver.bindings(call, callee_fn)
                        for q, attrs in theirs.items():
                            if q in ("self", "cls"):
                                # A method's reads of its own attributes
                                # surface at the call site as the method
                                # -name chain read (state.key()), not as
                                # reads of the receiver's privates.
                                continue
                            arg = bound.get(q)
                            if arg is None:
                                continue
                            for root in arg.id_roots:
                                if not root.startswith("p:"):
                                    continue
                                target = mine.setdefault(root[2:], {})
                                for attr, witness in attrs.items():
                                    if attr not in target:
                                        target[attr] = witness
                                        changed = True
            if not changed:
                return


def _check_spec(
    spec: MemoSpec,
    fn: FunctionFacts,
    reads: dict[str, dict[str, ReadWitness]],
    index: ProjectIndex,
) -> list[Finding]:
    facts_file = index.file_for(fn.qualname)
    path = facts_file.path if facts_file else "<unknown>"
    out: list[Finding] = []

    def report(line: int, message: str) -> None:
        if facts_file is not None and facts_file.suppressed(line, RULE):
            return
        out.append(
            Finding(path=path, line=line, col=0, rule=RULE, message=message)
        )

    guarded = spec.guarded_map()
    classified = (
        set(spec.key_params)
        | set(spec.ignored_params)
        | set(spec.invariant_params)
        | set(guarded)
    )
    for named in sorted(classified):
        if named not in fn.params:
            report(
                fn.line,
                f"MemoSpec for {short(fn.qualname)} names parameter "
                f"'{named}' which the function does not have "
                "(spec drift after a rename?)",
            )
    for param in fn.params:
        if param in classified:
            continue
        report(
            fn.line,
            f"memoized {short(fn.qualname)} has unclassified parameter "
            f"'{param}': not part of the memo key, not declared "
            "ignored/guarded/invariant — the cache can return stale "
            "results when it varies",
        )
    fn_reads = reads.get(fn.qualname, {})
    for param, allowed in sorted(guarded.items()):
        for attr, (rpath, rline) in sorted(fn_reads.get(param, {}).items()):
            if attr in allowed:
                continue
            report(
                rline if rpath == path else fn.line,
                f"memoized {short(fn.qualname)} reads '{param}.{attr}' "
                f"(at {rpath}:{rline}) but the memo key only captures "
                f"{', '.join(allowed)} — a state change invisible to the "
                "key would be served stale",
            )
    return out


def run_memo(
    index: ProjectIndex,
    config: FlowConfig,
    resolver: Optional[Resolver] = None,
) -> list[Finding]:
    resolver = resolver or Resolver(index)
    engine = _ReadsEngine(index, resolver)
    engine.solve()
    out: list[Finding] = []
    for spec in config.memo_specs:
        matches = find_matching(index, spec.function)
        if not matches:
            # Unless nothing matching the spec's *module* is in the
            # analyzed set (partial analysis, e.g. fixture dirs), a spec
            # with no target is drift.
            module_hint = spec.function.split(".")[0]
            if any(
                module_hint in qual for qual in index.functions
            ):
                out.append(
                    Finding(
                        path="<config>",
                        line=0,
                        col=0,
                        rule=RULE,
                        message=(
                            f"MemoSpec '{spec.function}' matches no "
                            "analyzed function (renamed without updating "
                            "the spec?)"
                        ),
                    )
                )
            continue
        for fn in matches:
            out.extend(_check_spec(spec, fn, engine.reads, index))
    return sorted(out, key=lambda f: (f.path, f.line, f.message))
