"""Incremental analysis cache: per-file facts keyed by content hash.

Extraction (AST walking, root collapse) dominates the analyzer's cost;
the interprocedural fixpoints over extracted facts are cheap and always
re-run.  The cache therefore stores one JSON blob per analyzed file —
its :class:`~repro.analysis.flow.project.FileFacts` — keyed by the
sha256 of the file's bytes, under a *fingerprint* combining the
extraction abstraction version (:data:`FACTS_VERSION`) and the flow
config digest.  Any mismatch invalidates the whole store, so a config
or analyzer change can never serve stale facts.

The store is a single JSON file (default ``.repro-flow-cache.json`` in
the working directory, gitignored); CI keeps it between the cold and
warm gate runs to assert the warm-path wall-clock budget.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.analysis.flow.project import FACTS_VERSION, FileFacts

__all__ = ["DEFAULT_CACHE_PATH", "FactsCache"]

DEFAULT_CACHE_PATH = ".repro-flow-cache.json"


class FactsCache:
    def __init__(
        self,
        path: Union[str, Path, None] = DEFAULT_CACHE_PATH,
        *,
        config_digest: str = "",
    ):
        self.path = Path(path) if path is not None else None
        self.fingerprint = f"facts-v{FACTS_VERSION}+cfg-{config_digest}"
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            blob = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if blob.get("fingerprint") != self.fingerprint:
            return
        entries = blob.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, path: str, sha256: str) -> Optional[FileFacts]:
        entry = self._entries.get(path)
        if entry is None or entry.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_dict(entry["facts"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def put(self, facts: FileFacts) -> None:
        self._entries[facts.path] = {
            "sha256": facts.sha256,
            "facts": facts.to_dict(),
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        blob = {"fingerprint": self.fingerprint, "files": self._entries}
        self.path.write_text(
            json.dumps(blob, separators=(",", ":")), encoding="utf-8"
        )
        self._dirty = False
