"""Baseline (accepted-findings) mechanism shared by lint and flow.

A baseline file is a JSON list of finding keys — ``rule``, ``path``,
and a message prefix — that are accepted as known debt and filtered
from gate output.  The repository policy for REP009–REP012 is a
*permanently empty* baseline (real findings get fixed, sanctioned seams
get inline ``# repro-lint: disable=`` comments with a justification);
the mechanism exists so a future migration can stage large sweeps
without turning the gate off, and so ``--write-baseline`` can snapshot
the current state during such a migration.

Baseline entries match on ``path`` + ``rule`` + message prefix rather
than line numbers, so unrelated edits above a baselined finding don't
resurrect it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.lint import Finding

__all__ = ["filter_baseline", "load_baseline", "write_baseline"]


def load_baseline(path: Union[str, Path, None]) -> list[dict]:
    if path is None:
        return []
    p = Path(path)
    if not p.exists():
        return []
    blob = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(blob, list):
        raise ValueError(f"{path}: baseline must be a JSON list")
    return blob


def _matches(finding: Finding, entry: dict) -> bool:
    return (
        entry.get("rule") == finding.rule
        and entry.get("path") == finding.path
        and finding.message.startswith(entry.get("message_prefix", ""))
    )


def filter_baseline(
    findings: Iterable[Finding], baseline: list[dict]
) -> tuple[list[Finding], int]:
    """(kept findings, number suppressed by the baseline)."""
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if any(_matches(finding, entry) for entry in baseline):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def write_baseline(
    findings: Iterable[Finding], path: Union[str, Path]
) -> int:
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "message_prefix": f.message[:80],
        }
        for f in sorted(
            findings, key=lambda f: (f.path, f.rule, f.message)
        )
    ]
    Path(path).write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
