"""Whole-program dataflow analysis (tier 2 of ``repro.analysis``).

Where :mod:`repro.analysis.lint` checks single lines, this package
builds a project-wide symbol table and call graph and runs three
interprocedural passes over extracted per-file facts:

* :mod:`~repro.analysis.flow.taint` — REP009 determinism taint,
* :mod:`~repro.analysis.flow.memo` — REP010 cache-key coherence,
* :mod:`~repro.analysis.flow.purity` — REP011 phase purity,
* :mod:`~repro.analysis.flow.snapshots` — REP012 snapshot completeness.

Entry points: :func:`analyze_paths` (library) and ``python -m
repro.analysis flow`` (CLI, via :mod:`repro.analysis.__main__`).
"""

from repro.analysis.flow.baseline import (
    filter_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.cache import FactsCache
from repro.analysis.flow.config import (
    DEFAULT_CONFIG,
    FlowConfig,
    FunctionContract,
    MemoSpec,
    PhaseContract,
    SnapshotSpec,
)
from repro.analysis.flow.memo import run_memo
from repro.analysis.flow.project import ProjectIndex, extract_file_facts
from repro.analysis.flow.purity import run_purity
from repro.analysis.flow.runner import FLOW_RULES, FlowReport, analyze_paths
from repro.analysis.flow.sarif import to_sarif, write_sarif
from repro.analysis.flow.snapshots import run_snapshots
from repro.analysis.flow.taint import run_taint

__all__ = [
    "DEFAULT_CONFIG",
    "FLOW_RULES",
    "FactsCache",
    "FlowConfig",
    "FlowReport",
    "FunctionContract",
    "MemoSpec",
    "PhaseContract",
    "SnapshotSpec",
    "ProjectIndex",
    "analyze_paths",
    "extract_file_facts",
    "filter_baseline",
    "load_baseline",
    "run_memo",
    "run_purity",
    "run_snapshots",
    "run_taint",
    "to_sarif",
    "write_sarif",
    "write_baseline",
]
