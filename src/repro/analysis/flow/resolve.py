"""Call resolution over extracted facts: the project call graph.

Bridges :class:`~repro.analysis.flow.project.ProjectIndex` facts to the
interprocedural passes: given a :class:`CallFact` inside a function,
:meth:`Resolver.callees` returns the project functions it can reach
(empty for external calls), and :meth:`Resolver.bindings` maps the call
site's argument root sets onto the callee's parameter names — including
the receiver binding to ``self`` for resolved method calls.

Receiver typing uses, in order: the local type environment (parameter
annotations, constructor assignments), and for ``self.<attr>.m(...)``
chains the class attribute types inferred from ``__init__``.  Method
calls that resolve to no project function are *optimistic*: they are
assumed effect-free unless the method name is a builtin mutator (that
case is already a :class:`WriteFact` at extraction time).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.flow.project import (
    ArgInfo,
    CallFact,
    FunctionFacts,
    ProjectIndex,
)

__all__ = ["Resolver"]


class Resolver:
    def __init__(self, index: ProjectIndex):
        self.index = index
        self._memo: dict[tuple[str, int], frozenset[str]] = {}

    # -- receiver typing ------------------------------------------------------
    def _attr_types(
        self, type_names: set[str], attr: str
    ) -> set[str]:
        out: set[str] = set()
        for name in type_names:
            for cls in self.index.by_class_name.get(name, ()):
                out |= set(cls.attr_types.get(attr, ()))
        return out

    def receiver_types(self, fn: FunctionFacts, call: CallFact) -> set[str]:
        """Project-class types the method receiver may have."""
        types: set[str] = set()
        for root in call.recv_roots:
            if not root.startswith("p:"):
                continue
            name = root[2:]
            if name == "self" and fn.cls is not None:
                base: set[str] = {fn.cls}
            else:
                base = set(fn.local_types.get(name, ()))
            for attr in call.recv_attrs:
                base = self._attr_types(base, attr)
                if not base:
                    break
            types |= base
        # Locals that are not parameters still carry inferred types.
        if not call.recv_attrs:
            for root in call.recv_roots:
                if root.startswith("p:"):
                    types |= set(fn.local_types.get(root[2:], ()))
        return types

    # -- resolution -----------------------------------------------------------
    def callees(self, fn: FunctionFacts, call: CallFact) -> frozenset[str]:
        key = (fn.qualname, call.index)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        out: set[str] = set()
        if call.func is not None:
            out = self.index.resolve_function(call.func, fn.module)
        elif call.method is not None:
            types = self.receiver_types(fn, call)
            if types:
                out = self.index.resolve_method(types, call.method)
        result = frozenset(out)
        self._memo[key] = result
        return result

    # -- argument binding -----------------------------------------------------
    @staticmethod
    def bindings(
        call: CallFact, callee: FunctionFacts
    ) -> dict[str, ArgInfo]:
        """Map the call's arg root sets to the callee's parameter names."""
        params = list(callee.params)
        bound: dict[str, ArgInfo] = {}
        positional = params
        if params and params[0] in ("self", "cls"):
            if call.method is not None:
                bound[params[0]] = ArgInfo(call.recv_roots, call.recv_roots)
            positional = params[1:]
        for param, arg in zip(positional, call.args):
            bound[param] = arg
        for name, arg in call.kwargs:
            if name in params:
                bound[name] = arg
        return bound

    def witness(self, qualname: str) -> tuple[str, int]:
        """(path, line) of a function, for finding messages."""
        fn = self.index.functions.get(qualname)
        if fn is None:
            return ("<unknown>", 0)
        facts = self.index.file_for(qualname)
        return (facts.path if facts else "<unknown>", fn.line)


def short(qualname: str) -> str:
    """Trailing ``Class.method`` / ``module.function`` for messages."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def suffix_match(qualname: str, suffix: str) -> bool:
    """True when ``suffix`` matches whole trailing components."""
    return qualname == suffix or qualname.endswith("." + suffix.lstrip("."))


def find_matching(
    index: ProjectIndex, suffix: str
) -> list[FunctionFacts]:
    return [
        fn
        for qual, fn in sorted(index.functions.items())
        if suffix_match(qual, suffix)
    ]


def annotation_classes(
    fn: FunctionFacts, param: str, universe: tuple[str, ...]
) -> tuple[str, ...]:
    """Project/protected classes a parameter's annotation mentions."""
    ann = fn.param_annotations.get(param, ())
    return tuple(n for n in ann if n in universe)


def self_type(fn: FunctionFacts) -> Optional[str]:
    return fn.cls
