"""REP012 — snapshot completeness for the engine-state classes.

The engine's snapshot/restore contract (``sim/snapshot.py``) is only as
good as each component's ``state_dict``: a mutable attribute that never
makes it into the snapshot is a silent divergence bug — the restored
run drifts from the uninterrupted one exactly when that attribute next
matters.  This pass makes the capture set a *declared* artifact:

* for every :class:`~repro.analysis.flow.config.SnapshotSpec` it
  enumerates the class's mutable attribute universe — class-level
  declared fields (dataclass fields, recorded in
  :attr:`~repro.analysis.flow.project.ClassFacts.fields`) plus every
  ``self.<attr>`` write in any method body;
* each attribute must be either ``captured`` (serialized) or ``waived``
  (deliberately excluded; the spec's ``note`` carries the proof —
  per-round transients, pure caches, state regenerated at restore);
* a spec naming a class that no longer exists, an attribute the class
  no longer has, or the same attribute as both captured and waived, is
  config drift and fires;
* a class with a non-empty ``captured`` set must actually define
  ``state_dict``/``load_state_dict``.

Like REP010's ``invariant_params``, waivers here are recorded human
proof obligations, not suppressions: they live in ``DEFAULT_CONFIG``
next to the justification, and the committed fixture suite shows what
fires when one is missing.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lint import Finding
from repro.analysis.flow.config import FlowConfig, SnapshotSpec
from repro.analysis.flow.project import ClassFacts, ProjectIndex
from repro.analysis.flow.resolve import Resolver

__all__ = ["run_snapshots"]

RULE = "REP012"

#: Attributes every Python object juggles that are never snapshot state.
_IGNORED = frozenset({"__dict__", "__weakref__"})


def _mutable_attrs(
    index: ProjectIndex, cls: ClassFacts
) -> dict[str, tuple[str, int]]:
    """attr -> (where it is established, line), declaration order first."""
    out: dict[str, tuple[str, int]] = {}
    for name in cls.fields:
        out.setdefault(name, ("declared class-level", cls.line))
    for method in cls.methods:
        fn = index.functions.get(f"{cls.module}.{cls.name}.{method}")
        if fn is None:
            continue
        for write in fn.writes:
            if not write.attrs or "p:self" not in write.roots:
                continue
            attr = write.attrs[0]
            if attr in _IGNORED:
                continue
            # A bare subscript store through a local alias ("d[k] = v"
            # where d came off self) mutates an object some *attribute*
            # already reaches — the attribute itself is in the universe,
            # the alias write carries no extra name to track.
            if attr == "[]":
                continue
            out.setdefault(
                attr, (f"written in {cls.name}.{method}", write.line)
            )
    return out


def _check_class(
    spec: SnapshotSpec, cls: ClassFacts, index: ProjectIndex
) -> list[Finding]:
    out: list[Finding] = []
    facts_file = index.file_for(cls.qualname)
    path = facts_file.path if facts_file else "<unknown>"

    def report(line: int, message: str) -> None:
        if facts_file is not None and facts_file.suppressed(line, RULE):
            return
        out.append(Finding(path=path, line=line, col=0, rule=RULE, message=message))

    universe = _mutable_attrs(index, cls)
    captured = set(spec.captured)
    waived = set(spec.waived)
    for attr in sorted(captured & waived):
        report(
            cls.line,
            f"SnapshotSpec for {cls.name} declares '{attr}' both captured "
            "and waived — pick one",
        )
    for attr in sorted((captured | waived) - set(universe)):
        report(
            cls.line,
            f"SnapshotSpec for {cls.name} declares attribute '{attr}' "
            "which the class neither declares nor writes "
            "(spec drift after a rename?)",
        )
    for attr, (how, line) in sorted(universe.items()):
        if attr in captured or attr in waived:
            continue
        report(
            line,
            f"mutable attribute {cls.name}.{attr} ({how}, {path}:{line}) "
            "is neither captured by the snapshot spec nor explicitly "
            "waived — a restored engine would silently lose it",
        )
    if captured:
        if "state_dict" not in cls.methods:
            report(
                cls.line,
                f"SnapshotSpec for {cls.name} captures attributes but "
                "the class defines no state_dict()",
            )
        # Restoration is either in-place (load_state_dict) or by
        # reconstruction (a from_state_dict classmethod) — either closes
        # the round-trip.
        if not {"load_state_dict", "from_state_dict"} & set(cls.methods):
            report(
                cls.line,
                f"SnapshotSpec for {cls.name} captures attributes but "
                "the class defines neither load_state_dict() nor "
                "from_state_dict()",
            )
    return out


def run_snapshots(
    index: ProjectIndex,
    config: FlowConfig,
    resolver: Optional[Resolver] = None,
) -> list[Finding]:
    out: list[Finding] = []
    for spec in config.snapshot_specs:
        parts = spec.cls.split(".")
        name = parts[-1]
        matches = [
            cls
            for cls in index.by_class_name.get(name, ())
            if cls.qualname == spec.cls
            or cls.qualname.endswith("." + spec.cls)
            or name == spec.cls
        ]
        if not matches:
            # Snapshot specs describe engine-state classes, so drift is
            # only meaningful when the engine tree itself is analyzed —
            # fixture-directory runs (which deliberately reuse main-tree
            # module names) must not fire on every main-tree spec.
            if "SimulationEngine" in index.by_class_name:
                out.append(
                    Finding(
                        path="<config>",
                        line=0,
                        col=0,
                        rule=RULE,
                        message=(
                            f"SnapshotSpec '{spec.cls}' matches no analyzed "
                            "class (renamed without updating the spec?)"
                        ),
                    )
                )
            continue
        for cls in matches:
            out.extend(_check_class(spec, cls, index))
    return sorted(out, key=lambda f: (f.path, f.line, f.message))
