"""Flow-analysis driver: discovery, cache, passes, output, budgets.

``python -m repro.analysis flow [paths]`` lands here.  The runner
builds the :class:`ProjectIndex` (through the incremental cache), runs
the enabled passes (REP009/REP010/REP011), applies the shared baseline
filter, and renders text / ``--json`` / ``--sarif`` output.  Exit
codes: 0 clean, 1 findings, 2 budget exceeded (``--budget-s``, the CI
wall-clock assertion that keeps the gate from rotting into the slowest
job).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.lint import Finding, _iter_python_files
from repro.analysis.flow.baseline import (
    filter_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.cache import DEFAULT_CACHE_PATH, FactsCache
from repro.analysis.flow.config import DEFAULT_CONFIG, FlowConfig
from repro.analysis.flow.memo import run_memo
from repro.analysis.flow.project import ProjectIndex
from repro.analysis.flow.purity import run_purity
from repro.analysis.flow.snapshots import run_snapshots
from repro.analysis.flow.resolve import Resolver
from repro.analysis.flow.sarif import write_sarif
from repro.analysis.flow.taint import run_taint

__all__ = ["FLOW_RULES", "FlowReport", "analyze_paths", "main"]

FLOW_RULES = ("REP009", "REP010", "REP011", "REP012")

_PASSES = {
    "REP009": run_taint,
    "REP010": run_memo,
    "REP011": run_purity,
    "REP012": run_snapshots,
}


@dataclass
class FlowReport:
    """Everything one analysis run produced, for callers and tests."""

    findings: list[Finding]
    baseline_suppressed: int = 0
    files_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    per_pass: dict[str, int] = field(default_factory=dict)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    *,
    config: FlowConfig = DEFAULT_CONFIG,
    rules: Sequence[str] = FLOW_RULES,
    cache: Optional[FactsCache] = None,
    baseline: Optional[list[dict]] = None,
) -> FlowReport:
    """Run the flow passes over every ``*.py`` under ``paths``."""
    started = time.perf_counter()
    files = sorted(set(_iter_python_files(paths)))
    index = ProjectIndex.build(files, cache=cache)
    resolver = Resolver(index)
    findings: list[Finding] = []
    per_pass: dict[str, int] = {}
    for rule in rules:
        run = _PASSES.get(rule)
        if run is None:
            raise SystemExit(f"unknown flow rule: {rule}")
        produced = run(index, config, resolver)
        per_pass[rule] = len(produced)
        findings.extend(produced)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    kept, suppressed = filter_baseline(findings, baseline or [])
    if cache is not None:
        cache.save()
    return FlowReport(
        findings=kept,
        baseline_suppressed=suppressed,
        files_analyzed=len(files),
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
        elapsed_s=time.perf_counter() - started,
        per_pass=per_pass,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis flow",
        description=(
            "Whole-program dataflow analysis (REP009 determinism taint, "
            "REP010 cache-key coherence, REP011 phase purity, "
            "REP012 snapshot completeness)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--rules",
        help=f"comma-separated flow rules (default: {','.join(FLOW_RULES)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable findings"
    )
    parser.add_argument(
        "--sarif", metavar="PATH", help="write SARIF 2.1.0 to PATH"
    )
    parser.add_argument(
        "--baseline", metavar="PATH", help="accepted-findings baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="snapshot current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=DEFAULT_CACHE_PATH,
        help=f"incremental facts cache (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the facts cache"
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        metavar="SECONDS",
        help="fail (exit 2) if the analysis wall-clock exceeds this",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print cache/timing counters"
    )
    args = parser.parse_args(argv)

    rules = (
        tuple(r.strip() for r in args.rules.split(",") if r.strip())
        if args.rules
        else FLOW_RULES
    )
    cache = (
        None
        if args.no_cache
        else FactsCache(args.cache, config_digest=DEFAULT_CONFIG.digest())
    )
    baseline = load_baseline(args.baseline)
    report = analyze_paths(
        args.paths, rules=rules, cache=cache, baseline=baseline
    )

    if args.write_baseline:
        count = write_baseline(report.findings, args.write_baseline)
        print(f"wrote {count} baseline entries to {args.write_baseline}")  # repro-lint: disable=REP007
        return 0
    if args.sarif:
        write_sarif(report.findings, args.sarif)
    if args.json:
        print(  # repro-lint: disable=REP007
            json.dumps(
                [f.to_dict() for f in report.findings],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in report.findings:
            print(finding.format())  # repro-lint: disable=REP007
    if args.stats:
        print(  # repro-lint: disable=REP007
            f"flow: {report.files_analyzed} files, "
            f"{sum(report.per_pass.values())} raw findings "
            f"({', '.join(f'{k}={v}' for k, v in sorted(report.per_pass.items()))}), "
            f"{report.baseline_suppressed} baselined, "
            f"cache {report.cache_hits} hits / {report.cache_misses} misses, "
            f"{report.elapsed_s:.2f}s",
            file=sys.stderr,
        )
    if args.budget_s is not None and report.elapsed_s > args.budget_s:
        print(  # repro-lint: disable=REP007
            f"flow: analysis took {report.elapsed_s:.2f}s, over the "
            f"{args.budget_s:.0f}s budget",
            file=sys.stderr,
        )
        return 2
    if report.findings:
        print(  # repro-lint: disable=REP007
            f"{len(report.findings)} flow finding(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
