"""Per-file fact extraction for the whole-program flow analyzer.

This module turns one Python source file into a JSON-serializable
:class:`FileFacts` bundle: for every function, the *roots* that each
expression can alias or contain, the calls it makes, the attribute
chains it reads, the writes it performs, and the values it returns.
The interprocedural passes (:mod:`repro.analysis.flow.taint`,
:mod:`~repro.analysis.flow.memo`, :mod:`~repro.analysis.flow.purity`)
never look at an AST — they solve fixpoints over these facts, which is
what makes the incremental cache (:mod:`repro.analysis.flow.cache`)
sound: facts depend only on the file's bytes and :data:`FACTS_VERSION`.

Abstraction
-----------
Values are collapsed, flow-insensitively, onto sets of *roots*:

``p:<name>``
    a parameter of the enclosing function,
``c:<index>``
    the result of call site ``<index>`` within the function,
``g:<dotted>``
    a module-level / imported name,
``s:<index>``
    a recognized nondeterminism source (see :data:`TAINT_SOURCES`).

Each expression carries two root sets.  *Identity* roots answer "which
parameter's object graph does mutating this value touch?" — fresh
containers (literals, ``dict(...)``, comprehensions, f-strings) have no
identity roots, while iteration and accessor methods (``values``,
``items``, ``get``, …) keep the container's, because the elements are
shared.  *Data* roots answer "whose bytes influenced this value?" and
are unioned through every operator and call.  The split is what lets
``record = {...}; record["jobs"] = x`` stay invisible to the purity
pass while ``for rt in runtimes.values(): rt.rate = 0`` is a write on
``runtimes``.

Known unsoundness (documented, deliberate): taint and effects are not
tracked through the heap (a value stored on ``self`` in one method and
read in another is two independent facts), nested ``def``/``lambda``
bodies are opaque, and method calls that cannot be resolved to a
project function are assumed effect-free unless the method name is a
builtin mutator (``append``, ``update``, …).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.flow.cache import FactsCache

from repro.analysis.lint import (
    _canonical,
    _dotted_name,
    _import_aliases,
    _parse_suppressions,
)

__all__ = [
    "FACTS_VERSION",
    "ArgInfo",
    "CallFact",
    "ClassFacts",
    "FileFacts",
    "FunctionFacts",
    "ProjectIndex",
    "ReadFact",
    "ReturnFact",
    "SourceFact",
    "WriteFact",
    "extract_file_facts",
    "module_name_for",
]

FACTS_VERSION = 2
"""Bumped whenever the extraction abstraction changes; part of the
cache fingerprint so stale per-file facts are never reused.

Version history: 2 added :attr:`ClassFacts.fields` (class-level
declared attributes, i.e. dataclass fields) for the REP012
snapshot-completeness pass."""

# --------------------------------------------------------------------------- #
# Source / mutator tables (extraction-level: part of FACTS_VERSION)
# --------------------------------------------------------------------------- #

#: Canonical dotted call targets that *produce* nondeterministic values,
#: mapped to a taint kind.  ``measurement`` is split from ``wallclock``
#: because monotonic timers are sanctioned in trace latency fields but
#: not in decisions or reproducible artifacts.
TAINT_SOURCES: dict[tuple[str, ...], str] = {
    ("time", "time"): "wallclock",
    ("time", "time_ns"): "wallclock",
    ("datetime", "datetime", "now"): "wallclock",
    ("datetime", "datetime", "utcnow"): "wallclock",
    ("datetime", "datetime", "today"): "wallclock",
    ("datetime", "date", "today"): "wallclock",
    ("time", "monotonic"): "measurement",
    ("time", "monotonic_ns"): "measurement",
    ("time", "perf_counter"): "measurement",
    ("time", "perf_counter_ns"): "measurement",
    ("time", "process_time"): "measurement",
    ("time", "process_time_ns"): "measurement",
    ("os", "getenv"): "env",
    ("os", "environ"): "env",
    ("platform", "node"): "env",
    ("socket", "gethostname"): "env",
    ("os", "urandom"): "rng",
    ("uuid", "uuid1"): "rng",
    ("uuid", "uuid4"): "rng",
}

#: Dotted prefixes whose every call yields ``rng`` taint (module-level
#: RNG state: ``random.random()``, legacy ``numpy.random.rand()``, any
#: ``secrets`` helper).
RNG_PREFIXES: tuple[tuple[str, ...], ...] = (
    ("random",),
    ("numpy", "random"),
    ("secrets",),
)

#: RNG constructors that are sources only when called with no seed.
UNSEEDED_CTORS: frozenset[tuple[str, ...]] = frozenset(
    {("numpy", "random", "default_rng"), ("random", "Random")}
)

#: Method names that mutate their builtin receiver in place.
MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append", "extend", "insert", "add", "discard", "remove",
        "pop", "popitem", "clear", "update", "setdefault",
        "sort", "reverse", "appendleft", "popleft", "__setitem__",
    }
)

#: Accessor methods whose result shares structure with the receiver —
#: mutating (or iterating) the result reaches the receiver's elements.
ACCESSOR_METHODS: frozenset[str] = frozenset(
    {"values", "items", "keys", "get", "setdefault", "most_common"}
)

#: Builtins whose result aliases its arguments' objects (a sorted list
#: holds the same elements), so identity flows through them — but a
#: fresh result of an ordinary call does *not* pick up its receiver's
#: identity, which keeps locals derived from ``state.free_slots()``
#: from being mistaken for the state itself.
CONTAINER_TRANSPARENT: frozenset[str] = frozenset(
    {
        "sorted", "list", "tuple", "set", "frozenset", "dict",
        "reversed", "enumerate", "zip", "filter", "iter", "next",
        "min", "max",
    }
)


# --------------------------------------------------------------------------- #
# Fact records
# --------------------------------------------------------------------------- #

Root = str


@dataclass(frozen=True)
class ArgInfo:
    """Root sets of one call argument."""

    id_roots: tuple[Root, ...]
    data_roots: tuple[Root, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"id": list(self.id_roots), "data": list(self.data_roots)}

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "ArgInfo":
        return ArgInfo(tuple(d["id"]), tuple(d["data"]))


@dataclass(frozen=True)
class SourceFact:
    """One recognized nondeterminism source expression."""

    index: int
    kind: str
    desc: str
    line: int


@dataclass(frozen=True)
class CallFact:
    """One call site.

    ``func`` is the canonical dotted target for plain calls (``None``
    for method calls on local values); method calls carry the receiver's
    identity roots, the attribute chain between the base and the method,
    and the method name.
    """

    index: int
    line: int
    func: Optional[tuple[str, ...]]
    recv_roots: tuple[Root, ...]
    recv_attrs: tuple[str, ...]
    method: Optional[str]
    args: tuple[ArgInfo, ...]
    kwargs: tuple[tuple[str, ArgInfo], ...]


@dataclass(frozen=True)
class ReadFact:
    """An attribute/method chain read rooted at ``roots``."""

    roots: tuple[Root, ...]
    attrs: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class WriteFact:
    """A write (assignment, del, or mutator-method call) through a chain."""

    roots: tuple[Root, ...]
    attrs: tuple[str, ...]
    line: int
    reason: str


@dataclass(frozen=True)
class ReturnFact:
    id_roots: tuple[Root, ...]
    data_roots: tuple[Root, ...]
    line: int


@dataclass
class FunctionFacts:
    """Everything the interprocedural passes know about one function."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    line: int
    params: tuple[str, ...]
    param_annotations: dict[str, tuple[str, ...]]
    return_annotation: tuple[str, ...]
    sources: list[SourceFact] = field(default_factory=list)
    calls: list[CallFact] = field(default_factory=list)
    reads: list[ReadFact] = field(default_factory=list)
    writes: list[WriteFact] = field(default_factory=list)
    returns: list[ReturnFact] = field(default_factory=list)
    local_types: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "params": list(self.params),
            "param_annotations": {
                k: list(v) for k, v in self.param_annotations.items()
            },
            "return_annotation": list(self.return_annotation),
            "sources": [
                [s.index, s.kind, s.desc, s.line] for s in self.sources
            ],
            "calls": [
                {
                    "i": c.index,
                    "line": c.line,
                    "func": list(c.func) if c.func else None,
                    "recv": list(c.recv_roots),
                    "attrs": list(c.recv_attrs),
                    "method": c.method,
                    "args": [a.to_dict() for a in c.args],
                    "kwargs": [[k, a.to_dict()] for k, a in c.kwargs],
                }
                for c in self.calls
            ],
            "reads": [
                [list(r.roots), list(r.attrs), r.line] for r in self.reads
            ],
            "writes": [
                [list(w.roots), list(w.attrs), w.line, w.reason]
                for w in self.writes
            ],
            "returns": [
                [list(r.id_roots), list(r.data_roots), r.line]
                for r in self.returns
            ],
            "local_types": {k: list(v) for k, v in self.local_types.items()},
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "FunctionFacts":
        return FunctionFacts(
            qualname=d["qualname"],
            module=d["module"],
            name=d["name"],
            cls=d["cls"],
            line=d["line"],
            params=tuple(d["params"]),
            param_annotations={
                k: tuple(v) for k, v in d["param_annotations"].items()
            },
            return_annotation=tuple(d["return_annotation"]),
            sources=[SourceFact(*row) for row in d["sources"]],
            calls=[
                CallFact(
                    index=c["i"],
                    line=c["line"],
                    func=tuple(c["func"]) if c["func"] else None,
                    recv_roots=tuple(c["recv"]),
                    recv_attrs=tuple(c["attrs"]),
                    method=c["method"],
                    args=tuple(ArgInfo.from_dict(a) for a in c["args"]),
                    kwargs=tuple(
                        (k, ArgInfo.from_dict(a)) for k, a in c["kwargs"]
                    ),
                )
                for c in d["calls"]
            ],
            reads=[
                ReadFact(tuple(r[0]), tuple(r[1]), r[2]) for r in d["reads"]
            ],
            writes=[
                WriteFact(tuple(w[0]), tuple(w[1]), w[2], w[3])
                for w in d["writes"]
            ],
            returns=[
                ReturnFact(tuple(r[0]), tuple(r[1]), r[2])
                for r in d["returns"]
            ],
            local_types={k: tuple(v) for k, v in d["local_types"].items()},
        )


@dataclass
class ClassFacts:
    """Class shape: bases, methods, fields, inferred ``self.<attr>`` types.

    ``fields`` are *class-level declared* attributes — annotated
    assignments (dataclass fields) and plain class-variable assignments
    — which never appear as ``self.<attr>`` writes in ``__init__`` for
    dataclasses, so the REP012 snapshot pass needs them recorded
    separately from the per-method write facts.
    """

    qualname: str
    module: str
    name: str
    line: int
    bases: tuple[tuple[str, ...], ...]
    methods: tuple[str, ...]
    attr_types: dict[str, tuple[str, ...]]
    fields: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "line": self.line,
            "bases": [list(b) for b in self.bases],
            "methods": list(self.methods),
            "attr_types": {k: list(v) for k, v in self.attr_types.items()},
            "fields": list(self.fields),
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "ClassFacts":
        return ClassFacts(
            qualname=d["qualname"],
            module=d["module"],
            name=d["name"],
            line=d["line"],
            bases=tuple(tuple(b) for b in d["bases"]),
            methods=tuple(d["methods"]),
            attr_types={k: tuple(v) for k, v in d["attr_types"].items()},
            fields=tuple(d.get("fields", ())),
        )


@dataclass
class FileFacts:
    """All facts for one source file, plus its suppression map."""

    path: str
    module: str
    sha256: str
    functions: dict[str, FunctionFacts]
    classes: dict[str, ClassFacts]
    suppressions: dict[int, tuple[str, ...]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "sha256": self.sha256,
            "functions": {
                k: f.to_dict() for k, f in self.functions.items()
            },
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "suppressions": {
                str(k): list(v) for k, v in self.suppressions.items()
            },
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "FileFacts":
        return FileFacts(
            path=d["path"],
            module=d["module"],
            sha256=d["sha256"],
            functions={
                k: FunctionFacts.from_dict(f)
                for k, f in d["functions"].items()
            },
            classes={
                k: ClassFacts.from_dict(c) for k, c in d["classes"].items()
            },
            suppressions={
                int(k): tuple(v) for k, v in d["suppressions"].items()
            },
        )

    def suppressed(self, line: int, rule: str) -> bool:
        waived = self.suppressions.get(line, ())
        return rule in waived or "all" in waived


# --------------------------------------------------------------------------- #
# Module / annotation helpers
# --------------------------------------------------------------------------- #

def module_name_for(path: Path) -> str:
    """Dotted module name for a file, rooted after any ``src`` segment."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Keep at most the trailing path components that are identifiers,
        # so out-of-tree fixture dirs still get stable dotted names.
        parts = [p for p in parts if p not in ("/", "")]
        while parts and not parts[0].isidentifier():
            parts.pop(0)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) or path.stem


def _annotation_names(node: Optional[ast.AST]) -> tuple[str, ...]:
    """All identifiers mentioned in an annotation (string forms included)."""
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                inner = ast.parse(sub.value, mode="eval").body
            except SyntaxError:
                continue
            names.extend(_annotation_names(inner))
    return tuple(dict.fromkeys(names))


def _all_params(node: ast.AST) -> list[ast.arg]:
    a = node.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs] + (
        [a.vararg] if a.vararg else []
    ) + ([a.kwarg] if a.kwarg else [])


@dataclass(frozen=True)
class _Info:
    """Root sets of one evaluated expression."""

    id_roots: frozenset[Root]
    data_roots: frozenset[Root]


_EMPTY = _Info(frozenset(), frozenset())


def _merge(infos: Iterable[_Info]) -> _Info:
    ids: set[Root] = set()
    data: set[Root] = set()
    for info in infos:
        ids |= info.id_roots
        data |= info.data_roots
    return _Info(frozenset(ids), frozenset(data))


# --------------------------------------------------------------------------- #
# Per-function extraction
# --------------------------------------------------------------------------- #

class _FunctionExtractor:
    """Two-pass flow-insensitive extraction for one function body.

    Pass A collects name-binding equations and solves the local root
    environment to a fixpoint; pass B re-walks the body with the final
    environment and emits source/call/read/write/return facts exactly
    once each.
    """

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        module: str,
        qualname: str,
        cls: Optional[str],
        aliases: dict[str, tuple[str, ...]],
        project_classes: frozenset[str],
    ):
        self.node = node
        self.aliases = aliases
        self.project_classes = project_classes
        params = tuple(a.arg for a in _all_params(node))
        self.facts = FunctionFacts(
            qualname=qualname,
            module=module,
            name=node.name,
            cls=cls,
            line=node.lineno,
            params=params,
            param_annotations={
                a.arg: _annotation_names(a.annotation)
                for a in _all_params(node)
                if a.annotation is not None
            },
            return_annotation=_annotation_names(node.returns),
        )
        self.env: dict[str, _Info] = {
            p: _Info(frozenset({f"p:{p}"}), frozenset({f"p:{p}"}))
            for p in params
        }
        self.local_types: dict[str, set[str]] = {
            p: {
                n
                for n in self.facts.param_annotations.get(p, ())
                if n in project_classes
            }
            for p in params
        }
        self._bindings: list[tuple[str, ast.AST, str]] = []
        self._call_ids: dict[int, int] = {}
        self._call_counter = 0
        self._source_ids: dict[int, SourceFact] = {}
        self._emitted_sources: set[int] = set()
        self._emitting = False
        self._reads_seen: set[ReadFact] = set()
        self._writes_seen: set[WriteFact] = set()

    # -- driver ---------------------------------------------------------------
    def run(self) -> FunctionFacts:
        body = self.node.body
        self._collect_bindings(body)
        self._solve_env()
        self._emitting = True
        for stmt in body:
            self._emit_stmt(stmt)
        self.facts.local_types = {
            k: tuple(sorted(v)) for k, v in self.local_types.items() if v
        }
        return self.facts

    # -- pass A: bindings -----------------------------------------------------
    def _collect_bindings(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            for node in self._walk_stmt(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._bind_target(target, node.value)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    self._bind_target(node.target, node.value)
                elif isinstance(node, ast.AugAssign):
                    self._bind_target(node.target, node.value)
                elif isinstance(node, ast.NamedExpr):
                    self._bind_target(node.target, node.value)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._bind_target(node.target, node.iter, mode="iter")
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None:
                            self._bind_target(
                                item.optional_vars, item.context_expr
                            )
                elif isinstance(node, ast.comprehension):
                    self._bind_target(node.target, node.iter, mode="iter")
                elif isinstance(node, ast.Call):
                    # x.append(v) / x.update(v): v flows into x's data.
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in MUTATOR_METHODS
                    ):
                        chain = _dotted_name(func.value)
                        if chain is not None and len(chain) == 1:
                            for arg in node.args:
                                self._bindings.append(
                                    (chain[0], arg, "data")
                                )
                            for kw in node.keywords:
                                self._bindings.append(
                                    (chain[0], kw.value, "data")
                                )

    def _walk_stmt(self, stmt: ast.stmt) -> Iterable[ast.AST]:
        """Walk one statement, skipping nested function/class bodies."""
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue
                stack.append(child)

    def _bind_target(
        self, target: ast.AST, value: ast.AST, mode: str = "value"
    ) -> None:
        if isinstance(target, ast.Name):
            self._bindings.append((target.id, value, mode))
            self.env.setdefault(target.id, _EMPTY)
            self.local_types.setdefault(target.id, set())
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                # Tuple unpack: each element shares the container's
                # structure, same as iteration.
                self._bind_target(inner, value, mode="iter")
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, mode)
        # Attribute / Subscript targets become WriteFacts in pass B.

    def _solve_env(self) -> None:
        for _ in range(64):
            changed = False
            for name, value, mode in self._bindings:
                if mode == "data" and name not in self.env:
                    continue  # mutator call on a global: heap, skipped
                info = self._eval(value)
                if mode == "iter":
                    # Elements alias what the container *is*, not every
                    # value that influenced it.
                    info = _Info(
                        info.id_roots, info.id_roots | info.data_roots
                    )
                elif mode == "data":
                    # Mutator-method argument (x.append(v)): v's bytes
                    # and objects become reachable from x as data.
                    info = _Info(
                        frozenset(), info.id_roots | info.data_roots
                    )
                merged = _merge([self.env.get(name, _EMPTY), info])
                if merged != self.env.get(name, _EMPTY):
                    self.env[name] = merged
                    changed = True
                self._type_bind(name, value, mode)
            if not changed:
                return

    def _type_bind(self, name: str, value: ast.AST, mode: str) -> None:
        types = self.local_types.setdefault(name, set())
        if isinstance(value, ast.Name):
            types |= self.local_types.get(value.id, set())
        elif isinstance(value, ast.Call):
            dotted = _canonical(value.func, self.aliases)
            if dotted and dotted[-1] in self.project_classes:
                types.add(dotted[-1])
        elif isinstance(value, ast.IfExp):
            self._type_bind(name, value.body, mode)
            self._type_bind(name, value.orelse, mode)
        if mode == "iter":
            # Element typing: a loop over ``runtimes`` (annotated
            # ``Mapping[int, JobRuntime]``) types the loop var with every
            # project class its annotation mentions.
            chain = _dotted_name(value) or (
                _dotted_name(value.func)
                if isinstance(value, ast.Call)
                else None
            )
            if chain:
                base = chain[0]
                ann = self.facts.param_annotations.get(base, ())
                types |= {n for n in ann if n in self.project_classes}

    # -- expression evaluation ------------------------------------------------
    def _call_index(self, node: ast.Call) -> int:
        key = id(node)
        if key not in self._call_ids:
            self._call_ids[key] = self._call_counter
            self._call_counter += 1
        return self._call_ids[key]

    def _source_for(
        self, node: ast.AST, dotted: tuple[str, ...], *, is_call: bool
    ) -> Optional[SourceFact]:
        kind: Optional[str] = None
        desc = ".".join(dotted)
        if dotted in TAINT_SOURCES:
            kind = TAINT_SOURCES[dotted]
        elif is_call and any(
            dotted[: len(p)] == p and len(dotted) > len(p)
            for p in RNG_PREFIXES
        ):
            kind = "rng"
        elif dotted[:2] == ("os", "environ"):
            kind = "env"
        if kind is None:
            return None
        if is_call and dotted in UNSEEDED_CTORS:
            call = node if isinstance(node, ast.Call) else None
            if call is not None and (call.args or call.keywords):
                return None  # seeded constructor: deterministic
        key = id(node)
        fact = self._source_ids.get(key)
        if fact is None:
            fact = SourceFact(
                index=len(self._source_ids),
                kind=kind,
                desc=desc + ("()" if is_call else ""),
                line=getattr(node, "lineno", self.node.lineno),
            )
            self._source_ids[key] = fact
        # Pass A registers the fact; emission happens in pass B, when
        # the node is revisited with the solved environment.
        if self._emitting and key not in self._emitted_sources:
            self._emitted_sources.add(key)
            self.facts.sources.append(fact)
        return fact

    def _eval(self, node: ast.AST) -> _Info:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            dotted = self.aliases.get(node.id, (node.id,))
            src = self._source_for(node, dotted, is_call=False)
            if src is not None:
                root = frozenset({f"s:{src.index}"})
                return _Info(root, root)
            root = frozenset({f"g:{'.'.join(dotted)}"})
            return _Info(root, root)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            dotted = _canonical(node, self.aliases)
            if dotted and not self._is_local_chain(node):
                src = self._source_for(node, dotted, is_call=False)
                if src is not None:
                    root = frozenset({f"s:{src.index}"})
                    return _Info(root, root)
            self._record_read(node)
            return base
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            index = self._eval(node.slice)
            self._record_read(node)
            # A tainted index selects the value: include index data.
            return _Info(base.id_roots, base.data_roots | index.data_roots)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            info = _merge(self._eval(e) for e in node.elts)
            return _Info(info.id_roots, info.id_roots | info.data_roots)
        if isinstance(node, ast.Dict):
            parts = [self._eval(v) for v in node.values] + [
                self._eval(k) for k in node.keys if k is not None
            ]
            info = _merge(parts)
            return _Info(frozenset(), info.id_roots | info.data_roots)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            parts = [self._eval(node.elt)]
            parts += [self._eval(g.iter) for g in node.generators]
            info = _merge(parts)
            return _Info(info.id_roots, info.id_roots | info.data_roots)
        if isinstance(node, ast.DictComp):
            parts = [self._eval(node.key), self._eval(node.value)]
            parts += [self._eval(g.iter) for g in node.generators]
            info = _merge(parts)
            return _Info(frozenset(), info.id_roots | info.data_roots)
        if isinstance(node, ast.IfExp):
            return _merge([self._eval(node.body), self._eval(node.orelse)])
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp)):
            children = [
                self._eval(c)
                for c in ast.iter_child_nodes(node)
                if isinstance(c, ast.expr)
            ]
            info = _merge(children)
            return _Info(frozenset(), info.data_roots)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            children = [
                self._eval(c)
                for c in ast.iter_child_nodes(node)
                if isinstance(c, ast.expr)
            ]
            info = _merge(children)
            return _Info(frozenset(), info.data_roots)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Slice):
            parts = [
                self._eval(p)
                for p in (node.lower, node.upper, node.step)
                if p is not None
            ]
            return _Info(frozenset(), _merge(parts).data_roots)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, ast.Constant):
            return _EMPTY
        children = [
            self._eval(c)
            for c in ast.iter_child_nodes(node)
            if isinstance(c, ast.expr)
        ]
        return _merge(children)

    def _is_local_chain(self, node: ast.AST) -> bool:
        dotted = _dotted_name(node)
        return bool(dotted) and dotted[0] in self.env

    def _eval_call(self, node: ast.Call) -> _Info:
        index = self._call_index(node)
        args = [self._eval(a) for a in node.args]
        kwargs = [
            (kw.arg, self._eval(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        ]
        star_kwargs = [
            self._eval(kw.value) for kw in node.keywords if kw.arg is None
        ]
        arg_data: set[Root] = set()
        for info in args + [a for _, a in kwargs] + star_kwargs:
            arg_data |= info.id_roots | info.data_roots

        func = node.func
        result_id: set[Root] = {f"c:{index}"}
        recv_roots: tuple[Root, ...] = ()
        recv_attrs: tuple[str, ...] = ()
        method: Optional[str] = None
        canonical: Optional[tuple[str, ...]] = None

        if isinstance(func, ast.Attribute) and not (
            _dotted_name(func) and not self._is_local_chain(func)
        ):
            # Method call on a local value: capture the receiver chain.
            recv_info = self._eval(func.value)
            method = func.attr
            self._record_read(func)  # the method name is a chain read too
            chain = _dotted_name(func.value)
            if chain and chain[0] in self.env:
                recv_attrs = chain[1:]
            recv_roots = tuple(sorted(recv_info.id_roots))
            if method in ACCESSOR_METHODS:
                # The view/element shares the receiver's identity —
                # but only its identity: data accumulated *into* a
                # local container is bytes, not aliased objects.
                result_id |= recv_info.id_roots
            if method in MUTATOR_METHODS and chain is not None:
                # Mutator writes are attributed only through name
                # chains; `d.setdefault(k, []).append(v)` mutates the
                # anonymous inner list, not anything d aliases.
                self._record_write(
                    recv_info.id_roots,
                    recv_attrs + (method,),
                    node.lineno,
                    f"mutator .{method}()",
                )
            arg_data |= recv_info.data_roots
        else:
            canonical = _canonical(func, self.aliases)
            if canonical is None:
                # func is itself a call/subscript — evaluate for effects.
                inner = self._eval(func)
                arg_data |= inner.data_roots
            elif len(canonical) == 1 and canonical[0] in CONTAINER_TRANSPARENT:
                # sorted(xs) etc. holds the same element objects as xs.
                for info in args + [a for _, a in kwargs]:
                    result_id |= info.id_roots
            if canonical is not None and not (
                len(canonical) == 1 and canonical[0] in CONTAINER_TRANSPARENT
            ):
                src = self._source_for(node, canonical, is_call=True)
                if src is not None:
                    root = frozenset({f"s:{src.index}"})
                    if self._emitting:
                        self.facts.calls.append(
                            CallFact(
                                index=index,
                                line=node.lineno,
                                func=canonical,
                                recv_roots=(),
                                recv_attrs=(),
                                method=None,
                                args=tuple(
                                    ArgInfo(
                                        tuple(sorted(a.id_roots)),
                                        tuple(sorted(a.data_roots)),
                                    )
                                    for a in args
                                ),
                                kwargs=tuple(
                                    (k, ArgInfo(
                                        tuple(sorted(a.id_roots)),
                                        tuple(sorted(a.data_roots)),
                                    ))
                                    for k, a in kwargs
                                ),
                            )
                        )
                    return _Info(root, root | frozenset(arg_data))

        if self._emitting:
            self.facts.calls.append(
                CallFact(
                    index=index,
                    line=node.lineno,
                    func=canonical,
                    recv_roots=recv_roots,
                    recv_attrs=recv_attrs,
                    method=method,
                    args=tuple(
                        ArgInfo(
                            tuple(sorted(a.id_roots)),
                            tuple(sorted(a.data_roots)),
                        )
                        for a in args
                    ),
                    kwargs=tuple(
                        (
                            k,
                            ArgInfo(
                                tuple(sorted(a.id_roots)),
                                tuple(sorted(a.data_roots)),
                            ),
                        )
                        for k, a in kwargs
                    ),
                )
            )
        return _Info(
            frozenset(result_id),
            frozenset(result_id) | frozenset(arg_data),
        )

    # -- fact recording -------------------------------------------------------
    def _record_read(self, node: ast.AST) -> None:
        if not self._emitting:
            return
        chain = _dotted_name(node)
        attrs: list[str] = []
        base: ast.AST = node
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            if isinstance(base, ast.Attribute):
                attrs.append(base.attr)
            else:
                attrs.append("[]")
            base = base.value
        attrs.reverse()
        if not isinstance(base, ast.Name) or base.id not in self.env:
            return
        del chain
        roots = tuple(sorted(self.env[base.id].id_roots))
        if not roots:
            return
        fact = ReadFact(roots, tuple(attrs), node.lineno)
        if fact not in self._reads_seen:
            self._reads_seen.add(fact)
            self.facts.reads.append(fact)

    def _record_write(
        self,
        roots: frozenset[Root],
        attrs: tuple[str, ...],
        line: int,
        reason: str,
    ) -> None:
        if not self._emitting or not roots:
            return
        fact = WriteFact(tuple(sorted(roots)), attrs, line, reason)
        if fact not in self._writes_seen:
            self._writes_seen.add(fact)
            self.facts.writes.append(fact)

    # -- pass B: statements ---------------------------------------------------
    def _emit_stmt(self, stmt: ast.stmt) -> None:
        for node in self._walk_stmt(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._emit_target_write(target, "assign")
                self._eval(node.value)
            elif isinstance(node, ast.AnnAssign):
                self._emit_target_write(node.target, "assign")
                if node.value is not None:
                    self._eval(node.value)
            elif isinstance(node, ast.AugAssign):
                self._emit_target_write(node.target, "augassign")
                if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                    self._record_read(node.target)
                self._eval(node.value)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._emit_target_write(target, "del")
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    info = self._eval(node.value)
                    self.facts.returns.append(
                        ReturnFact(
                            tuple(sorted(info.id_roots)),
                            tuple(sorted(info.data_roots)),
                            node.lineno,
                        )
                    )
            elif isinstance(node, ast.Expr):
                self._eval(node.value)
            elif isinstance(node, (ast.If, ast.While)):
                self._eval(node.test)
            elif isinstance(node, ast.Assert):
                self._eval(node.test)
                if node.msg is not None:
                    self._eval(node.msg)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._eval(node.iter)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self._eval(item.context_expr)
            elif isinstance(node, ast.Raise):
                if node.exc is not None:
                    self._eval(node.exc)

    def _emit_target_write(self, target: ast.AST, reason: str) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            attrs: list[str] = []
            base: ast.AST = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                if isinstance(base, ast.Attribute):
                    attrs.append(base.attr)
                else:
                    attrs.append("[]")
                    self._eval(base.slice)  # index reads still count
                base = base.value
            attrs.reverse()
            info = self._eval(base)
            self._record_write(
                info.id_roots, tuple(attrs), target.lineno, reason
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._emit_target_write(
                    elt.value if isinstance(elt, ast.Starred) else elt, reason
                )


# --------------------------------------------------------------------------- #
# File-level extraction
# --------------------------------------------------------------------------- #

def _class_fields(cls_node: ast.ClassDef) -> tuple[str, ...]:
    """Class-level declared attribute names, in declaration order.

    Annotated assignments (``x: int = 0`` — dataclass fields) and plain
    class-variable assignments (``kind = "counter"``) both count;
    dunders and ``__slots__``-style machinery are skipped (``__slots__``
    declares *storage*, the attributes themselves show up as writes).
    """
    names: list[str] = []
    for stmt in cls_node.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("__"):
                if target.id not in names:
                    names.append(target.id)
    return tuple(names)


def _class_attr_types(
    cls_node: ast.ClassDef,
    aliases: dict[str, tuple[str, ...]],
    project_classes: frozenset[str],
) -> dict[str, tuple[str, ...]]:
    """Infer ``self.<attr>`` project-class types from method bodies."""

    def value_types(value: ast.AST, anns: dict[str, tuple[str, ...]]) -> set[str]:
        if isinstance(value, ast.Name):
            return {n for n in anns.get(value.id, ()) if n in project_classes}
        if isinstance(value, ast.Call):
            dotted = _canonical(value.func, aliases)
            if dotted and dotted[-1] in project_classes:
                return {dotted[-1]}
            return set()
        if isinstance(value, ast.IfExp):
            return value_types(value.body, anns) | value_types(
                value.orelse, anns
            )
        if isinstance(value, ast.BoolOp):
            out: set[str] = set()
            for v in value.values:
                out |= value_types(v, anns)
            return out
        return set()

    out: dict[str, set[str]] = {}
    for method in cls_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        anns = {
            a.arg: _annotation_names(a.annotation)
            for a in _all_params(method)
            if a.annotation is not None
        }
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                extra = {
                    n
                    for n in _annotation_names(node.annotation)
                    if n in project_classes
                }
            else:
                continue
            for target in targets:
                dotted = _dotted_name(target)
                if dotted and len(dotted) == 2 and dotted[0] == "self":
                    types = out.setdefault(dotted[1], set())
                    if node.value is not None:
                        types |= value_types(node.value, anns)
                    if isinstance(node, ast.AnnAssign):
                        types |= extra
    return {k: tuple(sorted(v)) for k, v in out.items() if v}


def extract_file_facts(
    path: Path,
    source: Optional[str] = None,
    *,
    project_classes: frozenset[str] = frozenset(),
) -> FileFacts:
    """Parse one file and extract all function/class facts."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    module = module_name_for(path)
    suppressions = {
        line: tuple(sorted(rules))
        for line, rules in _parse_suppressions(source).items()
    }
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return FileFacts(str(path), module, digest, {}, {}, suppressions)
    aliases = _import_aliases(tree)

    functions: dict[str, FunctionFacts] = {}
    classes: dict[str, ClassFacts] = {}

    def handle_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, cls: Optional[str]
    ) -> None:
        qual = f"{module}.{cls}.{node.name}" if cls else f"{module}.{node.name}"
        extractor = _FunctionExtractor(
            node,
            module=module,
            qualname=qual,
            cls=cls,
            aliases=aliases,
            project_classes=project_classes,
        )
        functions[qual] = extractor.run()

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle_function(node, None)
        elif isinstance(node, ast.ClassDef):
            method_names = []
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    handle_function(sub, node.name)
                    method_names.append(sub.name)
            classes[f"{module}.{node.name}"] = ClassFacts(
                qualname=f"{module}.{node.name}",
                module=module,
                name=node.name,
                line=node.lineno,
                bases=tuple(
                    b
                    for b in (
                        _canonical(base, aliases) for base in node.bases
                    )
                    if b is not None
                ),
                methods=tuple(method_names),
                attr_types=_class_attr_types(
                    node, aliases, project_classes
                ),
                fields=_class_fields(node),
            )
    return FileFacts(str(path), module, digest, functions, classes, suppressions)


# --------------------------------------------------------------------------- #
# Project index
# --------------------------------------------------------------------------- #

class ProjectIndex:
    """Symbol table over every analyzed file.

    Built in two phases: a cheap scan collects every class name defined
    anywhere in the project (so parameter annotations can be matched
    against project classes during extraction), then each file is
    extracted — through the incremental cache when one is supplied.
    """

    def __init__(self, files: dict[str, FileFacts]):
        self.files = files
        self.functions: dict[str, FunctionFacts] = {}
        self.classes: dict[str, ClassFacts] = {}
        self.paths: dict[str, str] = {}
        for facts in files.values():
            for qual, fn in facts.functions.items():
                self.functions[qual] = fn
                self.paths[qual] = facts.path
            for qual, cls in facts.classes.items():
                self.classes[qual] = cls
                self.paths[qual] = facts.path
        self.by_class_name: dict[str, list[ClassFacts]] = {}
        for cls in self.classes.values():
            self.by_class_name.setdefault(cls.name, []).append(cls)
        self._subclasses: Optional[dict[str, set[str]]] = None

    # -- construction ---------------------------------------------------------
    @staticmethod
    def scan_class_names(sources: dict[Path, str]) -> frozenset[str]:
        names: set[str] = set()
        for path, source in sources.items():
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    names.add(node.name)
        return frozenset(names)

    @classmethod
    def build(
        cls,
        paths: Iterable[Path],
        *,
        cache: Optional["FactsCache"] = None,
    ) -> "ProjectIndex":
        sources = {
            p: p.read_text(encoding="utf-8") for p in paths
        }
        class_names = cls.scan_class_names(sources)
        files: dict[str, FileFacts] = {}
        for path, source in sorted(sources.items()):
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            facts = cache.get(str(path), digest) if cache is not None else None
            if facts is None:
                facts = extract_file_facts(
                    path, source, project_classes=class_names
                )
                if cache is not None:
                    cache.put(facts)
            files[str(path)] = facts
        return cls(files)

    # -- lookups --------------------------------------------------------------
    def file_for(self, qualname: str) -> Optional[FileFacts]:
        path = self.paths.get(qualname)
        return self.files.get(path) if path else None

    def suppressed(self, fn: FunctionFacts, line: int, rule: str) -> bool:
        facts = self.file_for(fn.qualname)
        return facts.suppressed(line, rule) if facts else False

    def subclasses_of(self, class_name: str) -> set[str]:
        """Transitive project subclasses (by bare class name)."""
        if self._subclasses is None:
            direct: dict[str, set[str]] = {}
            for cls_facts in self.classes.values():
                for base in cls_facts.bases:
                    direct.setdefault(base[-1], set()).add(cls_facts.name)
            closed: dict[str, set[str]] = {}

            def close(name: str, seen: set[str]) -> set[str]:
                if name in closed:
                    return closed[name]
                out: set[str] = set()
                for sub in direct.get(name, ()):
                    if sub in seen:
                        continue
                    out.add(sub)
                    out |= close(sub, seen | {sub})
                closed[name] = out
                return out

            for name in list(direct):
                close(name, {name})
            self._subclasses = closed
        return self._subclasses.get(class_name, set())

    def resolve_method(
        self, type_names: Iterable[str], method: str
    ) -> set[str]:
        """Qualnames implementing ``method`` on any of ``type_names``.

        Looks in the named classes, their project base classes, and —
        for abstract bases like ``Scheduler`` — every project subclass,
        so calls through an interface conservatively dispatch to all
        implementations.
        """
        out: set[str] = set()
        for name in type_names:
            candidates = {name} | self.subclasses_of(name)
            frontier = list(candidates)
            seen = set(frontier)
            while frontier:
                cls_name = frontier.pop()
                for cls_facts in self.by_class_name.get(cls_name, ()):
                    if method in cls_facts.methods:
                        out.add(f"{cls_facts.module}.{cls_facts.name}.{method}")
                    for base in cls_facts.bases:
                        if base[-1] not in seen:
                            seen.add(base[-1])
                            frontier.append(base[-1])
        return out

    def resolve_function(
        self, dotted: tuple[str, ...], caller_module: Optional[str] = None
    ) -> set[str]:
        """Project functions a canonical dotted call target can reach."""
        name = ".".join(dotted)
        if name in self.functions:
            return {name}
        out: set[str] = set()
        # A bare name is a same-module helper (imports are already
        # canonicalized to full dotted paths by the alias map).
        if len(dotted) == 1:
            if caller_module is not None:
                qual = f"{caller_module}.{dotted[0]}"
                if qual in self.functions:
                    return {qual}
            return out
        # Class constructor: Foo(...) resolves to Foo.__init__ nowhere —
        # constructors are treated as fresh-value factories.
        if dotted[-1] in self.by_class_name:
            return set()
        suffix = "." + ".".join(dotted[-2:])
        for qual in self.functions:
            if qual.endswith(suffix):
                out.add(qual)
        return out
