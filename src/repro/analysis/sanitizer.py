"""Opt-in runtime invariant checking for simulation runs.

The paper states the invariants in prose; the engine enforces a subset
at decision boundaries.  :class:`InvariantSanitizer` re-derives all of
them independently, every round, from first principles:

* **capacity conservation** — per ``(server, GPU-type)`` slot,
  ``0 ≤ free ≤ capacity`` and the devices claimed by running gangs
  exactly account for ``capacity − free`` (constraint 1d);
* **gang completeness** — every running job holds exactly ``W_j``
  workers and every non-running job holds none (constraint 1e);
* **price bounds** — every slot's dual price satisfies
  ``U_min^r ≤ k_h^r(γ) ≤ U_max^r`` (Eqs. 5-8);
* **positive payoff** — every job admitted this round earned
  ``μ_j > 0`` (Algorithm 2, line 33);
* **primal/dual increments** — each audited round satisfies
  ``P_j − P_{j−1} ≥ (D_j − D_{j−1}) / α`` (Lemma 2).

Attach one to an engine (``SimulationEngine(..., sanitizer=...)`` or
``simulate(..., sanitizer=...)``); it is called after every scheduler
decision is applied.  A violation raises a structured
:class:`InvariantViolation` carrying the round index, simulated time,
offending job, and the observed values — or, in ``collect`` mode,
accumulates them for post-mortem inspection.

The per-invariant ``check_*`` methods are public so tests (and
downstream users with custom schedulers) can aim them at hand-crafted
states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.cluster.state import ClusterState
from repro.sim.progress import JobRuntime, JobState

__all__ = ["InvariantViolation", "InvariantSanitizer"]


class InvariantViolation(RuntimeError):
    """A runtime invariant failed; carries structured context.

    Attributes
    ----------
    rule:
        Which invariant failed: ``"capacity"``, ``"gang"``,
        ``"price-bounds"``, ``"payoff"``, or ``"primal-dual"``.
    round_index / now / job_id:
        Where in the run it happened (``None`` when not applicable).
    details:
        The offending values (slot, counts, bounds, ...).
    """

    def __init__(
        self,
        rule: str,
        message: str,
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
        job_id: Optional[int] = None,
        details: Optional[Mapping[str, Any]] = None,
    ):
        self.rule = rule
        self.round_index = round_index
        self.now = now
        self.job_id = job_id
        self.details = dict(details or {})
        where = []
        if round_index is not None:
            where.append(f"round {round_index}")
        if now is not None:
            where.append(f"t={now:g}s")
        if job_id is not None:
            where.append(f"job {job_id}")
        prefix = f"[{rule}" + (f" @ {', '.join(where)}" if where else "") + "] "
        extras = "; ".join(f"{k}={v}" for k, v in self.details.items())
        super().__init__(prefix + message + (f" ({extras})" if extras else ""))


@dataclass
class InvariantSanitizer:
    """Per-round invariant checker (see module docstring).

    Parameters
    ----------
    rel_tol / abs_tol:
        Tolerances for the float-valued checks (price bounds, Lemma 2).
        Counts (capacity, gangs) are checked exactly.
    mode:
        ``"raise"`` (default) raises on the first violation;
        ``"collect"`` records every violation in :attr:`violations` and
        keeps going — useful for surveying a broken run.
    """

    rel_tol: float = 1e-6
    abs_tol: float = 1e-9
    mode: str = "raise"
    violations: list[InvariantViolation] = field(default_factory=list)
    rounds_checked: int = 0

    def __post_init__(self) -> None:
        if self.mode not in {"raise", "collect"}:
            raise ValueError(f"mode must be 'raise' or 'collect', got {self.mode!r}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    # ------------------------------------------------------------- emission --
    def _emit(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)
        if self.mode == "raise":
            raise violation

    @property
    def ok(self) -> bool:
        """No violation observed so far (the useful assert in collect mode)."""
        return not self.violations

    # ------------------------------------------------------ invariant checks --
    def check_capacity(
        self,
        state: ClusterState,
        runtimes: Iterable[JobRuntime] = (),
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Conservation per slot: ``0 ≤ free ≤ cap`` and gangs account for use."""
        claimed: dict[tuple[int, str], int] = {}
        claimants: dict[tuple[int, str], list[int]] = {}
        for rt in runtimes:
            if rt.state is not JobState.RUNNING:
                continue
            for slot, count in rt.allocation.placements.items():
                claimed[slot] = claimed.get(slot, 0) + count
                claimants.setdefault(slot, []).append(rt.job_id)
        for slot in state.slots:
            node_id, type_name = slot
            cap = state.capacity(node_id, type_name)
            free = state.free(node_id, type_name)
            if free < 0 or free > cap:
                self._emit(
                    InvariantViolation(
                        "capacity",
                        f"free count outside [0, capacity] at slot {slot}",
                        round_index=round_index,
                        now=now,
                        details={"slot": slot, "free": free, "capacity": cap},
                    )
                )
                continue
            used = cap - free
            held = claimed.pop(slot, 0)
            if held != used:
                self._emit(
                    InvariantViolation(
                        "capacity",
                        f"running gangs hold {held} device(s) at slot {slot} "
                        f"but the state records {used} in use",
                        round_index=round_index,
                        now=now,
                        details={
                            "slot": slot,
                            "held_by_gangs": held,
                            "state_used": used,
                            "jobs": sorted(claimants.get(slot, [])),
                        },
                    )
                )
        for slot, held in sorted(claimed.items()):
            self._emit(
                InvariantViolation(
                    "capacity",
                    f"running gangs hold {held} device(s) at unknown slot {slot}",
                    round_index=round_index,
                    now=now,
                    details={"slot": slot, "held_by_gangs": held,
                             "jobs": sorted(claimants.get(slot, []))},
                )
            )

    def check_gangs(
        self,
        runtimes: Iterable[JobRuntime],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """All-or-nothing gangs: RUNNING ⇒ exactly ``W_j``; else zero."""
        for rt in runtimes:
            held = rt.allocation.total_workers
            if rt.state is JobState.RUNNING:
                if held != rt.job.num_workers:
                    self._emit(
                        InvariantViolation(
                            "gang",
                            f"running job holds {held} worker(s), gang size is "
                            f"{rt.job.num_workers}",
                            round_index=round_index,
                            now=now,
                            job_id=rt.job_id,
                            details={
                                "held": held,
                                "num_workers": rt.job.num_workers,
                            },
                        )
                    )
            elif held != 0:
                self._emit(
                    InvariantViolation(
                        "gang",
                        f"{rt.state.value} job holds {held} worker(s); only "
                        "running jobs may hold devices",
                        round_index=round_index,
                        now=now,
                        job_id=rt.job_id,
                        details={"held": held, "state": rt.state.value},
                    )
                )

    def check_price_bounds(
        self,
        prices: Any,
        state: ClusterState,
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """``U_min^r ≤ k_h^r(γ) ≤ U_max^r`` at the current occupancy (Eq. 5).

        ``prices`` is any object with the :class:`~repro.core.pricing.PriceBook`
        surface (``u_min`` / ``u_max`` mappings and ``price(node, type,
        state)``), so custom price functions are checkable too.
        """
        for node_id, type_name in state.slots:
            lo = prices.u_min.get(type_name, 0.0)
            hi = prices.u_max.get(type_name, 0.0)
            k = prices.price(node_id, type_name, state)
            slack = self.rel_tol * max(abs(lo), abs(hi)) + self.abs_tol
            if k < lo - slack or k > hi + slack:
                self._emit(
                    InvariantViolation(
                        "price-bounds",
                        f"price of slot ({node_id}, {type_name!r}) escaped "
                        "its calibrated bounds",
                        round_index=round_index,
                        now=now,
                        details={
                            "slot": (node_id, type_name),
                            "price": k,
                            "u_min": lo,
                            "u_max": hi,
                            "occupancy": state.used(node_id, type_name),
                        },
                    )
                )

    def check_payoffs(
        self,
        chosen: Mapping[int, Any],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Every admitted job earned a strictly positive payoff ``μ_j``."""
        for job_id in sorted(chosen):
            candidate = chosen[job_id]
            payoff = candidate.payoff
            if not payoff > 0.0 or not math.isfinite(payoff):
                self._emit(
                    InvariantViolation(
                        "payoff",
                        "admitted job has non-positive payoff; admission "
                        "requires μ_j > 0 (Algorithm 2, line 33)",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={
                            "payoff": payoff,
                            "utility": getattr(candidate, "utility", None),
                            "cost": getattr(candidate, "cost", None),
                        },
                    )
                )

    def check_round_audit(
        self,
        record: Any,
        *,
        round_index: Optional[int] = None,
    ) -> None:
        """Lemma 2 on one :class:`~repro.core.scheduler.RoundAudit` record:
        ``primal_increment ≥ dual_increment / α`` (within tolerance)."""
        alpha = max(record.alpha, 1.0)
        bound = record.dual_increment / alpha
        slack = self.rel_tol * max(abs(bound), abs(record.primal_increment))
        if record.primal_increment < bound - slack - self.abs_tol:
            self._emit(
                InvariantViolation(
                    "primal-dual",
                    "round violates Lemma 2: primal increment below "
                    "dual increment / α",
                    round_index=round_index,
                    now=getattr(record, "now", None),
                    details={
                        "primal_increment": record.primal_increment,
                        "dual_increment": record.dual_increment,
                        "alpha": record.alpha,
                        "bound": bound,
                    },
                )
            )

    # ------------------------------------------------------------ engine hook --
    def on_round(
        self,
        *,
        round_index: int,
        now: float,
        runtimes: Mapping[int, JobRuntime],
        state: ClusterState,
        scheduler: Any,
    ) -> None:
        """Full sweep after one applied scheduling decision.

        The structural invariants (capacity, gangs) are always checked.
        The pricing invariants run when the scheduler (or a wrapped
        ``inner`` scheduler, e.g. under profiling) exposes Hadar's
        introspection surface: ``last_prices``, ``last_chosen``, and
        ``audit``.
        """
        self.rounds_checked += 1
        jobs = runtimes.values()
        self.check_capacity(state, jobs, round_index=round_index, now=now)
        self.check_gangs(jobs, round_index=round_index, now=now)

        inner = scheduler
        while inner is not None and not hasattr(inner, "last_prices"):
            inner = getattr(inner, "inner", None)
        if inner is None:
            return
        prices = inner.last_prices
        if prices is not None:
            # Bounds are evaluated on a synthetic sweep of the *current*
            # occupancy; Eq. 5 must hold at whatever γ the round ended on.
            self.check_price_bounds(
                prices, state, round_index=round_index, now=now
            )
        chosen = getattr(inner, "last_chosen", None)
        if chosen:
            self.check_payoffs(chosen, round_index=round_index, now=now)
        audit = getattr(inner, "audit", None)
        if audit:
            self.check_round_audit(audit[-1], round_index=round_index)
