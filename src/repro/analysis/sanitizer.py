"""Opt-in runtime invariant checking for simulation runs.

The paper states the invariants in prose; the engine enforces a subset
at decision boundaries.  :class:`InvariantSanitizer` re-derives all of
them independently, every round, from first principles:

* **capacity conservation** — per ``(server, GPU-type)`` slot,
  ``0 ≤ free ≤ capacity`` and the devices claimed by running gangs
  exactly account for ``capacity − free`` (constraint 1d);
* **gang completeness** — every running job holds exactly ``W_j``
  workers and every non-running job holds none (constraint 1e);
* **price bounds** — every slot's dual price satisfies
  ``U_min^r ≤ k_h^r(γ) ≤ U_max^r`` (Eqs. 5-8);
* **positive payoff** — every job admitted this round earned
  ``μ_j > 0`` (Algorithm 2, line 33);
* **primal/dual increments** — each audited round satisfies
  ``P_j − P_{j−1} ≥ (D_j − D_{j−1}) / α`` (Lemma 2).

The baselines get their own invariants, dispatched off each scheduler's
public introspection surface:

* **Gavel LP feasibility** — the time-fraction matrix ``Y`` behind every
  decision satisfies ``0 ≤ Y ≤ 1``, per-job row sums ``Σ_r Y[j,r] ≤ 1``,
  and per-type weighted column sums ``Σ_j W_j·Y[j,r] ≤ C_r`` (the LP's
  own constraints, re-checked as residuals on the solver output);
* **Tiresias queue monotonicity** — demotion to the low-priority queue
  is one-way (PromoteKnob disabled), and the demoted set is exactly the
  active jobs whose attained service crossed the queue threshold.

Attach one to an engine (``SimulationEngine(..., sanitizer=...)`` or
``simulate(..., sanitizer=...)``); it is called after every scheduler
decision is applied.  A violation raises a structured
:class:`InvariantViolation` carrying the round index, simulated time,
offending job, and the observed values — or, in ``collect`` mode,
accumulates them for post-mortem inspection.

The per-invariant ``check_*`` methods are public so tests (and
downstream users with custom schedulers) can aim them at hand-crafted
states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.cluster.state import ClusterState
from repro.sim.progress import JobRuntime, JobState

__all__ = ["InvariantViolation", "InvariantSanitizer"]


class InvariantViolation(RuntimeError):
    """A runtime invariant failed; carries structured context.

    Attributes
    ----------
    rule:
        Which invariant failed: ``"capacity"``, ``"gang"``,
        ``"price-bounds"``, ``"payoff"``, ``"primal-dual"``,
        ``"gavel-feasibility"``, ``"queue-monotonicity"``,
        ``"availability"``, ``"rollback"``, ``"degraded-rate"``, or
        ``"partition-stall"``.
    round_index / now / job_id:
        Where in the run it happened (``None`` when not applicable).
    details:
        The offending values (slot, counts, bounds, ...).
    """

    def __init__(
        self,
        rule: str,
        message: str,
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
        job_id: Optional[int] = None,
        details: Optional[Mapping[str, Any]] = None,
    ):
        self.rule = rule
        self.round_index = round_index
        self.now = now
        self.job_id = job_id
        self.details = dict(details or {})
        where = []
        if round_index is not None:
            where.append(f"round {round_index}")
        if now is not None:
            where.append(f"t={now:g}s")
        if job_id is not None:
            where.append(f"job {job_id}")
        prefix = f"[{rule}" + (f" @ {', '.join(where)}" if where else "") + "] "
        extras = "; ".join(f"{k}={v}" for k, v in self.details.items())
        super().__init__(prefix + message + (f" ({extras})" if extras else ""))


@dataclass
class InvariantSanitizer:
    """Per-round invariant checker (see module docstring).

    Parameters
    ----------
    rel_tol / abs_tol:
        Tolerances for the float-valued checks (price bounds, Lemma 2).
        Counts (capacity, gangs) are checked exactly.
    mode:
        ``"raise"`` (default) raises on the first violation;
        ``"collect"`` records every violation in :attr:`violations` and
        keeps going — useful for surveying a broken run.
    """

    rel_tol: float = 1e-6
    abs_tol: float = 1e-9
    mode: str = "raise"
    violations: list[InvariantViolation] = field(default_factory=list)
    rounds_checked: int = 0
    # Jobs ever seen demoted — the reference set for one-way demotion.
    _tiresias_seen: set[int] = field(default_factory=set, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in {"raise", "collect"}:
            raise ValueError(f"mode must be 'raise' or 'collect', got {self.mode!r}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    # ------------------------------------------------------------- emission --
    def _emit(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)
        if self.mode == "raise":
            raise violation

    @property
    def ok(self) -> bool:
        """No violation observed so far (the useful assert in collect mode)."""
        return not self.violations

    # ---------------------------------------------------- engine snapshots --
    def state_dict(self) -> dict:
        """Cross-round sanitizer state for engine snapshots.

        Violation ``details`` values may be arbitrary Python objects
        (slots, tuples); non-JSON-able values are stringified on capture —
        the structured fields and the formatted message round-trip
        exactly.
        """
        def _jsonable(value):
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return str(value)

        return {
            "rounds_checked": self.rounds_checked,
            "tiresias_seen": sorted(self._tiresias_seen),
            "violations": [
                {
                    "rule": v.rule,
                    "message": str(v),
                    "round_index": v.round_index,
                    "now": v.now,
                    "job_id": v.job_id,
                    "details": {k: _jsonable(val) for k, val in v.details.items()},
                }
                for v in self.violations
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.rounds_checked = int(state["rounds_checked"])
        self._tiresias_seen = {int(j) for j in state["tiresias_seen"]}
        violations = []
        for rec in state["violations"]:
            v = InvariantViolation.__new__(InvariantViolation)
            Exception.__init__(v, rec["message"])
            v.rule = rec["rule"]
            v.round_index = rec["round_index"]
            v.now = rec["now"]
            v.job_id = rec["job_id"]
            v.details = dict(rec["details"])
            violations.append(v)
        self.violations = violations

    # ------------------------------------------------------ invariant checks --
    def check_capacity(
        self,
        state: ClusterState,
        runtimes: Iterable[JobRuntime] = (),
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Conservation per slot: ``0 ≤ free ≤ cap`` and gangs account for use."""
        claimed: dict[tuple[int, str], int] = {}
        claimants: dict[tuple[int, str], list[int]] = {}
        for rt in runtimes:
            if rt.state is not JobState.RUNNING:
                continue
            for slot, count in rt.allocation.placements.items():
                claimed[slot] = claimed.get(slot, 0) + count
                claimants.setdefault(slot, []).append(rt.job_id)
        for slot in state.slots:
            node_id, type_name = slot
            cap = state.capacity(node_id, type_name)
            free = state.free(node_id, type_name)
            if free < 0 or free > cap:
                self._emit(
                    InvariantViolation(
                        "capacity",
                        f"free count outside [0, capacity] at slot {slot}",
                        round_index=round_index,
                        now=now,
                        details={"slot": slot, "free": free, "capacity": cap},
                    )
                )
                continue
            used = cap - free
            held = claimed.pop(slot, 0)
            if held != used:
                self._emit(
                    InvariantViolation(
                        "capacity",
                        f"running gangs hold {held} device(s) at slot {slot} "
                        f"but the state records {used} in use",
                        round_index=round_index,
                        now=now,
                        details={
                            "slot": slot,
                            "held_by_gangs": held,
                            "state_used": used,
                            "jobs": sorted(claimants.get(slot, [])),
                        },
                    )
                )
        for slot, held in sorted(claimed.items()):
            self._emit(
                InvariantViolation(
                    "capacity",
                    f"running gangs hold {held} device(s) at unknown slot {slot}",
                    round_index=round_index,
                    now=now,
                    details={"slot": slot, "held_by_gangs": held,
                             "jobs": sorted(claimants.get(slot, []))},
                )
            )

    def check_gangs(
        self,
        runtimes: Iterable[JobRuntime],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """All-or-nothing gangs: RUNNING ⇒ exactly ``W_j``; else zero."""
        for rt in runtimes:
            held = rt.allocation.total_workers
            if rt.state is JobState.RUNNING:
                if held != rt.job.num_workers:
                    self._emit(
                        InvariantViolation(
                            "gang",
                            f"running job holds {held} worker(s), gang size is "
                            f"{rt.job.num_workers}",
                            round_index=round_index,
                            now=now,
                            job_id=rt.job_id,
                            details={
                                "held": held,
                                "num_workers": rt.job.num_workers,
                            },
                        )
                    )
            elif held != 0:
                self._emit(
                    InvariantViolation(
                        "gang",
                        f"{rt.state.value} job holds {held} worker(s); only "
                        "running jobs may hold devices",
                        round_index=round_index,
                        now=now,
                        job_id=rt.job_id,
                        details={"held": held, "state": rt.state.value},
                    )
                )

    def check_price_bounds(
        self,
        prices: Any,
        state: ClusterState,
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """``U_min^r ≤ k_h^r(γ) ≤ U_max^r`` at the current occupancy (Eq. 5).

        ``prices`` is any object with the :class:`~repro.core.pricing.PriceBook`
        surface (``u_min`` / ``u_max`` mappings and ``price(node, type,
        state)``), so custom price functions are checkable too.
        """
        for node_id, type_name in state.slots:
            lo = prices.u_min.get(type_name, 0.0)
            hi = prices.u_max.get(type_name, 0.0)
            k = prices.price(node_id, type_name, state)
            slack = self.rel_tol * max(abs(lo), abs(hi)) + self.abs_tol
            if k < lo - slack or k > hi + slack:
                self._emit(
                    InvariantViolation(
                        "price-bounds",
                        f"price of slot ({node_id}, {type_name!r}) escaped "
                        "its calibrated bounds",
                        round_index=round_index,
                        now=now,
                        details={
                            "slot": (node_id, type_name),
                            "price": k,
                            "u_min": lo,
                            "u_max": hi,
                            "occupancy": state.used(node_id, type_name),
                        },
                    )
                )

    def check_payoffs(
        self,
        chosen: Mapping[int, Any],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Every admitted job earned a strictly positive payoff ``μ_j``."""
        for job_id in sorted(chosen):
            candidate = chosen[job_id]
            payoff = candidate.payoff
            if not payoff > 0.0 or not math.isfinite(payoff):
                self._emit(
                    InvariantViolation(
                        "payoff",
                        "admitted job has non-positive payoff; admission "
                        "requires μ_j > 0 (Algorithm 2, line 33)",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={
                            "payoff": payoff,
                            "utility": getattr(candidate, "utility", None),
                            "cost": getattr(candidate, "cost", None),
                        },
                    )
                )

    def check_round_audit(
        self,
        record: Any,
        *,
        round_index: Optional[int] = None,
    ) -> None:
        """Lemma 2 on one :class:`~repro.core.scheduler.RoundAudit` record:
        ``primal_increment ≥ dual_increment / α`` (within tolerance)."""
        alpha = max(record.alpha, 1.0)
        bound = record.dual_increment / alpha
        slack = self.rel_tol * max(abs(bound), abs(record.primal_increment))
        if record.primal_increment < bound - slack - self.abs_tol:
            self._emit(
                InvariantViolation(
                    "primal-dual",
                    "round violates Lemma 2: primal increment below "
                    "dual increment / α",
                    round_index=round_index,
                    now=getattr(record, "now", None),
                    details={
                        "primal_increment": record.primal_increment,
                        "dual_increment": record.dual_increment,
                        "alpha": record.alpha,
                        "bound": bound,
                    },
                )
            )

    def check_gavel_feasibility(
        self,
        allocation_matrix: Any,
        workers: Mapping[int, int],
        capacity: Mapping[str, int],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Residual check of Gavel's LP constraints on a solved ``Y``.

        ``allocation_matrix`` is anything with the
        :class:`~repro.baselines.gavel.policy.AllocationMatrix` surface
        (``job_ids``, ``types``, ``fraction``); ``workers`` maps job id to
        gang size ``W_j`` and ``capacity`` maps GPU type to device count
        ``C_r``.  Verifies ``0 ≤ Y[j,r] ≤ 1``, ``Σ_r Y[j,r] ≤ 1`` per job,
        and ``Σ_j W_j·Y[j,r] ≤ C_r`` per type, all within tolerance.
        """
        entry_slack = self.rel_tol + self.abs_tol
        col_used: dict[str, float] = {t: 0.0 for t in allocation_matrix.types}
        for job_id in allocation_matrix.job_ids:
            row_sum = 0.0
            for type_name in allocation_matrix.types:
                y = allocation_matrix.fraction(job_id, type_name)
                if y < -entry_slack or y > 1.0 + entry_slack:
                    self._emit(
                        InvariantViolation(
                            "gavel-feasibility",
                            f"Y entry for type {type_name!r} escaped [0, 1]",
                            round_index=round_index,
                            now=now,
                            job_id=job_id,
                            details={"type": type_name, "fraction": y},
                        )
                    )
                row_sum += y
                col_used[type_name] += workers.get(job_id, 0) * y
            if row_sum > 1.0 + self.rel_tol + self.abs_tol:
                self._emit(
                    InvariantViolation(
                        "gavel-feasibility",
                        "job's time fractions sum past 1 "
                        "(it would run on >1 type at once)",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={"row_sum": row_sum},
                    )
                )
        for type_name in allocation_matrix.types:
            cap = float(capacity.get(type_name, 0))
            used = col_used[type_name]
            if used > cap + self.rel_tol * max(cap, 1.0) + self.abs_tol:
                self._emit(
                    InvariantViolation(
                        "gavel-feasibility",
                        f"expected demand on type {type_name!r} exceeds "
                        "its device capacity",
                        round_index=round_index,
                        now=now,
                        details={
                            "type": type_name,
                            "weighted_demand": used,
                            "capacity": cap,
                        },
                    )
                )

    def check_availability(
        self,
        state: ClusterState,
        runtimes: Iterable[JobRuntime],
        failed: Mapping[tuple[int, str], int],
        *,
        nominal: Optional[Mapping[tuple[int, str], int]] = None,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Fault-availability invariants on the surviving cluster.

        Under fault injection, the live :class:`ClusterState` carries the
        *surviving* capacity — failed devices are subtracted out.  Checks
        that no running gang holds devices a failure removed (per slot,
        the gangs' claims fit within surviving capacity) and, when the
        ``nominal`` per-slot capacities are supplied, that the fault
        bookkeeping is consistent: ``surviving + failed == nominal``.
        """
        claimed: dict[tuple[int, str], int] = {}
        claimants: dict[tuple[int, str], list[int]] = {}
        for rt in runtimes:
            if rt.state is not JobState.RUNNING:
                continue
            for slot, count in rt.allocation.placements.items():
                claimed[slot] = claimed.get(slot, 0) + count
                claimants.setdefault(slot, []).append(rt.job_id)
        for slot, held in sorted(claimed.items()):
            surviving = (
                state.capacity(*slot) if slot in set(state.slots) else 0
            )
            if held > surviving:
                self._emit(
                    InvariantViolation(
                        "availability",
                        f"running gangs hold {held} device(s) at slot {slot} "
                        f"but only {surviving} survive the injected faults",
                        round_index=round_index,
                        now=now,
                        details={
                            "slot": slot,
                            "held_by_gangs": held,
                            "surviving": surviving,
                            "failed": failed.get(slot, 0),
                            "jobs": sorted(claimants.get(slot, [])),
                        },
                    )
                )
        if nominal is not None:
            for slot in sorted(set(nominal) | set(failed)):
                surviving = (
                    state.capacity(*slot) if slot in set(state.slots) else 0
                )
                down = failed.get(slot, 0)
                expected = nominal.get(slot, 0)
                if surviving + down != expected or down < 0:
                    self._emit(
                        InvariantViolation(
                            "availability",
                            f"fault bookkeeping inconsistent at slot {slot}: "
                            "surviving + failed != nominal capacity",
                            round_index=round_index,
                            now=now,
                            details={
                                "slot": slot,
                                "surviving": surviving,
                                "failed": down,
                                "nominal": expected,
                            },
                        )
                    )

    def check_rollback(
        self,
        rt: JobRuntime,
        remaining_before: float,
        *,
        now: Optional[float] = None,
        fault_id: Optional[int] = None,
    ) -> None:
        """Crash-restart accounting on one rolled-back job.

        Called by :class:`~repro.faults.FaultPhase` right after it resets
        ``rt`` to its checkpoint.  A rollback can only *lose* progress:
        the job's remaining work must not have decreased, its progress
        counter must not sit behind the checkpoint it was reset to, and
        neither may go negative.
        """
        slack = self.rel_tol * max(abs(remaining_before), 1.0) + self.abs_tol
        details = {
            "fault_id": fault_id,
            "remaining_before": remaining_before,
            "remaining_after": rt.remaining_iterations,
            "checkpoint_iterations": rt.checkpoint_iterations,
            "iterations_done": rt.iterations_done,
        }
        if rt.remaining_iterations < remaining_before - slack:
            self._emit(
                InvariantViolation(
                    "rollback",
                    "rollback decreased a job's remaining work; a crash "
                    "restart may only lose progress, never create it",
                    now=now,
                    job_id=rt.job_id,
                    details=details,
                )
            )
        if rt.iterations_done < rt.checkpoint_iterations - self.abs_tol:
            self._emit(
                InvariantViolation(
                    "rollback",
                    "job progress sits behind the checkpoint it was "
                    "restored to",
                    now=now,
                    job_id=rt.job_id,
                    details=details,
                )
            )
        if rt.iterations_done < -self.abs_tol or rt.checkpoint_iterations < -self.abs_tol:
            self._emit(
                InvariantViolation(
                    "rollback",
                    "negative iteration counter after rollback",
                    now=now,
                    job_id=rt.job_id,
                    details=details,
                )
            )

    def check_degraded_rate(
        self,
        rt: JobRuntime,
        cap_rate: float,
        *,
        now: Optional[float] = None,
    ) -> None:
        """A degraded (but not stalled) gang runs in ``(0, nominal]``.

        ``cap_rate`` is the gang's nominal composed rate *without* the
        degrade factor (realized rate × straggler slowdown).  Degrade
        windows may only throttle: the retuned rate must stay strictly
        positive (a throttled gang is never evicted or frozen) and must
        not exceed the nominal cap (degradation never speeds a gang up).
        """
        slack = self.rel_tol * max(abs(cap_rate), 1.0) + self.abs_tol
        details = {"rate": rt.rate, "nominal_rate": cap_rate}
        if not rt.rate > 0.0:
            self._emit(
                InvariantViolation(
                    "degraded-rate",
                    "degraded gang's rate is not strictly positive; only "
                    "partitions may stall a gang to zero",
                    now=now,
                    job_id=rt.job_id,
                    details=details,
                )
            )
        elif rt.rate > cap_rate + slack:
            self._emit(
                InvariantViolation(
                    "degraded-rate",
                    "degraded gang runs faster than its nominal rate; a "
                    "degrade window may only throttle",
                    now=now,
                    job_id=rt.job_id,
                    details=details,
                )
            )

    def check_partition_stall(
        self,
        stalled: Iterable[int],
        runtimes: Mapping[int, JobRuntime],
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Partitioned gangs never accrue progress while stalled.

        Every job the fault layer reports as stalled must be observed
        with a rate of exactly zero — the parameter-sync barrier cannot
        make progress across a network cut, so any positive rate on a
        stalled gang is progress accrual the partition forbids.
        """
        for job_id in sorted(stalled):
            rt = runtimes.get(job_id)
            if rt is None:
                continue
            # Exact zero on purpose: the stall path assigns 0.0, so any
            # other bit pattern is leaked progress, however small.
            if rt.state is JobState.RUNNING and rt.rate != 0.0:  # repro-lint: disable=REP001
                self._emit(
                    InvariantViolation(
                        "partition-stall",
                        "gang stalled by a network partition has a "
                        "non-zero rate (it would accrue progress across "
                        "the cut)",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={"rate": rt.rate},
                    )
                )

    def check_tiresias_monotonicity(
        self,
        demoted: Iterable[int],
        runtimes: Mapping[int, JobRuntime],
        threshold: float,
        *,
        round_index: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """Two-queue LAS with PromoteKnob disabled (one-way demotion).

        A job seen in the low-priority queue once must stay there for the
        rest of the run; every demoted job must have actually crossed the
        attained-service ``threshold`` (service never shrinks, so this
        holds at any later observation too); and every still-active job
        past the threshold must have been demoted.  The sanitizer keeps
        the union of all demoted sets it has observed as the reference.
        """
        demoted = set(demoted)
        slack = self.rel_tol * threshold + self.abs_tol
        promoted = self._tiresias_seen - demoted
        for job_id in sorted(promoted):
            self._emit(
                InvariantViolation(
                    "queue-monotonicity",
                    "job returned to the high-priority queue; demotion "
                    "is one-way (PromoteKnob disabled)",
                    round_index=round_index,
                    now=now,
                    job_id=job_id,
                )
            )
        self._tiresias_seen |= demoted
        for job_id in sorted(demoted):
            rt = runtimes.get(job_id)
            if rt is None:
                continue
            if rt.attained_service < threshold - slack:
                self._emit(
                    InvariantViolation(
                        "queue-monotonicity",
                        "demoted job never reached the queue threshold",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={
                            "attained_service": rt.attained_service,
                            "threshold": threshold,
                        },
                    )
                )
        for job_id in sorted(runtimes):
            rt = runtimes[job_id]
            if rt.state is JobState.COMPLETE or job_id in demoted:
                continue
            if rt.attained_service >= threshold + slack:
                self._emit(
                    InvariantViolation(
                        "queue-monotonicity",
                        "active job crossed the queue threshold but was "
                        "not demoted",
                        round_index=round_index,
                        now=now,
                        job_id=job_id,
                        details={
                            "attained_service": rt.attained_service,
                            "threshold": threshold,
                        },
                    )
                )

    # ------------------------------------------------------------ engine hook --
    def on_round(
        self,
        *,
        round_index: int,
        now: float,
        runtimes: Mapping[int, JobRuntime],
        state: ClusterState,
        scheduler: Any,
        failed: Optional[Mapping[tuple[int, str], int]] = None,
        stalled: Optional[Iterable[int]] = None,
    ) -> None:
        """Full sweep after one applied scheduling decision.

        The structural invariants (capacity, gangs) are always checked;
        under fault injection the engine also passes the live ``failed``
        mask and the availability invariants run too, plus the set of
        partition-``stalled`` jobs (whose rates must be exactly zero).
        Scheduler-specific invariants dispatch off each scheduler's
        introspection surface, found by walking the ``inner`` chain of
        wrappers (e.g. under profiling): Hadar exposes ``last_prices`` /
        ``last_chosen`` / ``audit``, Gavel ``last_allocation_matrix``,
        and Tiresias ``demoted_jobs`` / ``queue_threshold``.
        """
        self.rounds_checked += 1
        jobs = runtimes.values()
        self.check_capacity(state, jobs, round_index=round_index, now=now)
        self.check_gangs(jobs, round_index=round_index, now=now)
        if failed is not None:
            self.check_availability(
                state, jobs, failed, round_index=round_index, now=now
            )
        if stalled:
            self.check_partition_stall(
                stalled, runtimes, round_index=round_index, now=now
            )

        hadar = self._unwrap(scheduler, "last_prices")
        if hadar is not None:
            prices = hadar.last_prices
            if prices is not None:
                # Bounds are evaluated on a synthetic sweep of the *current*
                # occupancy; Eq. 5 must hold at whatever γ the round ended on.
                self.check_price_bounds(
                    prices, state, round_index=round_index, now=now
                )
            chosen = getattr(hadar, "last_chosen", None)
            if chosen:
                self.check_payoffs(chosen, round_index=round_index, now=now)
            audit = getattr(hadar, "audit", None)
            if audit:
                self.check_round_audit(audit[-1], round_index=round_index)

        gavel = self._unwrap(scheduler, "last_allocation_matrix")
        if gavel is not None and gavel.last_allocation_matrix is not None:
            workers = {
                rt.job_id: rt.job.num_workers for rt in runtimes.values()
            }
            self.check_gavel_feasibility(
                gavel.last_allocation_matrix,
                workers,
                self._capacity_by_type(state),
                round_index=round_index,
                now=now,
            )

        tiresias = self._unwrap(scheduler, "demoted_jobs")
        if tiresias is not None:
            self.check_tiresias_monotonicity(
                tiresias.demoted_jobs,
                runtimes,
                tiresias.queue_threshold,
                round_index=round_index,
                now=now,
            )

    @staticmethod
    def _unwrap(scheduler: Any, attr: str) -> Any:
        """The first scheduler in the wrapper chain exposing ``attr``."""
        inner = scheduler
        while inner is not None and not hasattr(inner, attr):
            inner = getattr(inner, "inner", None)
        return inner

    @staticmethod
    def _capacity_by_type(state: ClusterState) -> dict[str, int]:
        capacity: dict[str, int] = {}
        for node_id, type_name in state.slots:
            capacity[type_name] = (
                capacity.get(type_name, 0) + state.capacity(node_id, type_name)
            )
        return capacity
