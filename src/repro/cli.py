"""Command-line interface.

Everything the library does, driveable from a shell::

    repro generate-trace --num-jobs 100 --pattern continuous --out t.csv
    repro simulate --trace t.csv --scheduler hadar
    repro compare --num-jobs 60
    repro motivation
    repro report --scale default --out EXPERIMENTS.md

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines import (
    GavelScheduler,
    RandomScheduler,
    TiresiasScheduler,
    YarnCapacityScheduler,
)
from repro.cluster.cluster import Cluster, prototype_cluster, simulated_cluster
from repro.core import HadarScheduler, ProfilingScheduler, hadar_for_objective
from repro.metrics.fairness import finish_time_fairness
from repro.metrics.jct import jct_stats
from repro.metrics.utilization import utilization_summary
from repro.sim.engine import simulate
from repro.sim.interface import Scheduler
from repro.sim.stragglers import StragglerModel
from repro.workload.philly import PhillyTraceConfig, generate_philly_trace
from repro.workload.throughput import default_throughput_matrix
from repro.workload.trace import Trace

__all__ = ["main", "build_parser"]

SCHEDULERS = ("hadar", "hadar-makespan", "hadar-ftf", "gavel", "tiresias",
              "yarn-cs", "srtf", "random")


def make_scheduler(name: str, *, profiling: bool = False) -> Scheduler:
    """Instantiate a scheduler by CLI name."""
    base: Scheduler
    if name == "hadar":
        base = HadarScheduler()
    elif name == "hadar-makespan":
        base = hadar_for_objective("makespan")
    elif name == "hadar-ftf":
        base = hadar_for_objective("ftf")
    elif name == "gavel":
        base = GavelScheduler()
    elif name == "tiresias":
        base = TiresiasScheduler()
    elif name == "yarn-cs":
        base = YarnCapacityScheduler()
    elif name == "srtf":
        from repro.baselines import SRTFScheduler

        base = SRTFScheduler()
    elif name == "random":
        base = RandomScheduler()
    else:
        raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULERS}")
    return ProfilingScheduler(base) if profiling else base


def make_cluster(name: str) -> Cluster:
    if name == "simulated":
        return simulated_cluster()
    if name == "prototype":
        return prototype_cluster()
    raise ValueError(f"unknown cluster {name!r}; choose 'simulated' or 'prototype'")


def _load_trace(args: argparse.Namespace) -> Trace:
    if args.trace:
        if str(args.trace).endswith(".jsonl"):
            return Trace.from_jsonl(args.trace)
        return Trace.from_csv(args.trace)
    return generate_philly_trace(
        PhillyTraceConfig(
            num_jobs=args.num_jobs,
            arrival_pattern=args.pattern,
            jobs_per_hour=args.rate,
            seed=args.seed,
        )
    )


# ------------------------------------------------------------- subcommands --
def cmd_generate_trace(args: argparse.Namespace) -> int:
    trace = generate_philly_trace(
        PhillyTraceConfig(
            num_jobs=args.num_jobs,
            arrival_pattern=args.pattern,
            jobs_per_hour=args.rate,
            seed=args.seed,
        )
    )
    if str(args.out).endswith(".jsonl"):
        trace.to_jsonl(args.out)
    else:
        trace.to_csv(args.out)
    print(f"wrote {len(trace)} jobs to {args.out} ({trace})")
    return 0


def _run_with_snapshots(
    engine,
    every: int,
    directory,
    server=None,
    drain_s: float = 0.0,
    keep: int = 0,
    faults_file=None,
) -> "SimulationResult":  # noqa: F821
    """Drive an engine step-by-step, snapshotting every ``every`` rounds.

    Restores from the snapshot *chain* in ``directory`` when one exists
    (so re-running the same command after a kill continues the run):
    candidates are tried newest first, and any the codec rejects as
    corrupt — e.g. a file truncated by a kill mid-write on a filesystem
    without the fsync guarantees — are skipped in favor of the next-
    newest, counted in ``repro_snapshot_restore_fallbacks_total``.  With
    ``keep > 0`` only the newest ``keep`` snapshots are retained on disk.
    The engine snapshots once more on SIGTERM/SIGINT before exiting
    cleanly.

    Live fault reload: SIGHUP re-reads ``faults_file`` (when given) and
    an attached server's guarded ``POST /admin/faults`` enqueues its
    body; either way the new spec is spliced into the running engine
    between steps via :meth:`SimulationEngine.apply_fault_reload`.

    With an :class:`~repro.obs.server.ObservabilityServer` attached, the
    loop flips ``/readyz`` to 200 once stepping begins, reports each
    snapshot's path for ``/status``, and on SIGTERM flips readiness back
    off and holds the (still-scrapeable) endpoint up for ``drain_s``
    seconds before exiting — an orchestrator polling ``/readyz`` sees the
    503 and stops routing before the process disappears.
    """
    import signal
    import threading
    import time as _walltime

    from pathlib import Path

    from repro.sim.snapshot import SnapshotCodec, SnapshotError

    codec = SnapshotCodec()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    interrupted = {"flag": False}
    pending_specs: list[str] = []
    spec_lock = threading.Lock()

    def _queue_spec(spec: str) -> None:
        with spec_lock:
            pending_specs.append(spec)

    def _request_stop(signum, frame):  # pragma: no cover - signal path
        interrupted["flag"] = True

    # Handlers go in before restore/start: a SIGHUP or SIGTERM landing
    # while the engine is still warming up must queue, not kill.
    previous = [
        (signal.SIGTERM, signal.signal(signal.SIGTERM, _request_stop)),
        (signal.SIGINT, signal.signal(signal.SIGINT, _request_stop)),
    ]
    if faults_file is not None and hasattr(signal, "SIGHUP"):

        def _reload_faults(signum, frame):  # pragma: no cover - signal path
            try:
                _queue_spec(Path(faults_file).read_text(encoding="utf-8").strip())
            except OSError as exc:
                print(f"faults    : cannot read {faults_file}: {exc}",
                      file=sys.stderr)

        previous.append((signal.SIGHUP, signal.signal(signal.SIGHUP, _reload_faults)))
    if server is not None:
        server.fault_reload_fn = _queue_spec

    def _apply_pending_reloads() -> None:
        if not pending_specs:
            return
        with spec_lock:
            specs = list(pending_specs)
            pending_specs.clear()
        for spec in specs:
            try:
                info = engine.apply_fault_reload(spec)
            except (RuntimeError, ValueError) as exc:
                print(f"faults    : reload rejected: {exc}", file=sys.stderr)
                continue
            print(f"faults    : reloaded '{spec}' as epoch {info['epoch']} "
                  f"({info['events']} future events) at t={info['t']:.0f}s")

    try:
        restored = None
        skipped = 0
        for candidate in SnapshotCodec.chain(directory):
            try:
                engine.restore(codec.load(candidate))
            except SnapshotError as exc:
                print(f"snapshot  : skipping {candidate.name}: {exc}",
                      file=sys.stderr)
                skipped += 1
                continue
            restored = candidate
            break
        if restored is not None:
            print(f"restored  : {restored} (tick {engine.tick_count})"
                  + (f" after {skipped} corrupt snapshot(s)" if skipped else ""))
            if server is not None:
                server.note_snapshot(str(restored))
        else:
            engine.start()
        if skipped:
            engine.note_restore_fallbacks(skipped)
        if server is not None:
            server.set_ready(True)

        last = engine.scheduling_invocations
        more = True
        while more and not interrupted["flag"]:
            _apply_pending_reloads()
            more = engine.step()
            rounds = engine.scheduling_invocations
            if every > 0 and rounds - last >= every:
                path = directory / f"tick-{engine.tick_count:010d}.snapshot.json"
                codec.save(engine.snapshot(), path)
                SnapshotCodec.prune(directory, keep)
                last = rounds
                if server is not None:
                    server.note_snapshot(str(path))
        if interrupted["flag"] and more:
            if server is not None:
                server.set_ready(False)
            path = directory / f"tick-{engine.tick_count:010d}.snapshot.json"
            codec.save(engine.snapshot(), path)
            SnapshotCodec.prune(directory, keep)
            if server is not None:
                server.note_snapshot(str(path))
            print(f"interrupted: snapshot saved to {path}")
            if server is not None and drain_s > 0:
                _walltime.sleep(drain_s)
            raise SystemExit(0)
    finally:
        if server is not None:
            server.fault_reload_fn = None
        for signum, handler in previous:
            signal.signal(signum, handler)
    result = engine.stop()
    if server is not None:
        server.set_ready(False)
    return result


def cmd_simulate(args: argparse.Namespace) -> int:
    cluster = make_cluster(args.cluster)
    trace = _load_trace(args)
    scheduler = make_scheduler(args.scheduler, profiling=args.profiling)
    stragglers = (
        StragglerModel(incidence_per_hour=args.straggler_rate, seed=args.seed)
        if args.straggler_rate > 0
        else None
    )
    faults = sanitizer = None
    if args.faults:
        from repro.faults import FaultModel

        faults = FaultModel.from_spec(args.faults)
    if args.sanitize:
        from repro.analysis.sanitizer import InvariantSanitizer

        sanitizer = InvariantSanitizer()
    tracer = metrics = server = None
    if args.trace_out:
        from repro.obs import DecisionTracer

        tracer = DecisionTracer(args.trace_out)
    if args.metrics_out or args.json or args.listen:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    if args.snapshot_dir or args.listen:
        from repro.sim.engine import SimulationEngine
        from repro.workload.throughput import default_throughput_matrix as _dtm

        engine = SimulationEngine(
            cluster=cluster,
            trace=trace,
            scheduler=scheduler,
            matrix=_dtm(),
            round_length=args.round_min * 60.0,
            stragglers=stragglers,
            faults=faults,
            sanitizer=sanitizer,
            tracer=tracer,
            metrics=metrics,
        )
        if args.listen:
            from repro.obs import ObservabilityServer, parse_listen

            host, port = parse_listen(args.listen)
            server = ObservabilityServer(
                registry=metrics, status_fn=engine.status, host=host, port=port
            )
            server.start()
            print(f"listening : {server.url} (/metrics /healthz /readyz /status)")
        try:
            if args.snapshot_dir:
                result = _run_with_snapshots(
                    engine,
                    args.snapshot_every,
                    args.snapshot_dir,
                    server=server,
                    keep=args.snapshot_keep,
                )
            else:
                if server is not None:
                    server.set_ready(True)
                result = engine.run()
        finally:
            if server is not None:
                server.stop()
    else:
        result = simulate(
            cluster,
            trace,
            scheduler,
            round_length=args.round_min * 60.0,
            stragglers=stragglers,
            faults=faults,
            sanitizer=sanitizer,
            tracer=tracer,
            metrics=metrics,
        )
    if tracer is not None:
        tracer.close()
        print(f"trace     : {args.trace_out} ({tracer.records_emitted} records)")
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.to_json())
        print(f"metrics   : {args.metrics_out}")
    stats = jct_stats(result)
    util = utilization_summary(result, contended=True)
    ftf = finish_time_fairness(result, default_throughput_matrix())
    print(f"scheduler : {result.scheduler_name}")
    print(f"jobs done : {len(result.completed)}/{len(trace)}"
          + ("  (TRUNCATED)" if result.truncated else ""))
    print(f"mean JCT  : {stats.mean_hours:.2f} h   median {stats.median_hours:.2f} h"
          f"   p95 {stats.p95 / 3600:.2f} h")
    print(f"makespan  : {result.makespan() / 3600:.2f} h")
    print(f"wait      : {stats.mean_total_waiting / 3600:.2f} h mean")
    print(f"util      : {util.overall:.1%} (contended windows)")
    print(f"FTF       : mean {ftf.mean:.2f}   max {ftf.max:.2f}")
    if faults is not None:
        fs = result.fault_stats
        print(f"faults    : {fs.get('node_faults', 0)} node + "
              f"{fs.get('gpu_faults', 0)} gpu "
              f"({fs.get('recoveries', 0)} recovered, "
              f"{fs.get('permanent_faults', 0)} permanent)")
        if (fs.get("partitions") or fs.get("degraded_windows")
                or fs.get("storage_losses")):
            print(f"domains   : {fs.get('partitions', 0)} partition(s) "
                  f"({fs.get('gangs_stalled', 0)} gang-stall(s)), "
                  f"{fs.get('degraded_windows', 0)} degraded window(s), "
                  f"{fs.get('storage_losses', 0)} storage loss(es)")
        print(f"rollbacks : {fs.get('rollbacks', 0)} "
              f"({fs.get('rollback_seconds', 0.0) / 3600:.2f} h of progress lost)")
        print(f"rejected  : {len(result.rejections)} decision entr"
              f"{'y' if len(result.rejections) == 1 else 'ies'} repaired")
    if sanitizer is not None:
        print(f"sanitizer : {sanitizer.rounds_checked} rounds checked, "
              f"{len(sanitizer.violations)} violation(s)")
    if args.json:
        from repro.metrics.export import save_result_json

        save_result_json(result, args.json)
        print(f"json      : {args.json}")
    return 0 if not result.truncated else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Service mode: a long-lived engine fed by a streaming job source.

    Jobs are drawn from a seeded Poisson :class:`SubmissionSource` rather
    than a fixed trace; the engine snapshots every ``--snapshot-every``
    scheduler rounds into ``--snapshot-dir`` and again on SIGTERM, and a
    relaunch with the same arguments restores from the newest snapshot
    and continues bit-identically.  ``--listen HOST:PORT`` attaches the
    live observability endpoint (``/metrics`` ``/healthz`` ``/readyz``
    ``/status``; see docs/observability.md) and ``--trace-out`` a
    decision trace, size-rotated every ``--trace-rotate-mb`` MiB.
    """
    from repro.sim.engine import SimulationEngine
    from repro.workload.arrivals import SubmissionSource
    from repro.workload.trace import Trace

    cluster = make_cluster(args.cluster)
    scheduler = make_scheduler(args.scheduler)
    trace = _load_trace(args) if args.trace else Trace(jobs=())
    first_id = max((j.job_id for j in trace), default=-1) + 1
    source = SubmissionSource(
        args.rate,
        seed=args.seed,
        max_jobs=args.stream_jobs,
        first_job_id=first_id,
    )
    sanitizer = None
    if args.sanitize:
        from repro.analysis.sanitizer import InvariantSanitizer

        sanitizer = InvariantSanitizer()
    faults = None
    spec = args.faults
    if spec is None and args.faults_file:
        from pathlib import Path

        spec = Path(args.faults_file).read_text(encoding="utf-8").strip()
    if spec:
        from repro.faults import FaultModel

        faults = FaultModel.from_spec(spec)
    elif args.faults_file or args.admin_token:
        # Live reload needs a fault phase on the engine; an all-zero
        # model injects nothing until the first reload arrives.
        from repro.faults import FaultModel

        faults = FaultModel()
    tracer = metrics = server = None
    if args.trace_out:
        from repro.obs import DecisionTracer

        tracer = DecisionTracer(args.trace_out, rotate_mb=args.trace_rotate_mb)
    if args.listen or args.metrics_out:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    engine = SimulationEngine(
        cluster=cluster,
        trace=trace,
        scheduler=scheduler,
        matrix=default_throughput_matrix(),
        round_length=args.round_min * 60.0,
        max_time=args.max_hours * 3600.0,
        stragglers=None,
        faults=faults,
        sanitizer=sanitizer,
        tracer=tracer,
        metrics=metrics,
        source=source,
    )
    if args.listen:
        from repro.obs import ObservabilityServer, parse_listen

        host, port = parse_listen(args.listen)
        server = ObservabilityServer(
            registry=metrics,
            status_fn=engine.status,
            host=host,
            port=port,
            admin_token=args.admin_token,
        )
        server.start()
        endpoints = "/metrics /healthz /readyz /status"
        if args.admin_token:
            endpoints += " /admin/faults"
        print(f"listening : {server.url} ({endpoints})")
    try:
        result = _run_with_snapshots(
            engine,
            args.snapshot_every,
            args.snapshot_dir,
            server=server,
            drain_s=args.drain_s,
            keep=args.snapshot_keep,
            faults_file=args.faults_file,
        )
    finally:
        if tracer is not None:
            tracer.close()
        if server is not None:
            server.stop()
    if tracer is not None:
        parts = f" + {tracer.parts_rotated} rotated parts" if tracer.parts_rotated else ""
        print(f"trace     : {args.trace_out} "
              f"({tracer.records_emitted} records{parts})")
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.to_json())
        print(f"metrics   : {args.metrics_out}")
    stats = jct_stats(result)
    print(f"scheduler : {result.scheduler_name}")
    print(f"jobs done : {len(result.completed)}/{len(result.runtimes)}"
          + ("  (TRUNCATED)" if result.truncated else ""))
    print(f"streamed  : {source.emitted} jobs @ {args.rate:.1f}/h (seed {args.seed})")
    print(f"mean JCT  : {stats.mean_hours:.2f} h   median {stats.median_hours:.2f} h")
    print(f"makespan  : {result.makespan() / 3600:.2f} h")
    if faults is not None:
        fs = result.fault_stats
        print(f"faults    : {fs.get('node_faults', 0)} node + "
              f"{fs.get('gpu_faults', 0)} gpu, "
              f"{fs.get('partitions', 0)} partition(s), "
              f"{fs.get('degraded_windows', 0)} degraded window(s), "
              f"{fs.get('storage_losses', 0)} storage loss(es)")
    if sanitizer is not None:
        print(f"sanitizer : {sanitizer.rounds_checked} rounds checked, "
              f"{len(sanitizer.violations)} violation(s)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_comparison

    cluster = make_cluster(args.cluster)
    trace = _load_trace(args)
    lineup = {
        name: (lambda n=name: make_scheduler(n))
        for name in args.schedulers.split(",")
    }
    run = run_comparison(cluster, trace, lineup, round_length=args.round_min * 60.0)
    print(run.table().render())
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.metrics.timeline import render_gantt

    cluster = make_cluster(args.cluster)
    trace = _load_trace(args)
    scheduler = make_scheduler(args.scheduler)
    result = simulate(cluster, trace, scheduler, round_length=args.round_min * 60.0)
    print(render_gantt(result, width=args.width, max_jobs=args.max_jobs))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.workload.analysis import offered_load, summarize_trace

    trace = _load_trace(args)
    cluster = make_cluster(args.cluster)
    s = summarize_trace(trace)
    print(f"jobs            : {s.num_jobs}")
    print(f"total work      : {s.total_gpu_hours:.1f} V100-GPU-hours")
    print(f"by category     : "
          + ", ".join(f"{c}={n}" for c, n in sorted(s.jobs_by_category.items())))
    print(f"gang sizes      : "
          + ", ".join(f"{w}×GPU:{n}" for w, n in s.demand_histogram.items()))
    print(f"arrival rate    : {s.mean_arrival_rate_per_hour:.1f} jobs/h")
    print(f"peak demand     : {s.max_concurrent_demand} GPUs "
          f"(cluster has {cluster.total_gpus})")
    print(f"offered load    : {offered_load(trace, cluster):.2f}")
    return 0


def cmd_motivation(args: argparse.Namespace) -> int:
    from repro.experiments.motivation import run_motivation_example

    out = run_motivation_example()
    for name in ("hadar", "gavel"):
        o = out[name]
        tp = {f"J{k + 1}": round(v, 2) for k, v in sorted(o.avg_round_throughput.items())}
        print(f"{name:6s}: {tp}   mean JCT = {o.mean_jct_rounds:.2f} rounds")
    gain = out["gavel"].mean_jct_rounds / out["hadar"].mean_jct_rounds
    print(f"Hadar avg-JCT improvement: {gain:.2f}×")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import generate_report

    report = generate_report(args.scale)
    with open(args.out, "w") as fh:
        fh.write(report)
    print(f"wrote {args.out}")
    return 0


# ------------------------------------------------------------------ parser --
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hadar reproduction: trace-driven DL-cluster scheduling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", default=None, help="CSV/JSONL trace to load")
        p.add_argument("--num-jobs", type=int, default=60)
        p.add_argument("--pattern", choices=["static", "continuous"], default="static")
        p.add_argument("--rate", type=float, default=60.0, help="jobs/hour (continuous)")
        p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("generate-trace", help="write a synthetic Philly-style trace")
    add_workload_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate_trace)

    p = sub.add_parser("simulate", help="run one scheduler over a workload")
    add_workload_args(p)
    p.add_argument("--scheduler", choices=SCHEDULERS, default="hadar")
    p.add_argument("--cluster", choices=["simulated", "prototype"], default="simulated")
    p.add_argument("--round-min", type=float, default=6.0, help="round length (minutes)")
    p.add_argument("--profiling", action="store_true",
                   help="estimate throughputs online instead of using ground truth")
    p.add_argument("--straggler-rate", type=float, default=0.0,
                   help="straggler onsets per job-hour (0 = off)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject GPU/node failures; comma-separated k=v spec, "
                        "e.g. 'node_mtbf_h=24,gpu_mtbf_h=100,mttr_min=10,"
                        "permanent=0.05,seed=7' (see docs/robustness.md)")
    p.add_argument("--sanitize", action="store_true",
                   help="attach the runtime invariant sanitizer "
                        "(raises on the first violated invariant)")
    p.add_argument("--json", default=None, help="also dump the result as JSON")
    p.add_argument("--trace-out", default=None,
                   help="write a structured decision trace (JSONL; see "
                        "docs/observability.md and `python -m repro.obs`)")
    p.add_argument("--snapshot-dir", default=None, metavar="DIR",
                   help="checkpoint the engine into DIR (restores from the "
                        "newest snapshot there when re-run)")
    p.add_argument("--snapshot-every", type=int, default=25, metavar="N",
                   help="snapshot every N scheduler rounds (with --snapshot-dir)")
    p.add_argument("--snapshot-keep", type=int, default=0, metavar="K",
                   help="retain only the newest K snapshots (0 = unbounded); "
                        "restores walk the chain past corrupt files")
    p.add_argument("--metrics-out", default=None,
                   help="write the metrics-registry snapshot as JSON")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve live /metrics /healthz /readyz /status while "
                        "the run steps (see docs/observability.md)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="long-lived service mode: streaming submissions + snapshots",
    )
    add_workload_args(p)
    p.add_argument("--scheduler", choices=SCHEDULERS, default="hadar")
    p.add_argument("--cluster", choices=["simulated", "prototype"], default="simulated")
    p.add_argument("--round-min", type=float, default=6.0)
    p.add_argument("--stream-jobs", type=int, default=None, metavar="N",
                   help="stop the stream after N jobs (default: unbounded)")
    p.add_argument("--max-hours", type=float, default=24.0 * 30,
                   help="simulated-time horizon for the service run")
    p.add_argument("--sanitize", action="store_true",
                   help="attach the invariant sanitizer")
    p.add_argument("--snapshot-dir", required=True, metavar="DIR",
                   help="where snapshots are written / restored from")
    p.add_argument("--snapshot-every", type=int, default=25, metavar="N",
                   help="snapshot every N scheduler rounds")
    p.add_argument("--snapshot-keep", type=int, default=0, metavar="K",
                   help="retain only the newest K snapshots (0 = unbounded); "
                        "restores walk the chain past corrupt files")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject faults into the service run (same spec "
                        "language as `repro simulate --faults`; see "
                        "docs/robustness.md)")
    p.add_argument("--faults-file", default=None, metavar="PATH",
                   help="read the fault spec from PATH; SIGHUP re-reads it "
                        "and splices the new spec into the live timeline")
    p.add_argument("--admin-token", default=None, metavar="TOKEN",
                   help="enable POST /admin/faults on --listen, guarded by "
                        "the X-Admin-Token header (body = fault spec)")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve live /metrics /healthz /readyz /status "
                        "(Prometheus text exposition; port 0 = auto-pick)")
    p.add_argument("--trace-out", default=None,
                   help="write a structured decision trace (JSONL)")
    p.add_argument("--trace-rotate-mb", type=float, default=None, metavar="MB",
                   help="rotate the decision trace when the live file "
                        "reaches MB MiB (parts: <path>.part-NNNNNN)")
    p.add_argument("--metrics-out", default=None,
                   help="write the final metrics-registry snapshot as JSON")
    p.add_argument("--drain-s", type=float, default=0.0, metavar="S",
                   help="after SIGTERM, keep serving (with /readyz=503) for "
                        "S seconds before exiting")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("compare", help="run a scheduler lineup over one workload")
    add_workload_args(p)
    p.add_argument("--cluster", choices=["simulated", "prototype"], default="simulated")
    p.add_argument("--round-min", type=float, default=6.0)
    p.add_argument("--schedulers", default="hadar,gavel,tiresias,yarn-cs")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("gantt", help="render a schedule as a text Gantt chart")
    add_workload_args(p)
    p.add_argument("--scheduler", choices=SCHEDULERS, default="hadar")
    p.add_argument("--cluster", choices=["simulated", "prototype"], default="simulated")
    p.add_argument("--round-min", type=float, default=6.0)
    p.add_argument("--width", type=int, default=80)
    p.add_argument("--max-jobs", type=int, default=40)
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser("analyze", help="summarize a workload trace")
    add_workload_args(p)
    p.add_argument("--cluster", choices=["simulated", "prototype"], default="simulated")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("motivation", help="run the Fig. 1 toy example")
    p.set_defaults(func=cmd_motivation)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--scale", choices=["quick", "default", "full"], default="quick")
    p.add_argument("--out", default="EXPERIMENTS.md")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
